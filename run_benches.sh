#!/bin/bash
# Runs every reproduction bench in order, appending to bench_output.txt.
cd /root/repo
for b in table2_datasets table6_inference_accuracy fig6_pool_recall fig7_partitioning table3_deep_alignment table4_runtime table5_ablation fig5_active_learning micro_kernels; do
  echo "===== $b ====="
  if [ "$b" = "micro_kernels" ]; then
    # Also record machine-readable kernel throughputs (scalar vs dispatched
    # GFLOP/s) for the SIMD backend acceptance check.
    ./build/bench/$b \
      --benchmark_out=/root/repo/BENCH_kernels.json \
      --benchmark_out_format=json
  elif [ "$b" = "fig6_pool_recall" ]; then
    # Also record the candidate-index backend sweep (IVF recall vs exact and
    # speedup per (nlist, nprobe) point) for the index acceptance check.
    ./build/bench/$b --index_json=/root/repo/BENCH_index.json
  else
    ./build/bench/$b
  fi
  echo
done
echo "ALL_BENCHES_DONE"
