#!/usr/bin/env python3
"""Compare fresh bench JSON against the committed baselines.

Two modes, matched to the two baseline files in the repo root:

  kernels  google-benchmark JSON (BENCH_kernels.json). Per-benchmark
           throughput is items_per_second when reported, else 1/real_time.
           A benchmark regresses when fresh throughput falls below
           base * (1 - threshold).

  index    candidate-index sweep JSON (BENCH_index.json). Dataset points are
           keyed (dataset, nlist, nprobe) and compared on recall_vs_exact
           and speedup_query; synthetic rows are keyed by `rows` and
           compared on recall_vs_exact and speedup_total. Recall compares
           on absolute delta scaled by the threshold (recall is already a
           ratio in [0, 1]); speedups compare like throughput.

Exit status is 1 when any metric regresses past the threshold, with a
table of regressions on stdout. Benchmarks present on only one side are
reported but do not fail the gate (benches evolve; the gate is for the
common subset). A context mismatch (e.g. a scalar-SIMD fresh run against
an AVX2 baseline) is warned about, since it makes throughput deltas
meaningless.

Usage:
  tools/bench_diff.py kernels BENCH_kernels.json fresh_kernels.json
  tools/bench_diff.py index BENCH_index.json fresh_index.json [--threshold=0.15]
"""

import json
import sys

DEFAULT_THRESHOLD = 0.15


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_diff: cannot load {path}: {e}")


def kernel_throughputs(doc, path):
    benches = doc.get("benchmarks")
    if not isinstance(benches, list):
        sys.exit(f"bench_diff: {path} has no 'benchmarks' list "
                 "(not google-benchmark JSON?)")
    out = {}
    for b in benches:
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        if not name:
            continue
        if "items_per_second" in b:
            out[name] = float(b["items_per_second"])
        elif float(b.get("real_time", 0.0)) > 0.0:
            out[name] = 1.0 / float(b["real_time"])
    return out


def check_kernel_context(base, fresh):
    warnings = []
    bc, fc = base.get("context", {}), fresh.get("context", {})
    for key in ("daakg_simd_backend", "daakg_avx2_available",
                "library_build_type"):
        bv, fv = bc.get(key), fc.get(key)
        if bv is not None and fv is not None and bv != fv:
            warnings.append(f"context mismatch: {key} baseline={bv} "
                            f"fresh={fv} (throughput deltas are suspect)")
    return warnings


def diff_kernels(base_doc, fresh_doc, base_path, fresh_path, threshold):
    base = kernel_throughputs(base_doc, base_path)
    fresh = kernel_throughputs(fresh_doc, fresh_path)
    warnings = check_kernel_context(base_doc, fresh_doc)
    regressions = []
    for name in sorted(base):
        if name not in fresh:
            warnings.append(f"removed benchmark (not in fresh run): {name}")
            continue
        floor = base[name] * (1.0 - threshold)
        if fresh[name] < floor:
            regressions.append(
                (f"kernels:{name}", "throughput", base[name], fresh[name]))
    for name in sorted(set(fresh) - set(base)):
        warnings.append(f"new benchmark (no baseline): {name}")
    return regressions, warnings


def index_points(doc, path):
    """Flattens an index-sweep doc into {key: {metric: value}}."""
    points = {}
    for ds in doc.get("datasets", []):
        for p in ds.get("points", []):
            key = f"{ds.get('name')}/nlist={p.get('nlist')}/nprobe={p.get('nprobe')}"
            points[key] = {"recall_vs_exact": p.get("recall_vs_exact"),
                           "speedup_query": p.get("speedup_query")}
    for row in doc.get("synthetic", []):
        key = f"synthetic/rows={row.get('rows')}"
        points[key] = {"recall_vs_exact": row.get("recall_vs_exact"),
                       "speedup_total": row.get("speedup_total")}
    if not points:
        sys.exit(f"bench_diff: {path} has no datasets[].points or synthetic[] "
                 "entries (not an index-sweep JSON?)")
    return points


def diff_index(base_doc, fresh_doc, base_path, fresh_path, threshold):
    base = index_points(base_doc, base_path)
    fresh = index_points(fresh_doc, fresh_path)
    regressions = []
    warnings = []
    for key in sorted(base):
        if key not in fresh:
            warnings.append(f"removed point (not in fresh run): {key}")
            continue
        for metric, bv in base[key].items():
            fv = fresh[key].get(metric)
            if bv is None or fv is None:
                continue
            if metric == "recall_vs_exact":
                # Recall is a ratio in [0, 1]; an absolute drop of
                # `threshold` (default 0.15) is a catastrophic recall loss.
                if fv < bv - threshold:
                    regressions.append((f"index:{key}", metric, bv, fv))
            else:  # speedup metrics behave like throughput
                if fv < bv * (1.0 - threshold):
                    regressions.append((f"index:{key}", metric, bv, fv))
    for key in sorted(set(fresh) - set(base)):
        warnings.append(f"new point (no baseline): {key}")
    return regressions, warnings


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    threshold = DEFAULT_THRESHOLD
    for a in argv[1:]:
        if a.startswith("--threshold="):
            threshold = float(a.split("=", 1)[1])
        elif a.startswith("--"):
            sys.exit(f"bench_diff: unknown flag {a}\n\n{__doc__}")
    if len(args) != 3 or args[0] not in ("kernels", "index"):
        sys.exit(__doc__)
    mode, base_path, fresh_path = args
    base_doc, fresh_doc = load(base_path), load(fresh_path)

    if mode == "kernels":
        regressions, warnings = diff_kernels(base_doc, fresh_doc, base_path,
                                             fresh_path, threshold)
    else:
        regressions, warnings = diff_index(base_doc, fresh_doc, base_path,
                                           fresh_path, threshold)

    for w in warnings:
        print(f"bench_diff: WARNING: {w}")
    if regressions:
        print(f"\nbench_diff: {len(regressions)} regression(s) past "
              f"{threshold:.0%} ({mode}, base={base_path}):")
        print(f"{'benchmark':<56} {'metric':<16} {'base':>12} {'fresh':>12} "
              f"{'delta':>8}")
        for name, metric, bv, fv in regressions:
            delta = (fv - bv) / bv if bv else float("nan")
            print(f"{name:<56} {metric:<16} {bv:>12.4g} {fv:>12.4g} "
                  f"{delta:>+8.1%}")
        return 1
    print(f"bench_diff: OK — {mode} fresh run within {threshold:.0%} of "
          f"{base_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
