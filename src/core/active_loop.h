#ifndef DAAKG_CORE_ACTIVE_LOOP_H_
#define DAAKG_CORE_ACTIVE_LOOP_H_

#include <memory>
#include <vector>

#include "active/oracle.h"
#include "active/pool.h"
#include "active/strategies.h"
#include "core/daakg.h"

namespace daakg {

struct ActiveLoopConfig {
  size_t batch_size = 50;  // B element pairs per oracle round
  // Rejects non-positive batch sizes, fractions outside [0, 1] and
  // unsorted/out-of-range report_fractions with InvalidArgumentError.
  Status Validate() const;
  // Fraction of gold entity matches labeled before active learning starts
  // (the jump-start seed); also counts toward the x-axis fractions.
  double initial_seed_fraction = 0.05;
  // Report checkpoints: evaluation is recorded when the labeled-match
  // fraction crosses each value (Fig. 5's x-axis).
  std::vector<double> report_fractions = {0.1, 0.2, 0.3, 0.4, 0.5};
  // Hard cap on oracle queries (protects weak strategies that rarely hit
  // matches from unbounded loops).
  size_t max_queries = 0;  // 0 => 8x the matches needed for the last checkpoint
  PoolConfig pool;
  uint64_t seed = 97;
};

// Per-checkpoint observability: phase wall-times and loop counters
// accumulated since the previous checkpoint (all seconds).
struct RoundTelemetry {
  size_t rounds = 0;          // oracle rounds contributing to this span
  size_t pool_size = 0;       // candidate-pool size of the last round
  double refresh_seconds = 0.0;
  double pool_build_seconds = 0.0;
  double selection_seconds = 0.0;
  double fine_tune_seconds = 0.0;
};

// One Fig. 5 measurement point.
struct ActiveRoundReport {
  double fraction = 0.0;     // labeled matches / gold matches
  size_t labels_used = 0;    // oracle queries consumed so far
  size_t matches_found = 0;  // labeled matches so far
  EvalResult eval;
  RoundTelemetry telemetry;
};

// Drives pool generation -> batch selection -> oracle labeling ->
// fine-tuning until the last report checkpoint is reached (Sect. 2.2
// workflow). The pool, alignment graph and inference engine are rebuilt
// each round from the refreshed model.
class ActiveAlignmentLoop {
 public:
  // Validated construction: null-checks every raw-pointer dependency and
  // runs ActiveLoopConfig::Validate() up front, so misconfiguration
  // surfaces before any training instead of crashing mid-run.
  static StatusOr<std::unique_ptr<ActiveAlignmentLoop>> Create(
      const AlignmentTask* task, DaakgAligner* aligner,
      SelectionStrategy* strategy, Oracle* oracle,
      const ActiveLoopConfig& config);

  ActiveAlignmentLoop(const AlignmentTask* task, DaakgAligner* aligner,
                      SelectionStrategy* strategy, Oracle* oracle,
                      const ActiveLoopConfig& config);

  // Runs the full loop (including initial seed + training) and returns the
  // checkpoint reports in order.
  std::vector<ActiveRoundReport> Run();

 private:
  const AlignmentTask* task_;
  DaakgAligner* aligner_;
  SelectionStrategy* strategy_;
  Oracle* oracle_;
  ActiveLoopConfig config_;
};

}  // namespace daakg

#endif  // DAAKG_CORE_ACTIVE_LOOP_H_
