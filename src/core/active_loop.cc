#include "core/active_loop.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "infer/alignment_graph.h"

namespace daakg {
namespace {

uint64_t PairKey(const ElementPair& p) {
  return (static_cast<uint64_t>(p.kind) << 62) |
         (static_cast<uint64_t>(p.first) << 31) | p.second;
}

}  // namespace

ActiveAlignmentLoop::ActiveAlignmentLoop(const AlignmentTask* task,
                                         DaakgAligner* aligner,
                                         SelectionStrategy* strategy,
                                         Oracle* oracle,
                                         const ActiveLoopConfig& config)
    : task_(task),
      aligner_(aligner),
      strategy_(strategy),
      oracle_(oracle),
      config_(config) {}

std::vector<ActiveRoundReport> ActiveAlignmentLoop::Run() {
  Rng rng(config_.seed);
  std::vector<ActiveRoundReport> reports;
  const size_t total_matches = task_->gold_entities.size() +
                               task_->gold_relations.size() +
                               task_->gold_classes.size();
  DAAKG_CHECK_GT(total_matches, 0u);

  // Jump-start seed (labeled "for free" by the same oracle budget).
  SeedAlignment seed = task_->SampleSeed(config_.initial_seed_fraction, &rng);
  size_t matches_found =
      seed.entities.size() + seed.relations.size() + seed.classes.size();
  size_t queries = matches_found;
  std::unordered_set<uint64_t> labeled_keys;
  for (const auto& [a, b] : seed.entities) {
    labeled_keys.insert(PairKey(ElementPair{ElementKind::kEntity, a, b}));
  }
  for (const auto& [a, b] : seed.relations) {
    labeled_keys.insert(PairKey(ElementPair{ElementKind::kRelation, a, b}));
  }
  for (const auto& [a, b] : seed.classes) {
    labeled_keys.insert(PairKey(ElementPair{ElementKind::kClass, a, b}));
  }

  aligner_->Train(seed);

  const double last_fraction = config_.report_fractions.empty()
                                   ? 0.5
                                   : config_.report_fractions.back();
  const size_t target_matches = static_cast<size_t>(
      last_fraction * static_cast<double>(total_matches));
  size_t max_queries = config_.max_queries > 0
                           ? config_.max_queries
                           : 8 * std::max<size_t>(target_matches, 1);
  size_t next_report = 0;

  auto maybe_report = [&]() {
    const double fraction = static_cast<double>(matches_found) /
                            static_cast<double>(total_matches);
    while (next_report < config_.report_fractions.size() &&
           fraction >= config_.report_fractions[next_report]) {
      ActiveRoundReport report;
      report.fraction = config_.report_fractions[next_report];
      report.labels_used = queries;
      report.matches_found = matches_found;
      report.eval = aligner_->Evaluate();
      reports.push_back(std::move(report));
      ++next_report;
    }
  };
  maybe_report();

  while (next_report < config_.report_fractions.size() &&
         queries < max_queries) {
    aligner_->RefreshCaches();

    // Rebuild pool / graph / engine against the refreshed model.
    PoolGenerator pool_gen(task_, aligner_->joint(), config_.pool);
    std::vector<ElementPair> pool = pool_gen.Generate();
    AlignmentGraph graph(task_, pool);
    InferenceEngine engine(&graph, aligner_->joint(),
                           aligner_->config().infer);
    engine.PrecomputeEdgeCosts();

    std::vector<bool> labeled(pool.size(), false);
    size_t unlabeled = 0;
    for (size_t i = 0; i < pool.size(); ++i) {
      labeled[i] = labeled_keys.count(PairKey(pool[i])) > 0;
      if (!labeled[i]) ++unlabeled;
    }
    if (unlabeled == 0) {
      LOG_WARNING << "active loop: pool exhausted with "
                  << matches_found << " matches labeled";
      break;
    }

    SelectionContext ctx{&engine, aligner_->joint(), &labeled};
    std::vector<uint32_t> batch =
        strategy_->SelectBatch(ctx, config_.batch_size, &rng);
    if (batch.empty()) break;

    SeedAlignment new_matches;
    for (uint32_t q : batch) {
      const ElementPair& pair = pool[q];
      labeled_keys.insert(PairKey(pair));
      ++queries;
      if (!oracle_->Label(pair)) continue;
      ++matches_found;
      switch (pair.kind) {
        case ElementKind::kEntity:
          new_matches.entities.emplace_back(pair.first, pair.second);
          break;
        case ElementKind::kRelation:
          new_matches.relations.emplace_back(pair.first, pair.second);
          break;
        case ElementKind::kClass:
          new_matches.classes.emplace_back(pair.first, pair.second);
          break;
      }
    }
    if (!new_matches.entities.empty() || !new_matches.relations.empty() ||
        !new_matches.classes.empty()) {
      aligner_->FineTune(new_matches);
    }
    maybe_report();
  }

  // If the budget ran out before the last checkpoint, report the final
  // state at the remaining checkpoints so every series has equal length.
  while (next_report < config_.report_fractions.size()) {
    ActiveRoundReport report;
    report.fraction = config_.report_fractions[next_report];
    report.labels_used = queries;
    report.matches_found = matches_found;
    report.eval = aligner_->Evaluate();
    reports.push_back(std::move(report));
    ++next_report;
  }
  return reports;
}

}  // namespace daakg
