#include "core/active_loop.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "infer/alignment_graph.h"
#include "obs/trace.h"

namespace daakg {
namespace {

uint64_t PairKey(const ElementPair& p) {
  return (static_cast<uint64_t>(p.kind) << 62) |
         (static_cast<uint64_t>(p.first) << 31) | p.second;
}

}  // namespace

Status ActiveLoopConfig::Validate() const {
  if (batch_size == 0) {
    return InvalidArgumentError("batch_size must be positive");
  }
  if (initial_seed_fraction < 0.0 || initial_seed_fraction > 1.0) {
    return InvalidArgumentError("initial_seed_fraction must be in [0, 1]");
  }
  double prev = 0.0;
  for (double f : report_fractions) {
    if (f <= 0.0 || f > 1.0) {
      return InvalidArgumentError("report_fractions must be in (0, 1]");
    }
    if (f <= prev) {
      return InvalidArgumentError(
          "report_fractions must be strictly increasing");
    }
    prev = f;
  }
  if (pool.top_n == 0) {
    return InvalidArgumentError("pool.top_n must be positive");
  }
  DAAKG_RETURN_IF_ERROR(pool.index.Validate());
  return Status::Ok();
}

StatusOr<std::unique_ptr<ActiveAlignmentLoop>> ActiveAlignmentLoop::Create(
    const AlignmentTask* task, DaakgAligner* aligner,
    SelectionStrategy* strategy, Oracle* oracle,
    const ActiveLoopConfig& config) {
  if (task == nullptr) return InvalidArgumentError("task must not be null");
  if (aligner == nullptr) {
    return InvalidArgumentError("aligner must not be null");
  }
  if (strategy == nullptr) {
    return InvalidArgumentError("strategy must not be null");
  }
  if (oracle == nullptr) return InvalidArgumentError("oracle must not be null");
  DAAKG_RETURN_IF_ERROR(config.Validate());
  return std::make_unique<ActiveAlignmentLoop>(task, aligner, strategy, oracle,
                                               config);
}

ActiveAlignmentLoop::ActiveAlignmentLoop(const AlignmentTask* task,
                                         DaakgAligner* aligner,
                                         SelectionStrategy* strategy,
                                         Oracle* oracle,
                                         const ActiveLoopConfig& config)
    : task_(task),
      aligner_(aligner),
      strategy_(strategy),
      oracle_(oracle),
      config_(config) {}

std::vector<ActiveRoundReport> ActiveAlignmentLoop::Run() {
  static obs::Counter* oracle_queries =
      obs::GlobalMetrics().GetCounter("daakg.active.oracle_queries");
  static obs::Counter* oracle_matches =
      obs::GlobalMetrics().GetCounter("daakg.active.oracle_matches");
  Rng rng(config_.seed);
  std::vector<ActiveRoundReport> reports;
  const size_t total_matches = task_->gold_entities.size() +
                               task_->gold_relations.size() +
                               task_->gold_classes.size();
  DAAKG_CHECK_GT(total_matches, 0u);

  // Jump-start seed (labeled "for free" by the same oracle budget).
  SeedAlignment seed = task_->SampleSeed(config_.initial_seed_fraction, &rng);
  size_t matches_found =
      seed.entities.size() + seed.relations.size() + seed.classes.size();
  size_t queries = matches_found;
  oracle_queries->Increment(queries);
  oracle_matches->Increment(matches_found);
  std::unordered_set<uint64_t> labeled_keys;
  for (const auto& [a, b] : seed.entities) {
    labeled_keys.insert(PairKey(ElementPair{ElementKind::kEntity, a, b}));
  }
  for (const auto& [a, b] : seed.relations) {
    labeled_keys.insert(PairKey(ElementPair{ElementKind::kRelation, a, b}));
  }
  for (const auto& [a, b] : seed.classes) {
    labeled_keys.insert(PairKey(ElementPair{ElementKind::kClass, a, b}));
  }

  aligner_->Train(seed);

  const double last_fraction = config_.report_fractions.empty()
                                   ? 0.5
                                   : config_.report_fractions.back();
  const size_t target_matches = static_cast<size_t>(
      last_fraction * static_cast<double>(total_matches));
  size_t max_queries = config_.max_queries > 0
                           ? config_.max_queries
                           : 8 * std::max<size_t>(target_matches, 1);
  size_t next_report = 0;

  // Phase wall-times accumulated since the previous checkpoint; attached
  // to the next report and then restarted.
  RoundTelemetry window;
  auto maybe_report = [&]() {
    const double fraction = static_cast<double>(matches_found) /
                            static_cast<double>(total_matches);
    while (next_report < config_.report_fractions.size() &&
           fraction >= config_.report_fractions[next_report]) {
      ActiveRoundReport report;
      report.fraction = config_.report_fractions[next_report];
      report.labels_used = queries;
      report.matches_found = matches_found;
      report.eval = aligner_->Evaluate();
      report.telemetry = window;
      reports.push_back(std::move(report));
      ++next_report;
      // A second checkpoint crossed by the same round reports an empty
      // window (no work happened between them), keeping the last pool size.
      const size_t last_pool = window.pool_size;
      window = RoundTelemetry{};
      window.pool_size = last_pool;
    }
  };
  maybe_report();

  while (next_report < config_.report_fractions.size() &&
         queries < max_queries) {
    ++window.rounds;
    // kAlways spans: the RoundTelemetry window needs phase wall-times even
    // when tracing is off, and Finish() hands back the very duration the
    // trace event records (one clock-read pair per phase).
    obs::TraceSpan round_span("core.active_round", "core");
    round_span.AddArg("round", static_cast<double>(window.rounds));
    {
      obs::TraceSpan refresh_span("core.round_refresh", "core", nullptr,
                                  obs::TimingMode::kAlways);
      aligner_->RefreshCaches();
      window.refresh_seconds += refresh_span.Finish();
    }

    // Rebuild pool / graph / engine against the refreshed model.
    obs::TraceSpan pool_span("core.round_pool_build", "core", nullptr,
                             obs::TimingMode::kAlways);
    PoolGenerator pool_gen(task_, aligner_->joint(), config_.pool);
    std::vector<ElementPair> pool = pool_gen.Generate();
    window.pool_build_seconds += pool_span.Finish();
    window.pool_size = pool.size();
    obs::TraceSpan graph_span("core.round_graph", "core");
    AlignmentGraph graph(task_, pool);
    InferenceEngine engine(&graph, aligner_->joint(),
                           aligner_->config().infer);
    engine.PrecomputeEdgeCosts();
    graph_span.Finish();

    std::vector<bool> labeled(pool.size(), false);
    size_t unlabeled = 0;
    for (size_t i = 0; i < pool.size(); ++i) {
      labeled[i] = labeled_keys.count(PairKey(pool[i])) > 0;
      if (!labeled[i]) ++unlabeled;
    }
    if (unlabeled == 0) {
      LOG_WARNING << "active loop: pool exhausted with "
                  << matches_found << " matches labeled";
      break;
    }

    SelectionContext ctx{&engine, aligner_->joint(), &labeled};
    obs::TraceSpan select_span("core.round_selection", "core", nullptr,
                               obs::TimingMode::kAlways);
    std::vector<uint32_t> batch =
        strategy_->SelectBatch(ctx, config_.batch_size, &rng);
    window.selection_seconds += select_span.Finish();
    if (batch.empty()) break;

    SeedAlignment new_matches;
    for (uint32_t q : batch) {
      const ElementPair& pair = pool[q];
      labeled_keys.insert(PairKey(pair));
      ++queries;
      oracle_queries->Increment();
      if (!oracle_->Label(pair)) continue;
      ++matches_found;
      oracle_matches->Increment();
      switch (pair.kind) {
        case ElementKind::kEntity:
          new_matches.entities.emplace_back(pair.first, pair.second);
          break;
        case ElementKind::kRelation:
          new_matches.relations.emplace_back(pair.first, pair.second);
          break;
        case ElementKind::kClass:
          new_matches.classes.emplace_back(pair.first, pair.second);
          break;
      }
    }
    if (!new_matches.entities.empty() || !new_matches.relations.empty() ||
        !new_matches.classes.empty()) {
      obs::TraceSpan fine_tune_span("core.round_fine_tune", "core", nullptr,
                                    obs::TimingMode::kAlways);
      aligner_->FineTune(new_matches);
      window.fine_tune_seconds += fine_tune_span.Finish();
    }
    maybe_report();
  }

  // If the budget ran out before the last checkpoint, report the final
  // state at the remaining checkpoints so every series has equal length.
  while (next_report < config_.report_fractions.size()) {
    ActiveRoundReport report;
    report.fraction = config_.report_fractions[next_report];
    report.labels_used = queries;
    report.matches_found = matches_found;
    report.eval = aligner_->Evaluate();
    report.telemetry = window;
    reports.push_back(std::move(report));
    ++next_report;
    const size_t last_pool = window.pool_size;
    window = RoundTelemetry{};
    window.pool_size = last_pool;
  }
  return reports;
}

}  // namespace daakg
