#include "core/daakg.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "obs/trace.h"

namespace daakg {
namespace {

// Appends `extra` to `base`, dropping duplicates.
template <typename PairT>
void MergePairs(std::vector<PairT>* base, const std::vector<PairT>& extra) {
  std::unordered_set<uint64_t> seen;
  for (const auto& [a, b] : *base) {
    seen.insert((static_cast<uint64_t>(a) << 32) | b);
  }
  for (const auto& [a, b] : extra) {
    if (seen.insert((static_cast<uint64_t>(a) << 32) | b).second) {
      base->emplace_back(a, b);
    }
  }
}

template <typename PairT>
std::vector<std::pair<uint32_t, uint32_t>> TestPairs(
    const std::vector<PairT>& gold, const std::vector<PairT>& labeled) {
  std::unordered_set<uint64_t> in_seed;
  for (const auto& [a, b] : labeled) {
    in_seed.insert((static_cast<uint64_t>(a) << 32) | b);
  }
  std::vector<std::pair<uint32_t, uint32_t>> test;
  for (const auto& [a, b] : gold) {
    if (in_seed.count((static_cast<uint64_t>(a) << 32) | b) == 0) {
      test.emplace_back(a, b);
    }
  }
  if (test.empty()) {
    // Tiny schemata can be fully labeled; fall back to all gold pairs so
    // the metric remains defined.
    for (const auto& [a, b] : gold) test.emplace_back(a, b);
  }
  return test;
}

}  // namespace

Status DaakgConfig::Validate() const {
  switch (kge_model) {
    case KgeModelKind::kTransE:
    case KgeModelKind::kRotatE:
    case KgeModelKind::kCompGcn:
      break;
    default:
      // A blind cast can smuggle in any integer; catch it here rather than
      // letting MakeKgeModel return nullptr mid-construction.
      return InvalidArgumentError("kge_model holds an out-of-range value");
  }
  if (kge.dim == 0) return InvalidArgumentError("kge.dim must be positive");
  if (kge.class_dim == 0) {
    return InvalidArgumentError("kge.class_dim must be positive");
  }
  if (kge.epochs <= 0) {
    return InvalidArgumentError("kge.epochs must be positive");
  }
  if (kge.learning_rate <= 0.0f) {
    return InvalidArgumentError("kge.learning_rate must be positive");
  }
  if (kge.num_negatives <= 0) {
    return InvalidArgumentError("kge.num_negatives must be positive");
  }
  if (align.align_epochs <= 0) {
    return InvalidArgumentError("align.align_epochs must be positive");
  }
  if (align.joint_epochs_per_round <= 0) {
    return InvalidArgumentError(
        "align.joint_epochs_per_round must be positive");
  }
  if (align.align_lr <= 0.0f) {
    return InvalidArgumentError("align.align_lr must be positive");
  }
  if (align.tau < 0.0 || align.tau > 1.0) {
    return InvalidArgumentError("align.tau must be in [0, 1]");
  }
  if (align.ent_sim_refresh_threshold < 0.0f) {
    return InvalidArgumentError(
        "align.ent_sim_refresh_threshold must be non-negative");
  }
  if (align.ent_sim_band_rows == 0) {
    return InvalidArgumentError("align.ent_sim_band_rows must be positive");
  }
  if (align.ent_sim_full_refresh_fraction < 0.0f ||
      align.ent_sim_full_refresh_fraction > 1.0f) {
    return InvalidArgumentError(
        "align.ent_sim_full_refresh_fraction must be in [0, 1]");
  }
  if (fine_tune_epochs <= 0) {
    return InvalidArgumentError("fine_tune_epochs must be positive");
  }
  if (match_threshold < 0.0f || match_threshold > 1.0f) {
    return InvalidArgumentError("match_threshold must be in [0, 1]");
  }
  DAAKG_RETURN_IF_ERROR(index.Validate());
  return Status::Ok();
}

StatusOr<std::unique_ptr<DaakgAligner>> DaakgAligner::Create(
    const AlignmentTask* task, const DaakgConfig& config) {
  if (task == nullptr) return InvalidArgumentError("task must not be null");
  DAAKG_RETURN_IF_ERROR(config.Validate());
  return std::make_unique<DaakgAligner>(task, config);
}

DaakgAligner::DaakgAligner(const AlignmentTask* task,
                           const DaakgConfig& config)
    : task_(task), config_(config), rng_(config.seed) {
  KgeConfig kge_cfg = config_.kge;
  kge_cfg.seed = rng_.NextUint64();
  model1_ = MakeKgeModel(config_.kge_model, &task->kg1, kge_cfg);
  kge_cfg.seed = rng_.NextUint64();
  model2_ = MakeKgeModel(config_.kge_model, &task->kg2, kge_cfg);
  if (config_.use_class_embeddings) {
    ec1_ = std::make_unique<EntityClassModel>(model1_.get(), config_.kge);
    ec2_ = std::make_unique<EntityClassModel>(model2_.get(), config_.kge);
  }
  joint_ = std::make_unique<JointAlignmentModel>(
      model1_.get(), model2_.get(), ec1_.get(), ec2_.get(), config_.align);

  Rng init_rng = rng_.Fork();
  model1_->Init(&init_rng);
  model2_->Init(&init_rng);
  if (ec1_ != nullptr) ec1_->Init(&init_rng);
  if (ec2_ != nullptr) ec2_->Init(&init_rng);
  joint_->Init(&init_rng);
}

void DaakgAligner::WarmStartKge() {
  obs::TraceSpan span("core.kge_warm_start", "core");
  kge_rng1_ = rng_.Fork();
  kge_rng2_ = rng_.Fork();
  trainer1_ = std::make_unique<KgeTrainer>(model1_.get(), ec1_.get());
  trainer2_ = std::make_unique<KgeTrainer>(model2_.get(), ec2_.get());
  KgeTrainStats stats;
  for (int e = 0; e < config_.kge.epochs; ++e) {
    trainer1_->TrainEpoch(&kge_rng1_, &stats);
    trainer2_->TrainEpoch(&kge_rng2_, &stats);
  }
  kge_trained_ = true;
}

void DaakgAligner::KgeEpoch() {
  KgeTrainStats stats;
  trainer1_->TrainEpoch(&kge_rng1_, &stats);
  trainer2_->TrainEpoch(&kge_rng2_, &stats);
}

void DaakgAligner::JointRound(const SeedAlignment& train_set, bool focal) {
  static obs::Histogram* round_timing =
      obs::GlobalMetrics().GetHistogram("daakg.align.joint_round_seconds");
  obs::TraceSpan span("core.joint_round", "core", round_timing);
  KgeEpoch();
  Rng rng = rng_.Fork();
  for (int k = 0; k < config_.align.joint_epochs_per_round; ++k) {
    joint_->TrainEpoch(train_set, &rng, focal);
  }
  if (!semi_pairs_.empty()) {
    joint_->TrainSemiEpoch(semi_pairs_, &rng);
  }
}

void DaakgAligner::RefreshSemiSupervision() {
  static obs::Counter* semi_pairs_count =
      obs::GlobalMetrics().GetCounter("daakg.align.semi_supervised_pairs");
  joint_->RefreshCaches();
  semi_pairs_ = joint_->MineSemiSupervision();
  semi_pairs_count->Increment(semi_pairs_.size());
  // The confident subset also acts as pseudo-seeds for the contrastive
  // loss (the bootstrapping of BootEA that Sect. 4.2 adopts). Conflicts
  // were already resolved one-to-one during mining.
  pseudo_seeds_ = SeedAlignment();
  for (const auto& [pair, score] : semi_pairs_) {
    if (score < config_.align.tau) continue;
    switch (pair.kind) {
      case ElementKind::kEntity:
        pseudo_seeds_.entities.emplace_back(pair.first, pair.second);
        break;
      case ElementKind::kRelation:
        pseudo_seeds_.relations.emplace_back(pair.first, pair.second);
        break;
      case ElementKind::kClass:
        pseudo_seeds_.classes.emplace_back(pair.first, pair.second);
        break;
    }
  }
}

void DaakgAligner::Train(const SeedAlignment& seed) {
  obs::TraceSpan span("core.train", "core");
  MergePairs(&labeled_.entities, seed.entities);
  MergePairs(&labeled_.relations, seed.relations);
  MergePairs(&labeled_.classes, seed.classes);

  if (!kge_trained_) WarmStartKge();

  const int rounds = config_.align.align_epochs;
  const bool semi_on = config_.align.semi_rounds > 0;
  for (int round = 0; round < rounds; ++round) {
    if (semi_on && round >= rounds / 3 &&
        (round - rounds / 3) % config_.align.semi_every == 0) {
      RefreshSemiSupervision();
    }
    SeedAlignment train_set;
    train_set.entities = labeled_.entities;
    train_set.relations = labeled_.relations;
    train_set.classes = labeled_.classes;
    MergePairs(&train_set.entities, pseudo_seeds_.entities);
    MergePairs(&train_set.relations, pseudo_seeds_.relations);
    MergePairs(&train_set.classes, pseudo_seeds_.classes);
    JointRound(train_set, /*focal=*/false);
  }
  joint_->RefreshCaches();
}

void DaakgAligner::FineTune(const SeedAlignment& new_matches) {
  static obs::Histogram* fine_tune_timing =
      obs::GlobalMetrics().GetHistogram("daakg.core.fine_tune_seconds");
  obs::TraceSpan span("core.fine_tune", "core", fine_tune_timing);
  span.AddArg("new_entities", static_cast<double>(new_matches.entities.size()));
  MergePairs(&labeled_.entities, new_matches.entities);
  MergePairs(&labeled_.relations, new_matches.relations);
  MergePairs(&labeled_.classes, new_matches.classes);

  // Focal-loss pass concentrated on the new labels (Sect. 4.2), then
  // interleaved refresher rounds on everything labeled so far.
  Rng rng = rng_.Fork();
  for (int e = 0; e < config_.fine_tune_epochs; ++e) {
    joint_->TrainEpoch(new_matches, &rng, /*focal=*/true);
  }
  if (config_.align.semi_rounds > 0) RefreshSemiSupervision();
  for (int e = 0; e < std::max(1, config_.fine_tune_epochs / 2); ++e) {
    SeedAlignment train_set;
    train_set.entities = labeled_.entities;
    train_set.relations = labeled_.relations;
    train_set.classes = labeled_.classes;
    MergePairs(&train_set.entities, pseudo_seeds_.entities);
    MergePairs(&train_set.relations, pseudo_seeds_.relations);
    MergePairs(&train_set.classes, pseudo_seeds_.classes);
    JointRound(train_set, /*focal=*/false);
  }
  joint_->RefreshCaches();
}

EvalResult DaakgAligner::Evaluate() {
  obs::TraceSpan span("core.evaluate", "core");
  if (!joint_->caches_ready()) joint_->RefreshCaches();
  EvalResult out;
  auto ent_test = TestPairs(task_->gold_entities, labeled_.entities);
  auto rel_test = TestPairs(task_->gold_relations, labeled_.relations);
  auto cls_test = TestPairs(task_->gold_classes, labeled_.classes);

  out.ent_rank = EvaluateRanking(joint_->entity_sim(), ent_test);
  out.rel_rank = EvaluateRanking(joint_->relation_sim(), rel_test);
  out.cls_rank = EvaluateRanking(joint_->class_sim(), cls_test);
  out.ent_prf = EvaluateGreedyMatching(joint_->entity_sim(), ent_test,
                                       config_.match_threshold);
  out.rel_prf = EvaluateGreedyMatching(joint_->relation_sim(), rel_test,
                                       config_.match_threshold);
  out.cls_prf = EvaluateGreedyMatching(joint_->class_sim(), cls_test,
                                       config_.match_threshold);
  return out;
}

DaakgAligner::Alignment DaakgAligner::ExtractAlignment() {
  obs::TraceSpan span("core.extract_alignment", "core");
  if (!joint_->caches_ready()) joint_->RefreshCaches();
  Alignment out;
  // Entity matching goes through the candidate index when an IVF backend is
  // in force and the base is large enough to benefit; otherwise the cached
  // similarity matrix is swept directly (bit-identical to the pre-index
  // path). Relation/class matrices are schema-sized — always direct.
  bool entities_done = false;
  if (ResolveIndexBackend(config_.index.backend) == IndexBackendKind::kIvf &&
      joint_->unit_repr2().rows() >= config_.index.min_rows_for_ann) {
    auto index = CandidateIndex::Build(joint_->unit_repr2(), config_.index);
    DAAKG_CHECK(index.ok()) << index.status();
    for (const auto& [a, b] :
         GreedyOneToOneMatches(**index, joint_->unit_mapped1(),
                               config_.match_threshold)) {
      out.entities.emplace_back(a, b);
    }
    entities_done = true;
  }
  if (!entities_done) {
    for (const auto& [a, b] : GreedyOneToOneMatches(joint_->entity_sim(),
                                                    config_.match_threshold)) {
      out.entities.emplace_back(a, b);
    }
  }
  for (const auto& [a, b] : GreedyOneToOneMatches(joint_->relation_sim(),
                                                  config_.match_threshold)) {
    out.relations.emplace_back(a, b);
  }
  for (const auto& [a, b] :
       GreedyOneToOneMatches(joint_->class_sim(), config_.match_threshold)) {
    out.classes.emplace_back(a, b);
  }
  return out;
}

}  // namespace daakg
