#ifndef DAAKG_CORE_DAAKG_H_
#define DAAKG_CORE_DAAKG_H_

#include <memory>
#include <string>
#include <vector>

#include "align/joint_model.h"
#include "align/metrics.h"
#include "index/candidate_index.h"
#include "embedding/entity_class_model.h"
#include "embedding/kge_model.h"
#include "embedding/trainer.h"
#include "infer/inference_power.h"
#include "kg/alignment_task.h"

namespace daakg {

// Top-level configuration of the DAAKG pipeline (Fig. 2).
struct DaakgConfig {
  // Base entity-relation embedding model. Config files carrying a string
  // name go through ParseKgeModelKind().
  KgeModelKind kge_model = KgeModelKind::kCompGcn;
  KgeConfig kge;
  JointAlignConfig align;
  InferenceConfig infer;
  // Table 5 ablation: when false, no entity-class model is trained and
  // class similarity falls back to weighted mean embeddings.
  bool use_class_embeddings = true;
  // Epochs of focal-loss fine-tuning per active-learning round.
  int fine_tune_epochs = 10;
  // Greedy-matching similarity threshold used when extracting/evaluating
  // final alignments (F1).
  float match_threshold = 0.5f;
  // Candidate index for ExtractAlignment's entity matching. The default
  // (kAuto => exact unless DAAKG_INDEX=ivf) keeps the cached-matrix path
  // bit-for-bit; an IVF backend matches from the joint model's unit-row
  // snapshots through the index instead, skipping the quadratic scan on
  // bases of at least index.min_rows_for_ann rows.
  CandidateIndexConfig index;
  uint64_t seed = 17;

  // Rejects configurations the pipeline cannot run (non-positive
  // epochs/dimensions, thresholds outside [0, 1], ...) with
  // InvalidArgumentError. DaakgAligner::Create() calls this before
  // constructing anything.
  Status Validate() const;
};

// Per-element-kind evaluation scores (one Table 3 cell group).
struct EvalResult {
  RankingMetrics ent_rank, rel_rank, cls_rank;
  PrfMetrics ent_prf, rel_prf, cls_prf;
};

// The public entry point of the library: owns the two KGs' embedding
// models, the entity-class models and the joint alignment model, and runs
// the training recipe of Sect. 4 (embedding learning -> supervised
// alignment -> semi-supervised re-training). Active-learning drivers call
// FineTune() with each newly labeled batch.
class DaakgAligner {
 public:
  // Validated construction: checks `task` for null and `config` via
  // DaakgConfig::Validate() before building any model state. Prefer this
  // over the raw constructor in application code.
  static StatusOr<std::unique_ptr<DaakgAligner>> Create(
      const AlignmentTask* task, const DaakgConfig& config);

  // `task` must outlive the aligner. Assumes `config` is valid; call
  // Create() to get validation.
  DaakgAligner(const AlignmentTask* task, const DaakgConfig& config);

  const AlignmentTask& task() const { return *task_; }
  const DaakgConfig& config() const { return config_; }

  // Full initial training from a seed alignment. Accumulates `seed` into
  // the internal labeled set.
  void Train(const SeedAlignment& seed);

  // Active-learning update: folds `new_matches` into the labeled set,
  // runs focal-loss fine-tuning on them plus refresher epochs on the full
  // labeled set, then optionally one semi-supervision round.
  void FineTune(const SeedAlignment& new_matches);

  // Refreshes similarity caches (delegates to the joint model).
  void RefreshCaches() { joint_->RefreshCaches(); }

  // Evaluation against the task's gold matches, excluding the labeled set
  // from each kind's test pairs (falling back to all gold pairs when the
  // labeled set covers everything, as happens for tiny schemata).
  EvalResult Evaluate();

  // Final output: greedy one-to-one matches above the match threshold.
  struct Alignment {
    std::vector<std::pair<EntityId, EntityId>> entities;
    std::vector<std::pair<RelationId, RelationId>> relations;
    std::vector<std::pair<ClassId, ClassId>> classes;
  };
  Alignment ExtractAlignment();

  JointAlignmentModel* joint() { return joint_.get(); }
  const JointAlignmentModel* joint() const { return joint_.get(); }
  KgeModel* model1() { return model1_.get(); }
  KgeModel* model2() { return model2_.get(); }
  const SeedAlignment& labeled() const { return labeled_; }

 private:
  void WarmStartKge();
  void KgeEpoch();
  // One joint round: a KGE epoch per KG interleaved with alignment epochs.
  void JointRound(const SeedAlignment& train_set, bool focal);
  // Mines semi-supervision and converts the confident part to pseudo-seeds.
  void RefreshSemiSupervision();

  const AlignmentTask* task_;
  DaakgConfig config_;
  Rng rng_;
  std::unique_ptr<KgeModel> model1_;
  std::unique_ptr<KgeModel> model2_;
  std::unique_ptr<EntityClassModel> ec1_;
  std::unique_ptr<EntityClassModel> ec2_;
  std::unique_ptr<JointAlignmentModel> joint_;
  std::unique_ptr<KgeTrainer> trainer1_;
  std::unique_ptr<KgeTrainer> trainer2_;
  Rng kge_rng1_{0};
  Rng kge_rng2_{0};
  SeedAlignment labeled_;
  // Bootstrapped supervision (Sect. 4.2): soft pairs for the Eq. 10 loss
  // and their confident subset used as pseudo-seeds.
  std::vector<std::pair<ElementPair, double>> semi_pairs_;
  SeedAlignment pseudo_seeds_;
  bool kge_trained_ = false;
};

}  // namespace daakg

#endif  // DAAKG_CORE_DAAKG_H_
