#ifndef DAAKG_TENSOR_SERIALIZE_H_
#define DAAKG_TENSOR_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "tensor/matrix.h"
#include "tensor/vector.h"

namespace daakg {

// Binary format: little-endian uint64 dims followed by raw float32 data,
// prefixed with a 4-byte magic so mismatched files fail fast.

Status SaveVector(const Vector& v, const std::string& path);
StatusOr<Vector> LoadVector(const std::string& path);

Status SaveMatrix(const Matrix& m, const std::string& path);
StatusOr<Matrix> LoadMatrix(const std::string& path);

}  // namespace daakg

#endif  // DAAKG_TENSOR_SERIALIZE_H_
