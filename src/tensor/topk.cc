#include "tensor/topk.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace daakg {
namespace {

// Heap ordering: `a` is strictly worse than `b` when it scores lower, or
// scores equal with a higher index. std::push_heap builds a max-heap under
// this comparison, so the root is the *worst* kept entry.
inline bool Worse(const ScoredIndex& a, const ScoredIndex& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

}  // namespace

TopKAccumulator::TopKAccumulator(size_t k) : k_(k) { heap_.reserve(k); }

void TopKAccumulator::Push(uint32_t index, float score) {
  if (k_ == 0) return;
  if (heap_.size() < k_) {
    // Fill phase: append without sifting; the heap property is only needed
    // (and only relied upon — see Threshold) once the buffer is full.
    heap_.push_back(ScoredIndex{index, score});
    if (heap_.size() == k_) std::make_heap(heap_.begin(), heap_.end(), Worse);
    return;
  }
  const ScoredIndex& weakest = heap_.front();
  if (score < weakest.score ||
      (score == weakest.score && index > weakest.index)) {
    return;
  }
  // Replace the root and sift down in one pass (pop_heap + push_heap would
  // traverse the tree twice).
  const ScoredIndex item{index, score};
  const size_t n = heap_.size();
  size_t i = 0;
  for (;;) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    const size_t right = child + 1;
    if (right < n && Worse(heap_[child], heap_[right])) child = right;
    if (!Worse(item, heap_[child])) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = item;
}

void TopKAccumulator::Merge(const TopKAccumulator& other) {
  for (const ScoredIndex& e : other.heap_) Push(e.index, e.score);
}

float TopKAccumulator::Threshold() const {
  // During the fill phase the buffer is unordered and everything is
  // admissible; once full, the root is the weakest kept entry.
  if (heap_.size() < k_) return -std::numeric_limits<float>::infinity();
  return heap_.front().score;
}

std::vector<ScoredIndex> TopKAccumulator::SortedEntries() const {
  std::vector<ScoredIndex> out = heap_;
  std::sort(out.begin(), out.end(), [](const ScoredIndex& a,
                                       const ScoredIndex& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.index < b.index;
  });
  return out;
}

std::vector<uint32_t> TopKAccumulator::SortedIndices() const {
  std::vector<ScoredIndex> entries = SortedEntries();
  std::vector<uint32_t> out;
  out.reserve(entries.size());
  for (const ScoredIndex& e : entries) out.push_back(e.index);
  return out;
}

float DotUnrolled(const float* a, const float* b, size_t n) {
  return simd::ActiveOps().dot(a, b, n);
}

size_t CountGreater(const float* values, size_t n, float threshold) {
  return simd::ActiveOps().count_greater(values, n, threshold);
}

namespace {

// Hard cap on col_block so each tile row of similarities fits in a stack
// buffer (and comfortably in L1).
constexpr size_t kMaxColBlock = 512;

// Walks the [row_begin, row_end) x [0, n2) region of a * b^T in
// row_block x col_block tiles, calling visit(r, c0, sims, count) once per
// (row, tile) with the tile row's `count` consecutive similarities. Tiles
// keep the col_block rows of `b` hot in cache while each is reused
// row_block times. The dots for a whole tile row are computed into a local
// buffer through the `ops` kernel table before the visitor runs — keeping
// the micro-kernel loop free of consumer state is what lets it live in
// vector registers. ops.dot4 column c is bitwise ops.dot(a, b_c), so the
// 4-wide and remainder columns agree exactly within a backend.
template <typename Visitor>
void TiledSimWalk(const Matrix& a, const Matrix& b, size_t row_begin,
                  size_t row_end, const simd::Ops& ops,
                  const BlockedKernelOptions& options, Visitor&& visit) {
  const size_t n2 = b.rows();
  const size_t dim = a.cols();
  const size_t row_block = std::max<size_t>(1, options.row_block);
  const size_t col_block =
      std::min(kMaxColBlock, std::max<size_t>(1, options.col_block));
  float sims[kMaxColBlock];
  for (size_t r0 = row_begin; r0 < row_end; r0 += row_block) {
    const size_t r1 = std::min(row_end, r0 + row_block);
    for (size_t c0 = 0; c0 < n2; c0 += col_block) {
      const size_t c1 = std::min(n2, c0 + col_block);
      for (size_t r = r0; r < r1; ++r) {
        const float* ar = a.RowData(r);
        size_t c = c0;
        for (; c + 4 <= c1; c += 4) {
          ops.dot4(ar, b.RowData(c), b.RowData(c + 1), b.RowData(c + 2),
                   b.RowData(c + 3), dim, &sims[c - c0]);
        }
        for (; c < c1; ++c) {
          sims[c - c0] = ops.dot(ar, b.RowData(c), dim);
        }
        visit(r, c0, sims, c1 - c0);
      }
    }
  }
}

// Per-backend dispatch counters for the blocked kernel entry points.
void CountKernelDispatch(const simd::Ops& ops) {
  static obs::Counter* scalar_calls =
      obs::GlobalMetrics().GetCounter("daakg.tensor.kernel_calls_scalar");
  static obs::Counter* avx2_calls =
      obs::GlobalMetrics().GetCounter("daakg.tensor.kernel_calls_avx2");
  (ops.backend == simd::Backend::kAvx2 ? avx2_calls : scalar_calls)
      ->Increment();
}

}  // namespace

SimTopK BlockedSimTopK(const Matrix& a, const Matrix& b, size_t row_k,
                       size_t col_k, const BlockedKernelOptions& options) {
  static obs::Histogram* timing =
      obs::GlobalMetrics().GetHistogram("daakg.tensor.sim_topk_seconds");
  static obs::Counter* cells =
      obs::GlobalMetrics().GetCounter("daakg.tensor.sim_cells");
  obs::TraceSpan span("tensor.sim_topk", "tensor", timing);

  DAAKG_CHECK_EQ(a.cols(), b.cols());
  const simd::Ops& ops = simd::Resolve(options.backend);
  const size_t n1 = a.rows();
  const size_t n2 = b.rows();
  row_k = std::min(row_k, n2);
  col_k = std::min(col_k, n1);

  SimTopK out;
  out.row_topk.resize(n1);
  out.col_topk.resize(n2);
  if (n1 == 0 || n2 == 0) return out;
  CountKernelDispatch(ops);
  cells->Increment(static_cast<uint64_t>(n1) * n2);

  // Row accumulators are owned per row (disjoint across shards); column
  // accumulators see every shard's rows, so each shard streams into its own
  // copy and the copies are merged after the pass. Admission thresholds are
  // mirrored into flat float arrays so the overwhelmingly common rejection
  // is a single compare against a contiguous load instead of a heap probe;
  // `>=` (not `>`) keeps score-tie admission decisions inside Push, whose
  // index tie-break matches TopKIndices.
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  std::vector<TopKAccumulator> row_acc(n1, TopKAccumulator(row_k));
  std::vector<float> row_thr(n1, kNegInf);
  ThreadPool& pool = GlobalThreadPool();
  const size_t shards =
      options.parallel ? std::min(n1, pool.num_threads()) : 1;
  std::vector<std::vector<TopKAccumulator>> shard_cols(
      shards, std::vector<TopKAccumulator>(col_k > 0 ? n2 : 0,
                                           TopKAccumulator(col_k)));
  std::vector<std::vector<float>> shard_col_thr(
      shards, std::vector<float>(col_k > 0 ? n2 : 0, kNegInf));

  auto run_shard = [&](size_t shard, size_t begin, size_t end) {
    std::vector<TopKAccumulator>& cols = shard_cols[shard];
    std::vector<float>& col_thr = shard_col_thr[shard];
    TiledSimWalk(
        a, b, begin, end, ops, options,
        [&](size_t r, size_t c, const float* sims, size_t count) {
          float rt = row_thr[r];
          for (size_t j = 0; j < count; ++j) {
            const float sim = sims[j];
            if (sim >= rt) {
              row_acc[r].Push(static_cast<uint32_t>(c + j), sim);
              rt = row_acc[r].Threshold();
            }
            if (col_k > 0 && sim >= col_thr[c + j]) {
              cols[c + j].Push(static_cast<uint32_t>(r), sim);
              col_thr[c + j] = cols[c + j].Threshold();
            }
          }
          row_thr[r] = rt;
        });
  };
  if (shards <= 1) {
    run_shard(0, 0, n1);
  } else {
    // ParallelForShards splits [0, n1) into at most num_threads() shards
    // with the same index arithmetic as `shards` above.
    pool.ParallelForShards(n1, run_shard);
  }

  for (size_t r = 0; r < n1; ++r) {
    out.row_topk[r] = row_acc[r].SortedEntries();
  }
  if (col_k > 0) {
    for (size_t c = 0; c < n2; ++c) {
      TopKAccumulator& merged = shard_cols[0][c];
      for (size_t s = 1; s < shards; ++s) merged.Merge(shard_cols[s][c]);
      out.col_topk[c] = merged.SortedEntries();
    }
  }
  return out;
}

void BlockedMatMulNT(const Matrix& a, const Matrix& b, Matrix* out,
                     const BlockedKernelOptions& options) {
  *out = Matrix(a.rows(), b.rows());
  BlockedMatMulNTRows(a, b, 0, a.rows(), out, options);
}

void BlockedMatMulNTRows(const Matrix& a, const Matrix& b, size_t row_begin,
                         size_t row_end, Matrix* out,
                         const BlockedKernelOptions& options) {
  static obs::Histogram* timing =
      obs::GlobalMetrics().GetHistogram("daakg.tensor.matmul_nt_seconds");
  static obs::Counter* cells =
      obs::GlobalMetrics().GetCounter("daakg.tensor.sim_cells");
  obs::TraceSpan span("tensor.matmul_nt", "tensor", timing);

  DAAKG_CHECK_EQ(a.cols(), b.cols());
  DAAKG_CHECK_EQ(out->rows(), a.rows());
  DAAKG_CHECK_EQ(out->cols(), b.rows());
  DAAKG_CHECK_LE(row_begin, row_end);
  DAAKG_CHECK_LE(row_end, a.rows());
  const simd::Ops& ops = simd::Resolve(options.backend);
  const size_t n2 = b.rows();
  const size_t num_rows = row_end - row_begin;
  if (num_rows == 0 || n2 == 0) return;
  CountKernelDispatch(ops);
  cells->Increment(static_cast<uint64_t>(num_rows) * n2);

  auto run_rows = [&](size_t begin, size_t end) {
    TiledSimWalk(a, b, begin, end, ops, options,
                 [&](size_t r, size_t c, const float* sims, size_t count) {
                   float* row = out->RowData(r) + c;
                   for (size_t j = 0; j < count; ++j) row[j] = sims[j];
                 });
  };
  if (options.parallel) {
    // ParallelForShards hands out [0, num_rows); offset back into the
    // requested row window.
    GlobalThreadPool().ParallelForShards(
        num_rows, [&](size_t /*shard*/, size_t begin, size_t end) {
          run_rows(row_begin + begin, row_begin + end);
        });
  } else {
    run_rows(row_begin, row_end);
  }
}

void BlockedSimVisit(const Matrix& a, const Matrix& b,
                     const SimTileVisitor& visit,
                     const BlockedKernelOptions& options) {
  DAAKG_CHECK_EQ(a.cols(), b.cols());
  const simd::Ops& ops = simd::Resolve(options.backend);
  const size_t n1 = a.rows();
  if (n1 == 0 || b.rows() == 0) return;
  CountKernelDispatch(ops);
  if (options.parallel) {
    GlobalThreadPool().ParallelForShards(
        n1, [&](size_t /*shard*/, size_t begin, size_t end) {
          TiledSimWalk(a, b, begin, end, ops, options, visit);
        });
  } else {
    TiledSimWalk(a, b, 0, n1, ops, options, visit);
  }
}

}  // namespace daakg
