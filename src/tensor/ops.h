#ifndef DAAKG_TENSOR_OPS_H_
#define DAAKG_TENSOR_OPS_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "tensor/vector.h"

namespace daakg {

// Numerically stable softmax over `logits`; returns a distribution summing
// to 1. Empty input yields an empty output.
std::vector<double> Softmax(const std::vector<double>& logits);

// Softmax with temperature: softmax(logits / temperature).
// Precondition: temperature > 0.
std::vector<double> SoftmaxWithTemperature(const std::vector<double>& logits,
                                           double temperature);

// Numerically stable log(sum_i exp(x_i)). Returns -inf for empty input.
double LogSumExp(const std::vector<double>& xs);

// Shannon entropy (nats) of a distribution; ignores zero entries.
double Entropy(const std::vector<double>& probs);

// Indices of the k largest values in `scores`, in descending score order.
// Ties broken by lower index. k is clamped to scores.size().
std::vector<size_t> TopKIndices(const std::vector<float>& scores, size_t k);

// Index of the maximum value (first on ties); npos on empty input.
size_t ArgMax(const std::vector<float>& scores);

}  // namespace daakg

#endif  // DAAKG_TENSOR_OPS_H_
