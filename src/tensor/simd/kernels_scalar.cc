// Scalar reference kernels — the always-compiled parity baseline of the
// dispatch table. The dot kernels keep PR 2's accumulator layout (four
// independent lanes, (0+1)+(2+3) combine, sequential tail) so GCC's SLP
// pass still vectorizes them at SSE width on baseline-ISA builds, and so
// existing bit-parity tests against that layout keep holding.

#include "tensor/simd/simd.h"

namespace daakg {
namespace simd {
namespace {

float DotScalar(const float* a, const float* b, size_t n) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  float acc = (acc0 + acc1) + (acc2 + acc3);
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

// Register-tiled micro-kernel: four dot products of `a` against four `b`
// rows at once. Each a[i..i+3] load is reused across all four columns, and
// the 4x4 accumulator grid is exactly four independent copies of
// DotScalar's lanes, so every out[c] is bitwise identical to
// DotScalar(a, b_c, n).
void Dot4Scalar(const float* a, const float* b0, const float* b1,
                const float* b2, const float* b3, size_t n, float out[4]) {
  float acc[4][4] = {};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (size_t j = 0; j < 4; ++j) {
      const float av = a[i + j];
      acc[0][j] += av * b0[i + j];
      acc[1][j] += av * b1[i + j];
      acc[2][j] += av * b2[i + j];
      acc[3][j] += av * b3[i + j];
    }
  }
  for (size_t c = 0; c < 4; ++c) {
    out[c] = (acc[c][0] + acc[c][1]) + (acc[c][2] + acc[c][3]);
  }
  for (; i < n; ++i) {
    out[0] += a[i] * b0[i];
    out[1] += a[i] * b1[i];
    out[2] += a[i] * b2[i];
    out[3] += a[i] * b3[i];
  }
}

void AxpyScalar(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleScalar(float* x, size_t n, float s) {
  for (size_t i = 0; i < n; ++i) x[i] *= s;
}

size_t CountGreaterScalar(const float* values, size_t n, float threshold) {
  size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += values[i] > threshold;
    c1 += values[i + 1] > threshold;
    c2 += values[i + 2] > threshold;
    c3 += values[i + 3] > threshold;
  }
  size_t count = c0 + c1 + c2 + c3;
  for (; i < n; ++i) count += values[i] > threshold;
  return count;
}

}  // namespace

const Ops& ScalarOps() {
  static const Ops ops = {Backend::kScalar, "scalar",    DotScalar,
                          Dot4Scalar,       AxpyScalar, ScaleScalar,
                          CountGreaterScalar};
  return ops;
}

}  // namespace simd
}  // namespace daakg
