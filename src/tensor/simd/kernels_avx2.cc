// AVX2/FMA kernels. This is the ONLY translation unit compiled with
// -mavx2 -mfma (plus -ffp-contract=off; see below) — everything else in
// the binary stays baseline-ISA, and dispatch.cc only routes here after
// runtime CPU detection, so the binary cannot SIGILL on non-AVX2 hosts.
//
// Rounding contract (simd.h):
//   * dot/dot4 use explicit 8-wide _mm256_fmadd_ps accumulation — they may
//     differ from the scalar grid in the last ulps, but dot(a, b_c) is
//     bitwise identical to column c of dot4 (same pair of accumulator
//     chains, same join and horizontal reduce, same scalar tail).
//   * axpy/scale use separate mul and add so every output element rounds
//     exactly like the scalar path. -ffp-contract=off is required for
//     that: GCC implements _mm256_mul_ps/_mm256_add_ps as plain vector
//     * / + which its default -ffp-contract=fast would silently fuse.

#include "tensor/simd/kernels_internal.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace daakg {
namespace simd {
namespace {

// Deterministic reduce: lanes (0+4, 1+5, 2+6, 3+7), then (02+46 ...), then
// the final pair — a fixed tree independent of surrounding code.
inline float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum4 = _mm_add_ps(lo, hi);
  __m128 sum2 = _mm_add_ps(sum4, _mm_movehl_ps(sum4, sum4));
  __m128 sum1 = _mm_add_ss(sum2, _mm_shuffle_ps(sum2, sum2, 0x55));
  return _mm_cvtss_f32(sum1);
}

// Two independent FMA chains (even / odd 8-lane blocks) hide the fused
// multiply-add latency; a lone leftover 8-block goes into the even chain.
// The chains join as even + odd before the horizontal reduce.
float DotAvx2(const float* a, const float* b, size_t n) {
  __m256 acc_e = _mm256_setzero_ps();
  __m256 acc_o = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc_e =
        _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc_e);
    acc_o = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                            _mm256_loadu_ps(b + i + 8), acc_o);
  }
  for (; i + 8 <= n; i += 8) {
    acc_e =
        _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc_e);
  }
  float out = HorizontalSum(_mm256_add_ps(acc_e, acc_o));
  for (; i < n; ++i) out += a[i] * b[i];
  return out;
}

// Four columns sharing the `a` loads per step. Each column's two
// accumulator chains, join, reduce and tail are exactly DotAvx2's, so
// out[c] is bitwise DotAvx2(a, b_c, n) — cells computed via either entry
// point agree.
void Dot4Avx2(const float* a, const float* b0, const float* b1,
              const float* b2, const float* b3, size_t n, float out[4]) {
  __m256 acc0_e = _mm256_setzero_ps(), acc0_o = _mm256_setzero_ps();
  __m256 acc1_e = _mm256_setzero_ps(), acc1_o = _mm256_setzero_ps();
  __m256 acc2_e = _mm256_setzero_ps(), acc2_o = _mm256_setzero_ps();
  __m256 acc3_e = _mm256_setzero_ps(), acc3_o = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 av_e = _mm256_loadu_ps(a + i);
    const __m256 av_o = _mm256_loadu_ps(a + i + 8);
    acc0_e = _mm256_fmadd_ps(av_e, _mm256_loadu_ps(b0 + i), acc0_e);
    acc0_o = _mm256_fmadd_ps(av_o, _mm256_loadu_ps(b0 + i + 8), acc0_o);
    acc1_e = _mm256_fmadd_ps(av_e, _mm256_loadu_ps(b1 + i), acc1_e);
    acc1_o = _mm256_fmadd_ps(av_o, _mm256_loadu_ps(b1 + i + 8), acc1_o);
    acc2_e = _mm256_fmadd_ps(av_e, _mm256_loadu_ps(b2 + i), acc2_e);
    acc2_o = _mm256_fmadd_ps(av_o, _mm256_loadu_ps(b2 + i + 8), acc2_o);
    acc3_e = _mm256_fmadd_ps(av_e, _mm256_loadu_ps(b3 + i), acc3_e);
    acc3_o = _mm256_fmadd_ps(av_o, _mm256_loadu_ps(b3 + i + 8), acc3_o);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 av = _mm256_loadu_ps(a + i);
    acc0_e = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0 + i), acc0_e);
    acc1_e = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1 + i), acc1_e);
    acc2_e = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2 + i), acc2_e);
    acc3_e = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3 + i), acc3_e);
  }
  out[0] = HorizontalSum(_mm256_add_ps(acc0_e, acc0_o));
  out[1] = HorizontalSum(_mm256_add_ps(acc1_e, acc1_o));
  out[2] = HorizontalSum(_mm256_add_ps(acc2_e, acc2_o));
  out[3] = HorizontalSum(_mm256_add_ps(acc3_e, acc3_o));
  for (; i < n; ++i) {
    out[0] += a[i] * b0[i];
    out[1] += a[i] * b1[i];
    out[2] += a[i] * b2[i];
    out[3] += a[i] * b3[i];
  }
}

void AxpyAvx2(float alpha, const float* x, float* y, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAvx2(float* x, size_t n, float s) {
  const __m256 vs = _mm256_set1_ps(s);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), vs));
  }
  for (; i < n; ++i) x[i] *= s;
}

size_t CountGreaterAvx2(const float* values, size_t n, float threshold) {
  const __m256 vt = _mm256_set1_ps(threshold);
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 cmp =
        _mm256_cmp_ps(_mm256_loadu_ps(values + i), vt, _CMP_GT_OQ);
    count += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_ps(cmp))));
  }
  for (; i < n; ++i) count += values[i] > threshold;
  return count;
}

}  // namespace

const Ops* Avx2KernelOps() {
  static const Ops ops = {Backend::kAvx2, "avx2",    DotAvx2,
                          Dot4Avx2,       AxpyAvx2, ScaleAvx2,
                          CountGreaterAvx2};
  return &ops;
}

}  // namespace simd
}  // namespace daakg

#else  // !(__AVX2__ && __FMA__)

namespace daakg {
namespace simd {

// Compiled without AVX2/FMA (non-x86 target or compiler lacking the
// flags): report the kernels as unavailable.
const Ops* Avx2KernelOps() { return nullptr; }

}  // namespace simd
}  // namespace daakg

#endif
