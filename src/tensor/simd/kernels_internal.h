#ifndef DAAKG_TENSOR_SIMD_KERNELS_INTERNAL_H_
#define DAAKG_TENSOR_SIMD_KERNELS_INTERNAL_H_

#include "tensor/simd/simd.h"

namespace daakg {
namespace simd {

// Entry point of the AVX2 kernel translation unit (the only TU built with
// -mavx2 -mfma). Returns null when those kernels were compiled out, so the
// rest of the binary stays baseline-ISA and never even references an AVX2
// instruction. Callers must still gate on CPU feature detection.
const Ops* Avx2KernelOps();

}  // namespace simd
}  // namespace daakg

#endif  // DAAKG_TENSOR_SIMD_KERNELS_INTERNAL_H_
