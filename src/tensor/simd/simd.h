#ifndef DAAKG_TENSOR_SIMD_SIMD_H_
#define DAAKG_TENSOR_SIMD_SIMD_H_

#include <cstddef>

namespace daakg {
namespace simd {

// Runtime-dispatched SIMD kernel backend (see DESIGN.md, "SIMD dispatch").
//
// The library is compiled for the baseline ISA; only the AVX2 kernel
// translation unit is built with -mavx2 -mfma, and the dispatch table below
// routes to it when the CPU actually supports both features. The scalar
// grid stays the always-compiled parity reference.
//
// Rounding contract (load-bearing — tests rely on it):
//   * Elementwise kernels (axpy, scale) produce bit-identical results to
//     the scalar path on every backend: each output element is one float
//     multiply (+ one add), which rounds the same at any vector width, and
//     the AVX2 TU is compiled with -ffp-contract=off so the compiler never
//     fuses the mul+add into an FMA behind our back. Embedding training
//     therefore follows the exact same trajectory on every backend.
//   * Reduction kernels (dot, dot4) are allowed to differ from scalar in
//     the last ulps: the AVX2 path uses 8-wide FMA accumulation. Within a
//     backend, dot(a, b_c) is bit-identical to column c of dot4(a, b0..b3)
//     — same lanes, same combine, same tail — so cached cells computed via
//     either entry point agree exactly.
//   * count_greater is exact on every backend (integer result).

enum class Backend { kScalar = 0, kAvx2 = 1 };

// Per-call backend selector (e.g. BlockedKernelOptions::backend). kAuto
// defers to the process-wide choice made by ActiveOps().
enum class Choice { kAuto = 0, kScalar = 1, kAvx2 = 2 };

// Flat kernel table. Pointers are never null in a table returned by the
// accessors below.
struct Ops {
  Backend backend;
  const char* name;  // "scalar" | "avx2"

  // Reductions: sum_i a[i] * b[i]; dot4 computes four columns sharing `a`.
  float (*dot)(const float* a, const float* b, size_t n);
  void (*dot4)(const float* a, const float* b0, const float* b1,
               const float* b2, const float* b3, size_t n, float out[4]);
  // Elementwise: y[i] += alpha * x[i]; x[i] *= s. Bit-identical across
  // backends (see rounding contract).
  void (*axpy)(float alpha, const float* x, float* y, size_t n);
  void (*scale)(float* x, size_t n, float s);
  // Number of values[i] strictly greater than `threshold`.
  size_t (*count_greater)(const float* values, size_t n, float threshold);
};

// The always-available scalar reference table.
const Ops& ScalarOps();

// The AVX2/FMA table, or null when the kernels were not compiled in or the
// CPU lacks AVX2+FMA.
const Ops* Avx2OpsOrNull();
inline bool Avx2Available() { return Avx2OpsOrNull() != nullptr; }

// The process-wide backend: best available unless overridden by the
// environment (DAAKG_SIMD=scalar|avx2, or DAAKG_FORCE_SCALAR=1). Resolved
// once on first use; logs the detected/selected backend.
const Ops& ActiveOps();

// Maps a per-call Choice onto a table: kAuto -> ActiveOps(); kAvx2 falls
// back to scalar when unavailable.
const Ops& Resolve(Choice choice);

const char* BackendName(Backend backend);

}  // namespace simd
}  // namespace daakg

#endif  // DAAKG_TENSOR_SIMD_SIMD_H_
