// Backend resolution: CPU feature detection plus environment overrides,
// decided once per process on first use of ActiveOps().

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "obs/metrics.h"
#include "tensor/simd/kernels_internal.h"
#include "tensor/simd/simd.h"

namespace daakg {
namespace simd {
namespace {

bool CpuHasAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

// True when the env var is set to a non-empty value other than "0".
bool EnvFlagSet(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

const Ops& ResolveActive() {
  const Ops* avx2 = Avx2OpsOrNull();
  const Ops* chosen = nullptr;
  std::string why;
  const char* env = std::getenv("DAAKG_SIMD");
  if (EnvFlagSet("DAAKG_FORCE_SCALAR")) {
    chosen = &ScalarOps();
    why = "DAAKG_FORCE_SCALAR";
  } else if (env != nullptr && env[0] != '\0') {
    if (std::strcmp(env, "scalar") == 0) {
      chosen = &ScalarOps();
      why = "DAAKG_SIMD=scalar";
    } else if (std::strcmp(env, "avx2") == 0) {
      if (avx2 != nullptr) {
        chosen = avx2;
        why = "DAAKG_SIMD=avx2";
      } else {
        LOG_WARNING << "DAAKG_SIMD=avx2 requested but AVX2+FMA is "
                    << "unavailable on this host/build; using scalar";
        chosen = &ScalarOps();
        why = "DAAKG_SIMD=avx2 (unavailable)";
      }
    } else {
      LOG_WARNING << "Unrecognized DAAKG_SIMD value '" << env
                  << "' (expected scalar|avx2); auto-detecting";
      chosen = avx2 != nullptr ? avx2 : &ScalarOps();
      why = "auto (bad DAAKG_SIMD)";
    }
  } else {
    chosen = avx2 != nullptr ? avx2 : &ScalarOps();
    why = "auto";
  }
  LOG_INFO << "simd: backend '" << chosen->name << "' selected (" << why
           << "; cpu avx2+fma " << (CpuHasAvx2Fma() ? "yes" : "no") << ")";
  obs::GlobalMetrics()
      .GetGauge("daakg.tensor.simd_backend")
      ->Set(static_cast<double>(chosen->backend));
  return *chosen;
}

}  // namespace

const Ops* Avx2OpsOrNull() {
  // Gate the compiled-in kernels on runtime CPU support; cheap enough that
  // caching beyond the magic static is unnecessary.
  static const Ops* ops = CpuHasAvx2Fma() ? Avx2KernelOps() : nullptr;
  return ops;
}

const Ops& ActiveOps() {
  static const Ops& ops = ResolveActive();
  return ops;
}

const Ops& Resolve(Choice choice) {
  switch (choice) {
    case Choice::kScalar:
      return ScalarOps();
    case Choice::kAvx2: {
      const Ops* avx2 = Avx2OpsOrNull();
      return avx2 != nullptr ? *avx2 : ScalarOps();
    }
    case Choice::kAuto:
      break;
  }
  return ActiveOps();
}

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace simd
}  // namespace daakg
