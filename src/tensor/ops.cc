#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace daakg {

std::vector<double> Softmax(const std::vector<double>& logits) {
  return SoftmaxWithTemperature(logits, 1.0);
}

std::vector<double> SoftmaxWithTemperature(const std::vector<double>& logits,
                                           double temperature) {
  DAAKG_CHECK_GT(temperature, 0.0);
  std::vector<double> out(logits.size());
  if (logits.empty()) return out;
  double max_logit = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp((logits[i] - max_logit) / temperature);
    sum += out[i];
  }
  for (auto& v : out) v /= sum;
  return out;
}

double LogSumExp(const std::vector<double>& xs) {
  if (xs.empty()) return -std::numeric_limits<double>::infinity();
  double max_x = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(max_x)) return max_x;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - max_x);
  return max_x + std::log(sum);
}

double Entropy(const std::vector<double>& probs) {
  double h = 0.0;
  for (double p : probs) {
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

std::vector<size_t> TopKIndices(const std::vector<float>& scores, size_t k) {
  k = std::min(k, scores.size());
  std::vector<size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(k),
                    idx.end(), [&scores](size_t a, size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

size_t ArgMax(const std::vector<float>& scores) {
  if (scores.empty()) return static_cast<size_t>(-1);
  return static_cast<size_t>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

}  // namespace daakg
