#ifndef DAAKG_TENSOR_TOPK_H_
#define DAAKG_TENSOR_TOPK_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/simd/simd.h"

namespace daakg {

// Blocked similarity / streaming top-K kernels for the candidate-pool and
// metrics hot paths. The active-learning loop re-ranks all |E1| x |E2|
// entity pairs every round; these kernels stream the similarity matrix
// A * B^T through cache-sized tiles instead of materializing it, keeping
// only bounded top-K state per row and per column (see DESIGN.md,
// "Blocked similarity kernels").

// One (index, score) entry of a top-K list.
struct ScoredIndex {
  uint32_t index;
  float score;

  bool operator==(const ScoredIndex& other) const {
    return index == other.index && score == other.score;
  }
};

// Bounded streaming top-K accumulator: keeps the k largest scores seen so
// far in a min-heap whose root is the weakest kept entry, so a Push that
// does not qualify is O(1) and a qualifying one is O(log k). Ordering
// matches TopKIndices: descending score, ties broken toward the lower
// index.
class TopKAccumulator {
 public:
  explicit TopKAccumulator(size_t k);

  size_t k() const { return k_; }
  size_t size() const { return heap_.size(); }

  // Offers (index, score); kept iff it beats the current weakest entry or
  // fewer than k entries are held. With k == 0 every Push is a no-op.
  void Push(uint32_t index, float score);

  // Folds every kept entry of `other` into this accumulator.
  void Merge(const TopKAccumulator& other);

  // The weakest kept score, or -inf while fewer than k entries are held
  // (i.e. the qualification threshold for Push).
  float Threshold() const;

  // Kept entries in descending score order (ties by ascending index).
  std::vector<ScoredIndex> SortedEntries() const;
  // Kept indexes in the same order.
  std::vector<uint32_t> SortedIndices() const;

 private:
  size_t k_;
  std::vector<ScoredIndex> heap_;
};

// Per-row and per-column top-K lists of a similarity matrix, each sorted in
// descending score order.
struct SimTopK {
  std::vector<std::vector<ScoredIndex>> row_topk;  // size a.rows()
  std::vector<std::vector<ScoredIndex>> col_topk;  // size b.rows()
};

// Tile shape of the blocked kernels. The defaults keep one column tile of
// B (col_block * dim floats) plus one row tile of A resident in L2 while
// each B row is reused row_block times.
struct BlockedKernelOptions {
  size_t row_block = 64;
  size_t col_block = 256;
  // Shard rows across the global thread pool (per-shard column state is
  // merged after the pass). Disable for single-threaded determinism tests.
  bool parallel = true;
  // SIMD kernel backend for this call; kAuto uses the process-wide
  // dispatched backend (see simd/simd.h for the rounding contract).
  simd::Choice backend = simd::Choice::kAuto;
};

// Streams sim = a * b^T (rows of `a` against rows of `b`; equal cols())
// through cache-sized tiles, maintaining the top-`row_k` columns of every
// row and the top-`col_k` rows of every column in one pass. The full
// similarity matrix is never materialized: peak additional memory is
// O(row_block * col_block) per shard for the tile walk plus
// O(row_k * a.rows() + col_k * b.rows()) for the results. Either k may be
// 0 to skip that direction.
SimTopK BlockedSimTopK(const Matrix& a, const Matrix& b, size_t row_k,
                       size_t col_k,
                       const BlockedKernelOptions& options = {});

// Blocked dense product out = a * b^T (out is resized to
// a.rows() x b.rows()). Same tiling and inner loop as BlockedSimTopK, for
// callers that do need the full matrix (e.g. the entity-similarity cache).
void BlockedMatMulNT(const Matrix& a, const Matrix& b, Matrix* out,
                     const BlockedKernelOptions& options = {});

// Row-range variant: recomputes only rows [row_begin, row_end) of
// out = a * b^T, leaving every other row of `out` untouched. `out` must
// already be a.rows() x b.rows(). This is what lets the entity-similarity
// cache refresh individual row bands instead of the whole matrix.
void BlockedMatMulNTRows(const Matrix& a, const Matrix& b, size_t row_begin,
                         size_t row_end, Matrix* out,
                         const BlockedKernelOptions& options = {});

// Streams the tiles of a * b^T without materializing anything, invoking
// visit(r, c0, sims, count) once per (row, tile) with `count` consecutive
// similarities for columns [c0, c0 + count). Rows are sharded across the
// thread pool when options.parallel; all calls for one row come from the
// same shard, in ascending c0 order. Cell values are bitwise identical to
// the corresponding BlockedMatMulNT entries under the same options.
using SimTileVisitor =
    std::function<void(size_t r, size_t c0, const float* sims, size_t count)>;
void BlockedSimVisit(const Matrix& a, const Matrix& b,
                     const SimTileVisitor& visit,
                     const BlockedKernelOptions& options = {});

// Number of entries strictly greater than `threshold` in values[0, n) —
// the rank kernel of EvaluateRanking. Dispatched to the active SIMD
// backend; the count is exact on every backend.
size_t CountGreater(const float* values, size_t n, float threshold);

// Dot product, dispatched to the active SIMD backend. The summation order
// differs from a naive sequential loop (and between backends), so results
// can differ from either in the last ulps.
float DotUnrolled(const float* a, const float* b, size_t n);

}  // namespace daakg

#endif  // DAAKG_TENSOR_TOPK_H_
