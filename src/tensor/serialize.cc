#include "tensor/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace daakg {
namespace {

constexpr char kVectorMagic[4] = {'D', 'K', 'V', '1'};
constexpr char kMatrixMagic[4] = {'D', 'K', 'M', '1'};

Status WriteBytes(std::ofstream& out, const void* data, size_t n) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!out) return IoError("short write");
  return Status::Ok();
}

Status ReadBytes(std::ifstream& in, void* data, size_t n) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (!in) return IoError("short read");
  return Status::Ok();
}

}  // namespace

Status SaveVector(const Vector& v, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return IoError("cannot open for writing: " + path);
  DAAKG_RETURN_IF_ERROR(WriteBytes(out, kVectorMagic, 4));
  uint64_t dim = v.dim();
  DAAKG_RETURN_IF_ERROR(WriteBytes(out, &dim, sizeof(dim)));
  DAAKG_RETURN_IF_ERROR(WriteBytes(out, v.data(), dim * sizeof(float)));
  return Status::Ok();
}

StatusOr<Vector> LoadVector(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open for reading: " + path);
  char magic[4];
  DAAKG_RETURN_IF_ERROR(ReadBytes(in, magic, 4));
  if (std::memcmp(magic, kVectorMagic, 4) != 0) {
    return InvalidArgumentError("not a vector file: " + path);
  }
  uint64_t dim = 0;
  DAAKG_RETURN_IF_ERROR(ReadBytes(in, &dim, sizeof(dim)));
  Vector v(dim);
  DAAKG_RETURN_IF_ERROR(ReadBytes(in, v.data(), dim * sizeof(float)));
  return v;
}

Status SaveMatrix(const Matrix& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return IoError("cannot open for writing: " + path);
  DAAKG_RETURN_IF_ERROR(WriteBytes(out, kMatrixMagic, 4));
  uint64_t rows = m.rows();
  uint64_t cols = m.cols();
  DAAKG_RETURN_IF_ERROR(WriteBytes(out, &rows, sizeof(rows)));
  DAAKG_RETURN_IF_ERROR(WriteBytes(out, &cols, sizeof(cols)));
  if (rows * cols > 0) {
    DAAKG_RETURN_IF_ERROR(
        WriteBytes(out, m.RowData(0), rows * cols * sizeof(float)));
  }
  return Status::Ok();
}

StatusOr<Matrix> LoadMatrix(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open for reading: " + path);
  char magic[4];
  DAAKG_RETURN_IF_ERROR(ReadBytes(in, magic, 4));
  if (std::memcmp(magic, kMatrixMagic, 4) != 0) {
    return InvalidArgumentError("not a matrix file: " + path);
  }
  uint64_t rows = 0;
  uint64_t cols = 0;
  DAAKG_RETURN_IF_ERROR(ReadBytes(in, &rows, sizeof(rows)));
  DAAKG_RETURN_IF_ERROR(ReadBytes(in, &cols, sizeof(cols)));
  Matrix m(rows, cols);
  if (rows * cols > 0) {
    DAAKG_RETURN_IF_ERROR(
        ReadBytes(in, m.RowData(0), rows * cols * sizeof(float)));
  }
  return m;
}

}  // namespace daakg
