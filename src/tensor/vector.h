#ifndef DAAKG_TENSOR_VECTOR_H_
#define DAAKG_TENSOR_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace daakg {

// Dense float vector with the arithmetic the embedding stack needs.
// Value semantics; copy is an explicit deep copy like std::vector.
class Vector {
 public:
  Vector() = default;
  explicit Vector(size_t dim, float value = 0.0f) : data_(dim, value) {}
  Vector(std::initializer_list<float> values) : data_(values) {}
  explicit Vector(std::vector<float> values) : data_(std::move(values)) {}

  Vector(const Vector&) = default;
  Vector& operator=(const Vector&) = default;
  Vector(Vector&&) = default;
  Vector& operator=(Vector&&) = default;

  size_t dim() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  const std::vector<float>& values() const { return data_; }

  void Resize(size_t dim, float value = 0.0f) { data_.resize(dim, value); }
  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  // In-place arithmetic. Dimensions must match.
  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(float s);
  Vector& operator/=(float s);

  // this += alpha * x.
  void Axpy(float alpha, const Vector& x);

  // Elementwise product: this[i] *= other[i].
  void Hadamard(const Vector& other);

  float Dot(const Vector& other) const;

  // Euclidean norm and its square.
  float Norm() const;
  float SquaredNorm() const;
  // Sum of |x_i|.
  float L1Norm() const;

  // Scales to unit Euclidean norm; leaves a zero vector untouched.
  void Normalize();

  // Clips every coordinate into [-bound, bound].
  void Clip(float bound);

  // Fills with U(-scale, scale).
  void InitUniform(Rng* rng, float scale);
  // Fills with N(0, stddev^2).
  void InitGaussian(Rng* rng, float stddev);
  // Xavier/Glorot uniform for a dim-sized embedding: U(+-sqrt(6/dim)).
  void InitXavier(Rng* rng);

  bool operator==(const Vector& other) const { return data_ == other.data_; }

 private:
  std::vector<float> data_;
};

// Out-of-place arithmetic.
Vector operator+(const Vector& a, const Vector& b);
Vector operator-(const Vector& a, const Vector& b);
Vector operator*(const Vector& a, float s);
Vector operator*(float s, const Vector& a);

float Dot(const Vector& a, const Vector& b);

// Cosine similarity in [-1, 1]; returns 0 if either vector is zero.
float Cosine(const Vector& a, const Vector& b);

// Cosine similarity plus its gradients with respect to both inputs
// (d sim / d a into *da, d sim / d b into *db). Zero vectors yield zero
// similarity and zero gradients.
float CosineWithGradients(const Vector& a, const Vector& b, Vector* da,
                          Vector* db);

// Euclidean distance ||a - b||.
float EuclideanDistance(const Vector& a, const Vector& b);
float SquaredDistance(const Vector& a, const Vector& b);

// Concatenates a and b.
Vector Concat(const Vector& a, const Vector& b);

}  // namespace daakg

#endif  // DAAKG_TENSOR_VECTOR_H_
