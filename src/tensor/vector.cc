#include "tensor/vector.h"

#include <algorithm>
#include <cmath>

#include "tensor/simd/simd.h"

namespace daakg {

// Elementwise mutators route through the dispatched axpy/scale kernels,
// which are bit-identical to the scalar loops on every backend (rounding
// contract in simd/simd.h) — so trainers take the same trajectory whether
// or not AVX2 is available. Reductions (Dot, norms) stay double-accumulated
// scalar: vectorizing them would change rounding across backends.

void Vector::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Vector& Vector::operator+=(const Vector& other) {
  DAAKG_CHECK_EQ(dim(), other.dim());
  simd::ActiveOps().axpy(1.0f, other.data_.data(), data_.data(),
                         data_.size());
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  DAAKG_CHECK_EQ(dim(), other.dim());
  simd::ActiveOps().axpy(-1.0f, other.data_.data(), data_.data(),
                         data_.size());
  return *this;
}

Vector& Vector::operator*=(float s) {
  simd::ActiveOps().scale(data_.data(), data_.size(), s);
  return *this;
}

Vector& Vector::operator/=(float s) {
  DAAKG_CHECK_NE(s, 0.0f);
  return (*this) *= (1.0f / s);
}

void Vector::Axpy(float alpha, const Vector& x) {
  DAAKG_CHECK_EQ(dim(), x.dim());
  simd::ActiveOps().axpy(alpha, x.data_.data(), data_.data(), data_.size());
}

void Vector::Hadamard(const Vector& other) {
  DAAKG_CHECK_EQ(dim(), other.dim());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

float Vector::Dot(const Vector& other) const {
  DAAKG_CHECK_EQ(dim(), other.dim());
  // Accumulate in double to keep the property tests tight.
  double acc = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    acc += static_cast<double>(data_[i]) * other.data_[i];
  }
  return static_cast<float>(acc);
}

float Vector::Norm() const { return std::sqrt(SquaredNorm()); }

float Vector::SquaredNorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(acc);
}

float Vector::L1Norm() const {
  double acc = 0.0;
  for (float v : data_) acc += std::fabs(v);
  return static_cast<float>(acc);
}

void Vector::Normalize() {
  float n = Norm();
  if (n > 0.0f) (*this) /= n;
}

void Vector::Clip(float bound) {
  for (auto& v : data_) v = std::clamp(v, -bound, bound);
}

void Vector::InitUniform(Rng* rng, float scale) {
  for (auto& v : data_) {
    v = static_cast<float>(rng->NextDouble(-scale, scale));
  }
}

void Vector::InitGaussian(Rng* rng, float stddev) {
  for (auto& v : data_) {
    v = static_cast<float>(rng->NextGaussian() * stddev);
  }
}

void Vector::InitXavier(Rng* rng) {
  if (data_.empty()) return;
  float scale = std::sqrt(6.0f / static_cast<float>(data_.size()));
  InitUniform(rng, scale);
}

Vector operator+(const Vector& a, const Vector& b) {
  Vector out = a;
  out += b;
  return out;
}

Vector operator-(const Vector& a, const Vector& b) {
  Vector out = a;
  out -= b;
  return out;
}

Vector operator*(const Vector& a, float s) {
  Vector out = a;
  out *= s;
  return out;
}

Vector operator*(float s, const Vector& a) { return a * s; }

float Dot(const Vector& a, const Vector& b) { return a.Dot(b); }

float Cosine(const Vector& a, const Vector& b) {
  float na = a.Norm();
  float nb = b.Norm();
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return a.Dot(b) / (na * nb);
}

float CosineWithGradients(const Vector& a, const Vector& b, Vector* da,
                          Vector* db) {
  *da = Vector(a.dim());
  *db = Vector(b.dim());
  const float na = a.Norm();
  const float nb = b.Norm();
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  const float sim = a.Dot(b) / (na * nb);
  for (size_t i = 0; i < a.dim(); ++i) {
    (*da)[i] = b[i] / (na * nb) - sim * a[i] / (na * na);
    (*db)[i] = a[i] / (na * nb) - sim * b[i] / (nb * nb);
  }
  return sim;
}

float EuclideanDistance(const Vector& a, const Vector& b) {
  return std::sqrt(SquaredDistance(a, b));
}

float SquaredDistance(const Vector& a, const Vector& b) {
  DAAKG_CHECK_EQ(a.dim(), b.dim());
  double acc = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return static_cast<float>(acc);
}

Vector Concat(const Vector& a, const Vector& b) {
  Vector out(a.dim() + b.dim());
  for (size_t i = 0; i < a.dim(); ++i) out[i] = a[i];
  for (size_t i = 0; i < b.dim(); ++i) out[a.dim() + i] = b[i];
  return out;
}

}  // namespace daakg
