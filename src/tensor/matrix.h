#ifndef DAAKG_TENSOR_MATRIX_H_
#define DAAKG_TENSOR_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "tensor/vector.h"

namespace daakg {

// Dense row-major float matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, float value = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  float& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* RowData(size_t r) { return data_.data() + r * cols_; }
  const float* RowData(size_t r) const { return data_.data() + r * cols_; }

  // Copies row r into a Vector.
  Vector Row(size_t r) const;
  // Overwrites row r with v (v.dim() must equal cols()).
  void SetRow(size_t r, const Vector& v);
  // Adds alpha * v into row r.
  void RowAxpy(size_t r, float alpha, const Vector& v);

  void Fill(float value);
  void SetZero() { Fill(0.0f); }
  // Sets the matrix to identity (must be square).
  void SetIdentity();

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(float s);
  // this += alpha * other.
  void Axpy(float alpha, const Matrix& other);

  // y = this * x  (dims: rows x cols * cols -> rows).
  Vector Multiply(const Vector& x) const;
  // y = this^T * x (dims: cols x rows * rows -> cols).
  Vector TransposeMultiply(const Vector& x) const;
  // C = this * other.
  Matrix Multiply(const Matrix& other) const;
  Matrix Transposed() const;

  // Adds alpha * a * b^T (outer product) to this; a.dim()==rows,
  // b.dim()==cols. The core update for mapping-matrix gradients.
  void AddOuter(float alpha, const Vector& a, const Vector& b);

  // Frobenius norm.
  float Norm() const;

  void InitUniform(Rng* rng, float scale);
  void InitGaussian(Rng* rng, float stddev);
  // Xavier/Glorot uniform: U(+-sqrt(6/(rows+cols))).
  void InitXavier(Rng* rng);

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace daakg

#endif  // DAAKG_TENSOR_MATRIX_H_
