#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>

#include "tensor/simd/simd.h"

namespace daakg {

Vector Matrix::Row(size_t r) const {
  DAAKG_CHECK_LT(r, rows_);
  Vector out(cols_);
  const float* src = RowData(r);
  for (size_t c = 0; c < cols_; ++c) out[c] = src[c];
  return out;
}

void Matrix::SetRow(size_t r, const Vector& v) {
  DAAKG_CHECK_LT(r, rows_);
  DAAKG_CHECK_EQ(v.dim(), cols_);
  float* dst = RowData(r);
  for (size_t c = 0; c < cols_; ++c) dst[c] = v[c];
}

void Matrix::RowAxpy(size_t r, float alpha, const Vector& v) {
  DAAKG_CHECK_LT(r, rows_);
  DAAKG_CHECK_EQ(v.dim(), cols_);
  // Dispatched but bit-identical to the scalar loop on every backend
  // (rounding contract in simd/simd.h) — this is the trainers' embedding
  // update path, which must not diverge across backends.
  simd::ActiveOps().axpy(alpha, v.data(), RowData(r), cols_);
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::SetIdentity() {
  DAAKG_CHECK_EQ(rows_, cols_);
  SetZero();
  for (size_t i = 0; i < rows_; ++i) (*this)(i, i) = 1.0f;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  DAAKG_CHECK_EQ(rows_, other.rows_);
  DAAKG_CHECK_EQ(cols_, other.cols_);
  simd::ActiveOps().axpy(1.0f, other.data_.data(), data_.data(),
                         data_.size());
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  DAAKG_CHECK_EQ(rows_, other.rows_);
  DAAKG_CHECK_EQ(cols_, other.cols_);
  simd::ActiveOps().axpy(-1.0f, other.data_.data(), data_.data(),
                         data_.size());
  return *this;
}

Matrix& Matrix::operator*=(float s) {
  simd::ActiveOps().scale(data_.data(), data_.size(), s);
  return *this;
}

void Matrix::Axpy(float alpha, const Matrix& other) {
  DAAKG_CHECK_EQ(rows_, other.rows_);
  DAAKG_CHECK_EQ(cols_, other.cols_);
  simd::ActiveOps().axpy(alpha, other.data_.data(), data_.data(),
                         data_.size());
}

Vector Matrix::Multiply(const Vector& x) const {
  DAAKG_CHECK_EQ(x.dim(), cols_);
  Vector y(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const float* row = RowData(r);
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) {
      acc += static_cast<double>(row[c]) * x[c];
    }
    y[r] = static_cast<float>(acc);
  }
  return y;
}

Vector Matrix::TransposeMultiply(const Vector& x) const {
  DAAKG_CHECK_EQ(x.dim(), rows_);
  Vector y(cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const float* row = RowData(r);
    const float xr = x[r];
    if (xr == 0.0f) continue;
    for (size_t c = 0; c < cols_; ++c) y[c] += xr * row[c];
  }
  return y;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  DAAKG_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    const float* a_row = RowData(i);
    float* out_row = out.RowData(i);
    for (size_t k = 0; k < cols_; ++k) {
      const float a = a_row[k];
      if (a == 0.0f) continue;
      const float* b_row = other.RowData(k);
      for (size_t j = 0; j < other.cols_; ++j) {
        out_row[j] += a * b_row[j];
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

void Matrix::AddOuter(float alpha, const Vector& a, const Vector& b) {
  DAAKG_CHECK_EQ(a.dim(), rows_);
  DAAKG_CHECK_EQ(b.dim(), cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const float ar = alpha * a[r];
    if (ar == 0.0f) continue;
    float* row = RowData(r);
    for (size_t c = 0; c < cols_; ++c) row[c] += ar * b[c];
  }
}

float Matrix::Norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

void Matrix::InitUniform(Rng* rng, float scale) {
  for (auto& v : data_) {
    v = static_cast<float>(rng->NextDouble(-scale, scale));
  }
}

void Matrix::InitGaussian(Rng* rng, float stddev) {
  for (auto& v : data_) {
    v = static_cast<float>(rng->NextGaussian() * stddev);
  }
}

void Matrix::InitXavier(Rng* rng) {
  if (data_.empty()) return;
  float scale = std::sqrt(6.0f / static_cast<float>(rows_ + cols_));
  InitUniform(rng, scale);
}

}  // namespace daakg
