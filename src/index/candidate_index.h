#ifndef DAAKG_INDEX_CANDIDATE_INDEX_H_
#define DAAKG_INDEX_CANDIDATE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "tensor/matrix.h"
#include "tensor/topk.h"

namespace daakg {

// Candidate-generation index (see DESIGN.md, "Candidate index").
//
// Every quadratic candidate phase of the pipeline — pool generation,
// greedy one-to-one matching, streaming ranking — reduces to the same
// primitive: given a fixed matrix of base rows and a matrix of query rows,
// find the base rows with the largest dot products per query. CandidateIndex
// lifts that primitive onto an interface with two backends:
//
//   * ExactIndex: a thin adapter over the blocked streaming kernels
//     (BlockedSimTopK / BlockedSimVisit). Bit-identical to scanning the full
//     similarity matrix — same tiles, same dispatched dot kernels.
//   * IvfIndex: an IVF-style coarse quantizer. Spherical k-means over the
//     unit-normalized base rows builds `nlist` inverted lists; each query
//     probes its `nprobe` most similar lists and *exactly re-scores* every
//     member row through the same dispatched dot kernels the blocked pass
//     uses. Scores of returned candidates are therefore bitwise identical to
//     the exact pass's cells for the same rows — only the candidate *set*
//     is approximate (bounded by list recall, measured in
//     bench/fig6_pool_recall).
//
// Backends are selected per call site through CandidateIndexConfig::backend;
// kAuto follows the process-wide DAAKG_INDEX=exact|ivf override (mirroring
// DAAKG_SIMD), defaulting to exact.

// Concrete backend of a built index.
enum class IndexBackendKind { kExact = 0, kIvf = 1 };

// Per-config backend selector. kAuto defers to the process-wide choice
// resolved once from DAAKG_INDEX (default: exact).
enum class IndexChoice { kAuto = 0, kExact = 1, kIvf = 2 };

struct CandidateIndexConfig {
  IndexChoice backend = IndexChoice::kAuto;
  // IVF: number of inverted lists; 0 picks ~sqrt(base rows). Clamped to the
  // number of base rows.
  size_t nlist = 0;
  // IVF: lists probed per query (clamped to nlist). Recall/speed knob.
  size_t nprobe = 8;
  // IVF requests on bases smaller than this fall back to ExactIndex (the
  // quadratic pass is cheaper than clustering at small n; the fallback is
  // counted in daakg.index.ann_fallbacks).
  size_t min_rows_for_ann = 4096;
  // IVF: k-means refinement iterations over the unit rows.
  int kmeans_iters = 6;
  // Unit-normalize the base rows once at build time (dot == cosine). Uses
  // the exact arithmetic of Vector::Normalize, so rows normalized here are
  // bitwise identical to rows the caller normalized per-Vector.
  bool normalize = false;
  // Seed of the k-means initialization (same seed => identical index).
  uint64_t seed = 13;
  // Tile shape / parallelism / SIMD backend of the underlying kernels.
  BlockedKernelOptions kernel;

  // Rejects non-positive nprobe/kmeans_iters and nprobe > explicit nlist
  // with InvalidArgumentError.
  Status Validate() const;
};

// What CandidateIndex::Build produced.
struct IndexBuildStats {
  IndexBackendKind backend = IndexBackendKind::kExact;
  size_t rows = 0;
  size_t dim = 0;
  size_t nlist = 0;  // 0 for exact
  // True when an IVF request was served by ExactIndex because the base had
  // fewer than min_rows_for_ann rows.
  bool ann_fallback = false;
  double build_seconds = 0.0;
};

// One ranking query for CountAbove: how many base rows score strictly
// greater than `target` against query row `query_row`?
struct RankQuery {
  uint32_t query_row;
  float target;
};

class CandidateIndex {
 public:
  virtual ~CandidateIndex() = default;

  CandidateIndex(const CandidateIndex&) = delete;
  CandidateIndex& operator=(const CandidateIndex&) = delete;

  IndexBackendKind backend() const { return build_stats_.backend; }
  const char* name() const;
  // The (possibly normalized) base rows the index was built over.
  const Matrix& base() const { return base_; }
  const CandidateIndexConfig& config() const { return config_; }
  const IndexBuildStats& build_stats() const { return build_stats_; }

  // Top-`row_k` base rows per query row and top-`col_k` query rows per base
  // row (either k may be 0 to skip that direction), both in descending
  // score order. Exact backend: identical to BlockedSimTopK(queries, base).
  // IVF backend: restricted to probed lists; scores of returned entries are
  // still bitwise exact.
  virtual SimTopK QueryTopK(const Matrix& queries, size_t row_k,
                            size_t col_k) const = 0;

  // Per query row, every candidate with score >= threshold, in ascending
  // base-row order (i.e. concatenating the rows reproduces a row-major scan
  // of the similarity matrix). Exact backend: all qualifying cells, bitwise
  // identical to the BlockedMatMulNT cells. IVF: qualifying probed cells.
  virtual std::vector<std::vector<ScoredIndex>> QueryAbove(
      const Matrix& queries, float threshold) const = 0;

  // For each RankQuery, the number of base rows scoring strictly greater
  // than its target (the streaming-ranking kernel). Exact backend: exact
  // counts; IVF: counts over probed rows only (a lower bound).
  virtual std::vector<size_t> CountAbove(
      const Matrix& queries, const std::vector<RankQuery>& rank_queries)
      const = 0;

  // Exact score of one base row / a set of base rows against `query`
  // (dim == base().cols()), via the configured dispatched dot kernel.
  // Available on every backend — this is the exact re-scoring primitive.
  float Score(const float* query, uint32_t base_row) const;
  void ScoreRows(const float* query, const std::vector<uint32_t>& base_rows,
                 float* out) const;

  // Builds an index over `base` (taken by value; move in to avoid the
  // copy). Resolves the backend per `config.backend` and applies the
  // min_rows_for_ann fallback. Fails on an invalid config or an empty base.
  static StatusOr<std::unique_ptr<CandidateIndex>> Build(
      Matrix base, const CandidateIndexConfig& config);

 protected:
  CandidateIndex(Matrix base, const CandidateIndexConfig& config);

  Matrix base_;
  CandidateIndexConfig config_;
  IndexBuildStats build_stats_;
};

// Parses "exact" | "ivf" | "auto" into a choice; false on anything else.
bool ParseIndexChoice(const char* value, IndexChoice* out);

// Maps a choice onto a concrete backend. kAuto is resolved once per process
// from DAAKG_INDEX (default exact) and the decision logged, mirroring the
// DAAKG_SIMD pattern.
IndexBackendKind ResolveIndexBackend(IndexChoice choice);

const char* IndexBackendName(IndexBackendKind kind);
const char* IndexChoiceName(IndexChoice choice);

// Unit-normalizes `row` in place with the exact arithmetic of
// Vector::Normalize (double-accumulated squared norm, float sqrt, single
// reciprocal multiply; zero rows untouched).
void UnitNormalizeRow(float* row, size_t dim);
// Row-parallel UnitNormalizeRow over every row of `m`.
void UnitNormalizeRows(Matrix* m);

}  // namespace daakg

#endif  // DAAKG_INDEX_CANDIDATE_INDEX_H_
