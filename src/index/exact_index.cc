// ExactIndex: the CandidateIndex adapter over the blocked streaming
// kernels. Every query method is a direct delegation to BlockedSimTopK /
// BlockedSimVisit under the configured kernel options, so outputs are
// bit-identical to the pre-index code paths that called those kernels
// directly (the parity tests in tests/index_test.cc pin this down).

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "index/candidate_index.h"
#include "index/internal.h"
#include "obs/trace.h"
#include "tensor/simd/simd.h"
#include "tensor/topk.h"

namespace daakg {
namespace index_internal {
namespace {

class ExactIndex final : public CandidateIndex {
 public:
  ExactIndex(Matrix base, const CandidateIndexConfig& config)
      : CandidateIndex(std::move(base), config) {
    build_stats_.backend = IndexBackendKind::kExact;
  }

  SimTopK QueryTopK(const Matrix& queries, size_t row_k,
                    size_t col_k) const override {
    obs::TraceSpan span("index.query_topk", "index", nullptr,
                        obs::TimingMode::kAlways);
    span.AddArg("queries", static_cast<double>(queries.rows()));
    SimTopK out = BlockedSimTopK(queries, base_, row_k, col_k, config_.kernel);
    const uint64_t cells =
        static_cast<uint64_t>(queries.rows()) * base_.rows();
    RecordQuery(cells, cells, span.Finish());
    uint64_t candidates = 0;
    for (const auto& row : out.row_topk) candidates += row.size();
    for (const auto& col : out.col_topk) candidates += col.size();
    RecordCandidates(candidates);
    return out;
  }

  std::vector<std::vector<ScoredIndex>> QueryAbove(
      const Matrix& queries, float threshold) const override {
    obs::TraceSpan span("index.query_above", "index", nullptr,
                        obs::TimingMode::kAlways);
    span.AddArg("queries", static_cast<double>(queries.rows()));
    std::vector<std::vector<ScoredIndex>> out(queries.rows());
    // All tiles of one query row arrive from a single shard in ascending
    // column order, so each out[r] is built in ascending base-row order
    // with no synchronization.
    BlockedSimVisit(
        queries, base_,
        [&out, threshold](size_t r, size_t c0, const float* sims,
                          size_t count) {
          auto& row = out[r];
          for (size_t i = 0; i < count; ++i) {
            if (sims[i] >= threshold) {
              row.push_back(
                  ScoredIndex{static_cast<uint32_t>(c0 + i), sims[i]});
            }
          }
        },
        config_.kernel);
    const uint64_t cells =
        static_cast<uint64_t>(queries.rows()) * base_.rows();
    RecordQuery(cells, cells, span.Finish());
    return out;
  }

  std::vector<size_t> CountAbove(
      const Matrix& queries,
      const std::vector<RankQuery>& rank_queries) const override {
    obs::TraceSpan span("index.count_above", "index", nullptr,
                        obs::TimingMode::kAlways);
    span.AddArg("queries", static_cast<double>(rank_queries.size()));
    std::vector<size_t> greater(rank_queries.size(), 0);
    std::vector<std::vector<size_t>> of_row(queries.rows());
    for (size_t i = 0; i < rank_queries.size(); ++i) {
      of_row[rank_queries[i].query_row].push_back(i);
    }
    const simd::Ops& ops = simd::Resolve(config_.kernel.backend);
    // Same single-writer structure as QueryAbove: every greater[i] is only
    // touched by the shard owning query row rank_queries[i].query_row.
    BlockedSimVisit(
        queries, base_,
        [&](size_t r, size_t /*c0*/, const float* sims, size_t count) {
          for (size_t i : of_row[r]) {
            greater[i] +=
                ops.count_greater(sims, count, rank_queries[i].target);
          }
        },
        config_.kernel);
    const uint64_t cells =
        static_cast<uint64_t>(queries.rows()) * base_.rows();
    RecordQuery(cells, cells, span.Finish());
    return greater;
  }
};

}  // namespace

std::unique_ptr<CandidateIndex> MakeExactIndex(
    Matrix base, const CandidateIndexConfig& config) {
  return std::make_unique<ExactIndex>(std::move(base), config);
}

}  // namespace index_internal
}  // namespace daakg
