#include "index/candidate_index.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "index/internal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/simd/simd.h"

namespace daakg {

Status CandidateIndexConfig::Validate() const {
  switch (backend) {
    case IndexChoice::kAuto:
    case IndexChoice::kExact:
    case IndexChoice::kIvf:
      break;
    default:
      return InvalidArgumentError("index.backend holds an out-of-range value");
  }
  if (nprobe == 0) {
    return InvalidArgumentError("index.nprobe must be positive");
  }
  if (nlist > 0 && nprobe > nlist) {
    return InvalidArgumentError("index.nprobe must not exceed index.nlist");
  }
  if (kmeans_iters <= 0) {
    return InvalidArgumentError("index.kmeans_iters must be positive");
  }
  return Status::Ok();
}

bool ParseIndexChoice(const char* value, IndexChoice* out) {
  if (value == nullptr) return false;
  if (std::strcmp(value, "exact") == 0) {
    *out = IndexChoice::kExact;
    return true;
  }
  if (std::strcmp(value, "ivf") == 0) {
    *out = IndexChoice::kIvf;
    return true;
  }
  if (std::strcmp(value, "auto") == 0) {
    *out = IndexChoice::kAuto;
    return true;
  }
  return false;
}

const char* IndexBackendName(IndexBackendKind kind) {
  switch (kind) {
    case IndexBackendKind::kExact:
      return "exact";
    case IndexBackendKind::kIvf:
      return "ivf";
  }
  return "unknown";
}

const char* IndexChoiceName(IndexChoice choice) {
  switch (choice) {
    case IndexChoice::kAuto:
      return "auto";
    case IndexChoice::kExact:
      return "exact";
    case IndexChoice::kIvf:
      return "ivf";
  }
  return "unknown";
}

namespace {

// The kAuto backend, decided once per process from DAAKG_INDEX — same shape
// as the DAAKG_SIMD resolution in tensor/simd/dispatch.cc: log the decision,
// warn on unrecognized values, publish a gauge.
IndexBackendKind ResolveAutoBackend() {
  IndexBackendKind kind = IndexBackendKind::kExact;
  std::string why = "default";
  const char* env = std::getenv("DAAKG_INDEX");
  if (env != nullptr && env[0] != '\0') {
    IndexChoice choice = IndexChoice::kAuto;
    if (ParseIndexChoice(env, &choice) && choice != IndexChoice::kAuto) {
      kind = choice == IndexChoice::kIvf ? IndexBackendKind::kIvf
                                         : IndexBackendKind::kExact;
      why = std::string("DAAKG_INDEX=") + env;
    } else {
      LOG_WARNING << "Unrecognized DAAKG_INDEX value '" << env
                  << "' (expected exact|ivf); using exact";
      why = "default (bad DAAKG_INDEX)";
    }
  }
  LOG_INFO << "index: auto candidate-index backend '" << IndexBackendName(kind)
           << "' selected (" << why << ")";
  obs::GlobalMetrics()
      .GetGauge("daakg.index.auto_backend")
      ->Set(static_cast<double>(kind));
  return kind;
}

}  // namespace

IndexBackendKind ResolveIndexBackend(IndexChoice choice) {
  switch (choice) {
    case IndexChoice::kExact:
      return IndexBackendKind::kExact;
    case IndexChoice::kIvf:
      return IndexBackendKind::kIvf;
    case IndexChoice::kAuto:
      break;
  }
  static const IndexBackendKind auto_kind = ResolveAutoBackend();
  return auto_kind;
}

void UnitNormalizeRow(float* row, size_t dim) {
  // Exact Vector::Normalize arithmetic: double-accumulated squared norm
  // narrowed to float, float sqrt, then one reciprocal multiply per element
  // (the dispatched scale kernel is bit-identical to this loop on every
  // backend — rounding contract in tensor/simd/simd.h).
  double acc = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    acc += static_cast<double>(row[i]) * row[i];
  }
  const float n = std::sqrt(static_cast<float>(acc));
  if (n > 0.0f) {
    const float inv = 1.0f / n;
    for (size_t i = 0; i < dim; ++i) row[i] *= inv;
  }
}

void UnitNormalizeRows(Matrix* m) {
  const size_t dim = m->cols();
  GlobalThreadPool().ParallelFor(
      m->rows(), [m, dim](size_t r) { UnitNormalizeRow(m->RowData(r), dim); });
}

CandidateIndex::CandidateIndex(Matrix base, const CandidateIndexConfig& config)
    : base_(std::move(base)), config_(config) {
  if (config_.normalize) UnitNormalizeRows(&base_);
  build_stats_.rows = base_.rows();
  build_stats_.dim = base_.cols();
}

const char* CandidateIndex::name() const {
  return IndexBackendName(backend());
}

float CandidateIndex::Score(const float* query, uint32_t base_row) const {
  const simd::Ops& ops = simd::Resolve(config_.kernel.backend);
  return ops.dot(query, base_.RowData(base_row), base_.cols());
}

void CandidateIndex::ScoreRows(const float* query,
                               const std::vector<uint32_t>& base_rows,
                               float* out) const {
  const simd::Ops& ops = simd::Resolve(config_.kernel.backend);
  const size_t dim = base_.cols();
  for (size_t i = 0; i < base_rows.size(); ++i) {
    out[i] = ops.dot(query, base_.RowData(base_rows[i]), dim);
  }
}

StatusOr<std::unique_ptr<CandidateIndex>> CandidateIndex::Build(
    Matrix base, const CandidateIndexConfig& config) {
  static obs::Counter* builds =
      obs::GlobalMetrics().GetCounter("daakg.index.builds");
  static obs::Histogram* build_timing =
      obs::GlobalMetrics().GetHistogram("daakg.index.build_seconds");
  static obs::Counter* fallbacks =
      obs::GlobalMetrics().GetCounter("daakg.index.ann_fallbacks");
  static obs::Gauge* nlist_gauge =
      obs::GlobalMetrics().GetGauge("daakg.index.nlist");
  DAAKG_RETURN_IF_ERROR(config.Validate());
  if (base.rows() == 0 || base.cols() == 0) {
    return InvalidArgumentError("index base must be non-empty");
  }
  // Fused timing: the span feeds the build histogram and build_stats_ gets
  // the identical duration from Finish() (kAlways: stats need it regardless
  // of tracing).
  obs::TraceSpan span("index.build", "index", build_timing,
                      obs::TimingMode::kAlways);
  span.AddArg("rows", static_cast<double>(base.rows()));
  IndexBackendKind kind = ResolveIndexBackend(config.backend);
  bool fallback = false;
  if (kind == IndexBackendKind::kIvf && base.rows() < config.min_rows_for_ann) {
    kind = IndexBackendKind::kExact;
    fallback = true;
    fallbacks->Increment();
  }
  std::unique_ptr<CandidateIndex> out =
      kind == IndexBackendKind::kIvf
          ? index_internal::MakeIvfIndex(std::move(base), config)
          : index_internal::MakeExactIndex(std::move(base), config);
  out->build_stats_.ann_fallback = fallback;
  span.AddArg("nlist", static_cast<double>(out->build_stats_.nlist));
  out->build_stats_.build_seconds = span.Finish();
  builds->Increment();
  nlist_gauge->Set(static_cast<double>(out->build_stats_.nlist));
  return out;
}

namespace index_internal {

void RecordQuery(uint64_t scored_cells, uint64_t total_cells, double seconds) {
  static obs::Counter* queries =
      obs::GlobalMetrics().GetCounter("daakg.index.queries");
  static obs::Counter* scored =
      obs::GlobalMetrics().GetCounter("daakg.index.scored_cells");
  static obs::Counter* total =
      obs::GlobalMetrics().GetCounter("daakg.index.total_cells");
  static obs::Histogram* query_timing =
      obs::GlobalMetrics().GetHistogram("daakg.index.query_seconds");
  static obs::Gauge* probed_fraction =
      obs::GlobalMetrics().GetGauge("daakg.index.probed_fraction");
  queries->Increment();
  scored->Increment(scored_cells);
  total->Increment(total_cells);
  query_timing->Record(seconds);
  probed_fraction->Set(total_cells > 0 ? static_cast<double>(scored_cells) /
                                             static_cast<double>(total_cells)
                                       : 0.0);
}

void RecordCandidates(uint64_t count) {
  static obs::Counter* candidates =
      obs::GlobalMetrics().GetCounter("daakg.index.candidates");
  candidates->Increment(count);
}

}  // namespace index_internal
}  // namespace daakg
