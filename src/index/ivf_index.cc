// IvfIndex: IVF-style coarse quantizer over unit-normalized rows.
//
// Build: spherical k-means (assignment by maximum dot against unit
// centroids, double-accumulated centroid updates, unit-renormalized each
// iteration) partitions the base rows into `nlist` inverted lists. The
// assignment pass is row-parallel; the centroid update folds rows
// sequentially in row order, so the built index is identical whether or not
// the pool parallelized the assignments — and identical across rebuilds
// with the same seed (k-means++-free: init samples rows via the seeded
// Rng).
//
// Query: each query row probes its `nprobe` most similar centroids and
// exactly re-scores every member row of those lists through the same
// dispatched dot/dot4 kernels the blocked exact pass uses — within a SIMD
// backend, dot(q, b_c) is bitwise identical to the tile cells of
// BlockedSimTopK (rounding contract in tensor/simd/simd.h), so a candidate
// the IVF pass returns carries exactly the score the exact pass would have
// given it. Only candidate *recall* is approximate.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "index/candidate_index.h"
#include "index/internal.h"
#include "obs/trace.h"
#include "tensor/simd/simd.h"
#include "tensor/topk.h"

namespace daakg {
namespace index_internal {
namespace {

class IvfIndex final : public CandidateIndex {
 public:
  IvfIndex(Matrix base, const CandidateIndexConfig& config)
      : CandidateIndex(std::move(base), config) {
    build_stats_.backend = IndexBackendKind::kIvf;
    obs::TraceSpan span("index.ivf_kmeans", "index");
    BuildClusters();
    span.AddArg("nlist", static_cast<double>(nlist_));
    build_stats_.nlist = nlist_;
  }

  SimTopK QueryTopK(const Matrix& queries, size_t row_k,
                    size_t col_k) const override {
    obs::TraceSpan span("index.query_topk", "index", nullptr,
                        obs::TimingMode::kAlways);
    span.AddArg("queries", static_cast<double>(queries.rows()));
    span.AddArg("nprobe", static_cast<double>(config_.nprobe));
    const size_t nq = queries.rows();
    const size_t nb = base_.rows();
    const size_t dim = base_.cols();
    SimTopK out;
    out.row_topk.resize(nq);
    out.col_topk.resize(col_k > 0 ? nb : 0);
    if (nq == 0) return out;

    ThreadPool& pool = GlobalThreadPool();
    const size_t num_shards =
        config_.kernel.parallel ? std::min(nq, pool.num_threads()) : 1;
    // Per-shard column accumulators, merged in shard order after the pass
    // (same structure as BlockedSimTopK's column state).
    std::vector<std::vector<TopKAccumulator>> shard_cols(
        std::max<size_t>(num_shards, 1));
    if (col_k > 0) {
      for (auto& cols : shard_cols) {
        cols.assign(nb, TopKAccumulator(col_k));
      }
    }
    std::vector<uint64_t> shard_scored(std::max<size_t>(num_shards, 1), 0);
    const simd::Ops& ops = simd::Resolve(config_.kernel.backend);

    auto run_shard = [&](size_t shard, size_t begin, size_t end) {
      auto& cols = shard_cols[shard];
      std::vector<uint32_t> probe;
      float s4[4];
      uint64_t scored = 0;
      for (size_t r = begin; r < end; ++r) {
        const float* x = queries.RowData(r);
        ProbeLists(x, &probe);
        TopKAccumulator row_acc(row_k);
        for (uint32_t l : probe) {
          const std::vector<uint32_t>& ids = lists_[l];
          size_t i = 0;
          for (; i + 4 <= ids.size(); i += 4) {
            ops.dot4(x, base_.RowData(ids[i]), base_.RowData(ids[i + 1]),
                     base_.RowData(ids[i + 2]), base_.RowData(ids[i + 3]),
                     dim, s4);
            for (int j = 0; j < 4; ++j) {
              row_acc.Push(ids[i + j], s4[j]);
              if (col_k > 0) {
                cols[ids[i + j]].Push(static_cast<uint32_t>(r), s4[j]);
              }
            }
          }
          for (; i < ids.size(); ++i) {
            const float s = ops.dot(x, base_.RowData(ids[i]), dim);
            row_acc.Push(ids[i], s);
            if (col_k > 0) cols[ids[i]].Push(static_cast<uint32_t>(r), s);
          }
          scored += ids.size();
        }
        out.row_topk[r] = row_acc.SortedEntries();
      }
      shard_scored[shard] += scored;
    };
    if (num_shards <= 1) {
      run_shard(0, 0, nq);
    } else {
      pool.ParallelForShards(nq, run_shard);
    }

    if (col_k > 0) {
      pool.ParallelFor(nb, [&](size_t c) {
        TopKAccumulator& acc = shard_cols[0][c];
        for (size_t s = 1; s < num_shards; ++s) acc.Merge(shard_cols[s][c]);
        out.col_topk[c] = acc.SortedEntries();
      });
    }

    uint64_t scored_cells = 0;
    for (uint64_t s : shard_scored) scored_cells += s;
    RecordQuery(scored_cells, static_cast<uint64_t>(nq) * nb, span.Finish());
    uint64_t candidates = 0;
    for (const auto& row : out.row_topk) candidates += row.size();
    for (const auto& col : out.col_topk) candidates += col.size();
    RecordCandidates(candidates);
    return out;
  }

  std::vector<std::vector<ScoredIndex>> QueryAbove(
      const Matrix& queries, float threshold) const override {
    obs::TraceSpan span("index.query_above", "index", nullptr,
                        obs::TimingMode::kAlways);
    span.AddArg("queries", static_cast<double>(queries.rows()));
    span.AddArg("nprobe", static_cast<double>(config_.nprobe));
    const size_t nq = queries.rows();
    const size_t dim = base_.cols();
    std::vector<std::vector<ScoredIndex>> out(nq);
    std::vector<uint64_t> scored_per_row(nq, 0);
    const simd::Ops& ops = simd::Resolve(config_.kernel.backend);
    auto scan_row = [&](size_t r) {
      const float* x = queries.RowData(r);
      std::vector<uint32_t> probe;
      ProbeLists(x, &probe);
      auto& row_out = out[r];
      uint64_t scored = 0;
      float s4[4];
      for (uint32_t l : probe) {
        const std::vector<uint32_t>& ids = lists_[l];
        size_t i = 0;
        for (; i + 4 <= ids.size(); i += 4) {
          ops.dot4(x, base_.RowData(ids[i]), base_.RowData(ids[i + 1]),
                   base_.RowData(ids[i + 2]), base_.RowData(ids[i + 3]), dim,
                   s4);
          for (int j = 0; j < 4; ++j) {
            if (s4[j] >= threshold) {
              row_out.push_back(ScoredIndex{ids[i + j], s4[j]});
            }
          }
        }
        for (; i < ids.size(); ++i) {
          const float s = ops.dot(x, base_.RowData(ids[i]), dim);
          if (s >= threshold) row_out.push_back(ScoredIndex{ids[i], s});
        }
        scored += ids.size();
      }
      // Lists are probed in similarity order; restore the ascending
      // base-row order the interface promises.
      std::sort(row_out.begin(), row_out.end(),
                [](const ScoredIndex& a, const ScoredIndex& b) {
                  return a.index < b.index;
                });
      scored_per_row[r] = scored;
    };
    if (config_.kernel.parallel) {
      GlobalThreadPool().ParallelFor(nq, scan_row);
    } else {
      for (size_t r = 0; r < nq; ++r) scan_row(r);
    }
    uint64_t scored_cells = 0;
    for (uint64_t s : scored_per_row) scored_cells += s;
    RecordQuery(scored_cells, static_cast<uint64_t>(nq) * base_.rows(),
                span.Finish());
    return out;
  }

  std::vector<size_t> CountAbove(
      const Matrix& queries,
      const std::vector<RankQuery>& rank_queries) const override {
    obs::TraceSpan span("index.count_above", "index", nullptr,
                        obs::TimingMode::kAlways);
    span.AddArg("queries", static_cast<double>(rank_queries.size()));
    span.AddArg("nprobe", static_cast<double>(config_.nprobe));
    const size_t dim = base_.cols();
    std::vector<size_t> greater(rank_queries.size(), 0);
    std::vector<uint64_t> scored_per_query(rank_queries.size(), 0);
    const simd::Ops& ops = simd::Resolve(config_.kernel.backend);
    auto count_one = [&](size_t i) {
      const RankQuery& rq = rank_queries[i];
      DAAKG_CHECK_LT(rq.query_row, queries.rows());
      const float* x = queries.RowData(rq.query_row);
      std::vector<uint32_t> probe;
      ProbeLists(x, &probe);
      size_t count = 0;
      uint64_t scored = 0;
      for (uint32_t l : probe) {
        for (uint32_t id : lists_[l]) {
          if (ops.dot(x, base_.RowData(id), dim) > rq.target) ++count;
        }
        scored += lists_[l].size();
      }
      greater[i] = count;
      scored_per_query[i] = scored;
    };
    if (config_.kernel.parallel) {
      GlobalThreadPool().ParallelFor(rank_queries.size(), count_one);
    } else {
      for (size_t i = 0; i < rank_queries.size(); ++i) count_one(i);
    }
    uint64_t scored_cells = 0;
    for (uint64_t s : scored_per_query) scored_cells += s;
    RecordQuery(scored_cells,
                static_cast<uint64_t>(rank_queries.size()) * base_.rows(),
                span.Finish());
    return greater;
  }

 private:
  void BuildClusters() {
    const size_t n = base_.rows();
    const size_t dim = base_.cols();
    if (config_.nlist > 0) {
      nlist_ = std::min(config_.nlist, n);
    } else {
      nlist_ = static_cast<size_t>(
          std::lround(std::sqrt(static_cast<double>(n))));
      nlist_ = std::clamp<size_t>(nlist_, 1, n);
    }
    nprobe_ = std::clamp<size_t>(config_.nprobe, 1, nlist_);

    // Clustering geometry is cosine, so k-means runs over unit rows. When
    // the base was normalized at build these are the base rows themselves.
    Matrix unit_copy;
    const Matrix* unit = &base_;
    if (!config_.normalize) {
      unit_copy = base_;
      UnitNormalizeRows(&unit_copy);
      unit = &unit_copy;
    }

    Rng rng(config_.seed);
    std::vector<size_t> init = rng.SampleWithoutReplacement(n, nlist_);
    centroids_ = Matrix(nlist_, dim);
    for (size_t l = 0; l < nlist_; ++l) {
      std::copy_n(unit->RowData(init[l]), dim, centroids_.RowData(l));
    }

    const simd::Ops& ops = simd::Resolve(config_.kernel.backend);
    std::vector<uint32_t> assign(n, 0);
    ThreadPool& pool = GlobalThreadPool();
    auto assign_row = [&](size_t r) {
      const float* x = unit->RowData(r);
      float best = -std::numeric_limits<float>::infinity();
      uint32_t best_l = 0;
      float s4[4];
      size_t l = 0;
      for (; l + 4 <= nlist_; l += 4) {
        ops.dot4(x, centroids_.RowData(l), centroids_.RowData(l + 1),
                 centroids_.RowData(l + 2), centroids_.RowData(l + 3), dim,
                 s4);
        for (int j = 0; j < 4; ++j) {
          // Strict > keeps ties on the lower list index, independent of
          // iteration order.
          if (s4[j] > best) {
            best = s4[j];
            best_l = static_cast<uint32_t>(l + j);
          }
        }
      }
      for (; l < nlist_; ++l) {
        const float s = ops.dot(x, centroids_.RowData(l), dim);
        if (s > best) {
          best = s;
          best_l = static_cast<uint32_t>(l);
        }
      }
      assign[r] = best_l;
    };

    const int iters = std::max(1, config_.kmeans_iters);
    for (int it = 0; it < iters; ++it) {
      // Assignment is row-parallel: each row writes only assign[r].
      if (config_.kernel.parallel) {
        pool.ParallelFor(n, assign_row);
      } else {
        for (size_t r = 0; r < n; ++r) assign_row(r);
      }
      if (it + 1 == iters) break;  // final assignment defines the lists

      // Centroid update: sequential double-accumulated sums in row order,
      // so the result is independent of the assignment pass's sharding.
      std::vector<double> sums(nlist_ * dim, 0.0);
      std::vector<uint32_t> counts(nlist_, 0);
      for (size_t r = 0; r < n; ++r) {
        const float* x = unit->RowData(r);
        double* s = sums.data() + static_cast<size_t>(assign[r]) * dim;
        for (size_t i = 0; i < dim; ++i) s[i] += x[i];
        ++counts[assign[r]];
      }
      for (size_t l = 0; l < nlist_; ++l) {
        if (counts[l] == 0) continue;  // empty list keeps its old centroid
        double sq = 0.0;
        const double* s = sums.data() + l * dim;
        for (size_t i = 0; i < dim; ++i) sq += s[i] * s[i];
        if (sq <= 0.0) continue;
        const double inv = 1.0 / std::sqrt(sq);
        float* c = centroids_.RowData(l);
        for (size_t i = 0; i < dim; ++i) {
          c[i] = static_cast<float>(s[i] * inv);
        }
      }
    }

    lists_.assign(nlist_, {});
    for (size_t r = 0; r < n; ++r) {
      lists_[assign[r]].push_back(static_cast<uint32_t>(r));
    }
  }

  // The nprobe_ most centroid-similar lists for `x`, in descending
  // similarity order.
  void ProbeLists(const float* x, std::vector<uint32_t>* out) const {
    const simd::Ops& ops = simd::Resolve(config_.kernel.backend);
    const size_t dim = base_.cols();
    TopKAccumulator acc(nprobe_);
    float s4[4];
    size_t l = 0;
    for (; l + 4 <= nlist_; l += 4) {
      ops.dot4(x, centroids_.RowData(l), centroids_.RowData(l + 1),
               centroids_.RowData(l + 2), centroids_.RowData(l + 3), dim, s4);
      for (int j = 0; j < 4; ++j) {
        acc.Push(static_cast<uint32_t>(l + j), s4[j]);
      }
    }
    for (; l < nlist_; ++l) {
      acc.Push(static_cast<uint32_t>(l), ops.dot(x, centroids_.RowData(l), dim));
    }
    *out = acc.SortedIndices();
  }

  size_t nlist_ = 0;
  size_t nprobe_ = 0;
  Matrix centroids_;                        // nlist x dim, unit rows
  std::vector<std::vector<uint32_t>> lists_;  // ascending base-row ids
};

}  // namespace

std::unique_ptr<CandidateIndex> MakeIvfIndex(
    Matrix base, const CandidateIndexConfig& config) {
  return std::make_unique<IvfIndex>(std::move(base), config);
}

}  // namespace index_internal
}  // namespace daakg
