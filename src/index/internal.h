#ifndef DAAKG_INDEX_INTERNAL_H_
#define DAAKG_INDEX_INTERNAL_H_

#include <cstdint>
#include <memory>

#include "index/candidate_index.h"

namespace daakg {
namespace index_internal {

// Backend factories (defined in exact_index.cc / ivf_index.cc). `base` is
// already validated non-empty; normalization per config happens inside.
std::unique_ptr<CandidateIndex> MakeExactIndex(
    Matrix base, const CandidateIndexConfig& config);
std::unique_ptr<CandidateIndex> MakeIvfIndex(
    Matrix base, const CandidateIndexConfig& config);

// daakg.index.* query instrumentation shared by the backends: counts one
// query batch of `scored_cells` exactly-scored cells out of `total_cells`
// possible ones and updates the probed-fraction gauge.
void RecordQuery(uint64_t scored_cells, uint64_t total_cells, double seconds);
// Counts candidate entries returned by QueryTopK.
void RecordCandidates(uint64_t count);

}  // namespace index_internal
}  // namespace daakg

#endif  // DAAKG_INDEX_INTERNAL_H_
