#ifndef DAAKG_BASELINES_BERTMAP_LITE_H_
#define DAAKG_BASELINES_BERTMAP_LITE_H_

#include "baselines/baseline_result.h"
#include "kg/alignment_task.h"

namespace daakg {

// BERTMap-lite (He et al., AAAI 2022): a class-only aligner following
// BERTMap's pipeline shape — lexical candidate scoring, per-class best
// assignment, then a one-to-one repair step — with the BERT cross-encoder
// replaced by a character-n-gram + token-overlap similarity (no offline
// BERT weights are available; see DESIGN.md). Like the original, it is
// strong when class names share a language and collapses on cross-lingual
// names, which is exactly the behaviour Table 3 records.
struct BertMapLiteConfig {
  double token_weight = 0.5;  // blend of token-set vs char-n-gram similarity
  float output_threshold = 0.4f;
};

class BertMapLite {
 public:
  BertMapLite(const AlignmentTask* task, const BertMapLiteConfig& config);

  // Classes only: entity/relation metrics in the result stay zero.
  BaselineResult Run(const SeedAlignment& seed);

 private:
  const AlignmentTask* task_;
  BertMapLiteConfig config_;
};

}  // namespace daakg

#endif  // DAAKG_BASELINES_BERTMAP_LITE_H_
