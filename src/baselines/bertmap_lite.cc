#include "baselines/bertmap_lite.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "align/metrics.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace daakg {
namespace {

// Splits a class label into lower-cased alphanumeric tokens (underscores,
// digits and camel-case boundaries separate tokens).
std::vector<std::string> Tokenize(const std::string& name) {
  std::vector<std::string> tokens;
  std::string cur;
  for (size_t i = 0; i < name.size(); ++i) {
    const char ch = name[i];
    const bool boundary =
        !std::isalnum(static_cast<unsigned char>(ch)) ||
        (std::isupper(static_cast<unsigned char>(ch)) && i > 0 &&
         std::islower(static_cast<unsigned char>(name[i - 1])));
    if (boundary && !cur.empty()) {
      tokens.push_back(cur);
      cur.clear();
    }
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      cur.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(ch))));
    }
  }
  if (!cur.empty()) tokens.push_back(cur);
  return tokens;
}

double TokenJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return 0.0;
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  size_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  return static_cast<double>(inter) /
         static_cast<double>(sa.size() + sb.size() - inter);
}

}  // namespace

BertMapLite::BertMapLite(const AlignmentTask* task,
                         const BertMapLiteConfig& config)
    : task_(task), config_(config) {}

BaselineResult BertMapLite::Run(const SeedAlignment& seed) {
  WallTimer timer;
  const KnowledgeGraph& kg1 = task_->kg1;
  const KnowledgeGraph& kg2 = task_->kg2;
  const size_t k1 = kg1.num_classes();
  const size_t k2 = kg2.num_classes();

  Matrix sim(k1, k2);
  std::vector<std::vector<std::string>> tok2(k2);
  for (size_t c = 0; c < k2; ++c) {
    tok2[c] = Tokenize(kg2.class_name(static_cast<ClassId>(c)));
  }
  for (size_t c1 = 0; c1 < k1; ++c1) {
    const std::string& name1 = kg1.class_name(static_cast<ClassId>(c1));
    const std::vector<std::string> tok1 = Tokenize(name1);
    for (size_t c2 = 0; c2 < k2; ++c2) {
      const double token_sim = TokenJaccard(tok1, tok2[c2]);
      const double char_sim =
          NgramJaccard(name1, kg2.class_name(static_cast<ClassId>(c2)), 3);
      sim(c1, c2) = static_cast<float>(config_.token_weight * token_sim +
                                       (1.0 - config_.token_weight) * char_sim);
    }
  }
  // Repair step: labeled seed classes are pinned to 1 (semi-supervised
  // BERTMap uses known mappings the same way).
  for (const auto& [c1, c2] : seed.classes) sim(c1, c2) = 1.0f;

  BaselineResult result;
  result.name = "BERTMap";
  std::vector<std::pair<uint32_t, uint32_t>> cls_test;
  {
    std::unordered_set<uint64_t> in_seed;
    for (const auto& [a, b] : seed.classes) {
      in_seed.insert((static_cast<uint64_t>(a) << 32) | b);
    }
    for (const auto& [a, b] : task_->gold_classes) {
      if (in_seed.count((static_cast<uint64_t>(a) << 32) | b) == 0) {
        cls_test.emplace_back(a, b);
      }
    }
    if (cls_test.empty()) {
      for (const auto& [a, b] : task_->gold_classes) cls_test.emplace_back(a, b);
    }
  }
  result.eval.cls_rank = EvaluateRanking(sim, cls_test);
  result.eval.cls_prf =
      EvaluateGreedyMatching(sim, cls_test, config_.output_threshold);
  result.train_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace daakg
