#ifndef DAAKG_BASELINES_PARIS_H_
#define DAAKG_BASELINES_PARIS_H_

#include "baselines/baseline_result.h"
#include "kg/alignment_task.h"

namespace daakg {

// PARIS-lite (Suchanek et al., VLDB 2012): probabilistic, training-free
// alignment of instances, relations and classes by fixed-point iteration.
//
//   * relation equivalence is estimated from how often matched entity pairs
//     co-occur as (head, tail) of the two relations, normalized by the
//     smaller relation extension;
//   * entity match probability aggregates edge evidence
//     1 - prod(1 - P(h=h') * P(r=r') * fun(r')) over shared neighbors,
//     where fun() is relation functionality;
//   * class equivalence is the harmonic blend of both membership overlap
//     directions, weighted by entity match probabilities.
//
// Deviation from the original (documented in DESIGN.md): real PARIS
// bootstraps from shared literal values; the synthetic benchmark KGs carry
// no literals beyond names, so PARIS-lite is anchored on name similarity
// plus the same seed matches every supervised competitor receives.
struct ParisConfig {
  int iterations = 4;
  double name_anchor_threshold = 0.82;  // edit-similarity anchor cut-off
  double name_anchor_prob = 0.85;
  float output_threshold = 0.3f;  // greedy-matching threshold for F1
};

class Paris {
 public:
  Paris(const AlignmentTask* task, const ParisConfig& config);

  BaselineResult Run(const SeedAlignment& seed);

 private:
  const AlignmentTask* task_;
  ParisConfig config_;
};

}  // namespace daakg

#endif  // DAAKG_BASELINES_PARIS_H_
