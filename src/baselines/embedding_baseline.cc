#include "baselines/embedding_baseline.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace daakg {
namespace {

constexpr char kTypeRelName[] = "__type__";

template <typename PairT>
std::vector<std::pair<uint32_t, uint32_t>> TestPairsExcluding(
    const std::vector<PairT>& gold, const std::vector<PairT>& seed) {
  std::unordered_set<uint64_t> in_seed;
  for (const auto& [a, b] : seed) {
    in_seed.insert((static_cast<uint64_t>(a) << 32) | b);
  }
  std::vector<std::pair<uint32_t, uint32_t>> test;
  for (const auto& [a, b] : gold) {
    if (in_seed.count((static_cast<uint64_t>(a) << 32) | b) == 0) {
      test.emplace_back(a, b);
    }
  }
  if (test.empty()) {
    for (const auto& [a, b] : gold) test.emplace_back(a, b);
  }
  return test;
}

// Pairwise character-bigram Jaccard similarity between two name lists.
Matrix NameSimilarityMatrix(const std::vector<std::string>& names1,
                            const std::vector<std::string>& names2) {
  auto grams = [](const std::string& s) {
    std::unordered_set<uint32_t> out;
    for (size_t i = 0; i + 2 <= s.size(); ++i) {
      out.insert(static_cast<uint32_t>(static_cast<unsigned char>(s[i])) << 8 |
                 static_cast<unsigned char>(s[i + 1]));
    }
    return out;
  };
  std::vector<std::unordered_set<uint32_t>> g1(names1.size());
  std::vector<std::unordered_set<uint32_t>> g2(names2.size());
  for (size_t i = 0; i < names1.size(); ++i) g1[i] = grams(names1[i]);
  for (size_t i = 0; i < names2.size(); ++i) g2[i] = grams(names2[i]);

  Matrix sim(names1.size(), names2.size());
  GlobalThreadPool().ParallelFor(names1.size(), [&](size_t r) {
    float* row = sim.RowData(r);
    for (size_t c = 0; c < names2.size(); ++c) {
      size_t inter = 0;
      for (uint32_t g : g1[r]) inter += g2[c].count(g);
      const size_t uni = g1[r].size() + g2[c].size() - inter;
      row[c] = uni == 0 ? (names1[r] == names2[c] ? 1.0f : 0.0f)
                        : static_cast<float>(inter) / static_cast<float>(uni);
    }
  });
  return sim;
}

void BlendInPlace(Matrix* base, const Matrix& other, double w) {
  DAAKG_CHECK_EQ(base->rows(), other.rows());
  DAAKG_CHECK_EQ(base->cols(), other.cols());
  const float fw = static_cast<float>(w);
  for (size_t r = 0; r < base->rows(); ++r) {
    float* a = base->RowData(r);
    const float* b = other.RowData(r);
    for (size_t c = 0; c < base->cols(); ++c) {
      a[c] = (1.0f - fw) * a[c] + fw * b[c];
    }
  }
}

// Copies one KG into `out`, turning classes into entities connected via a
// synthetic `type` relation, optionally augmenting with composite 2-hop
// relations (the RSN-lite long-path emulation). Returns the class-entity
// ids.
std::vector<EntityId> TransformKg(const KnowledgeGraph& in,
                                  const EmbeddingBaselineConfig& config,
                                  KnowledgeGraph* out, Rng* rng) {
  for (size_t e = 0; e < in.num_entities(); ++e) {
    out->AddEntity(in.entity_name(static_cast<EntityId>(e)));
  }
  std::vector<EntityId> cls_ent(in.num_classes());
  for (size_t c = 0; c < in.num_classes(); ++c) {
    cls_ent[c] = out->AddEntity("cls:" + in.class_name(static_cast<ClassId>(c)));
  }
  for (size_t r = 0; r < in.num_base_relations(); ++r) {
    out->AddRelation(in.relation_name(static_cast<RelationId>(r)));
  }
  const RelationId type_rel = out->AddRelation(kTypeRelName);

  for (const Triplet& t : in.triplets()) {
    if (in.IsReverseRelation(t.relation)) continue;
    out->AddTriplet(t.head, t.relation, t.tail);
  }
  for (const TypeTriplet& t : in.type_triplets()) {
    out->AddTriplet(t.entity, type_rel, cls_ent[t.cls]);
  }

  if (config.path_augmentation) {
    // Composite relations for the most frequent forward 2-hop patterns:
    // (h, r1, m), (m, r2, t)  =>  (h, r1|r2, t). Sampled, not exhaustive.
    std::unordered_map<uint64_t, size_t> pattern_count;
    std::vector<Triplet> forward;
    for (const Triplet& t : in.triplets()) {
      if (!in.IsReverseRelation(t.relation)) forward.push_back(t);
    }
    for (const Triplet& t : forward) {
      for (const auto& nb : in.Neighbors(t.tail)) {
        if (in.IsReverseRelation(nb.relation)) continue;
        pattern_count[(static_cast<uint64_t>(t.relation) << 32) |
                      nb.relation]++;
      }
    }
    std::vector<std::pair<uint64_t, size_t>> patterns(pattern_count.begin(),
                                                      pattern_count.end());
    std::sort(patterns.begin(), patterns.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    patterns.resize(
        std::min(patterns.size(), config.path_augment_relations));
    std::unordered_map<uint64_t, RelationId> composite;
    for (const auto& [key, count] : patterns) {
      (void)count;
      const RelationId r1 = static_cast<RelationId>(key >> 32);
      const RelationId r2 = static_cast<RelationId>(key & 0xFFFFFFFFu);
      composite[key] = out->AddRelation(in.relation_name(r1) + "|" +
                                        in.relation_name(r2));
    }
    for (const Triplet& t : forward) {
      for (const auto& nb : in.Neighbors(t.tail)) {
        if (in.IsReverseRelation(nb.relation)) continue;
        auto it = composite.find((static_cast<uint64_t>(t.relation) << 32) |
                                 nb.relation);
        if (it == composite.end()) continue;
        if (rng->NextBernoulli(0.5)) {
          out->AddTriplet(t.head, it->second, nb.tail);
        }
      }
    }
  }

  DAAKG_CHECK(out->Finalize().ok());
  return cls_ent;
}

}  // namespace

EmbeddingBaseline::EmbeddingBaseline(const AlignmentTask* task,
                                     const EmbeddingBaselineConfig& config)
    : task_(task), config_(config) {
  BuildTransformedTask();
}

void EmbeddingBaseline::BuildTransformedTask() {
  Rng rng(config_.seed);
  transformed_.name = task_->name + "+" + config_.name;
  cls_ent1_ = TransformKg(task_->kg1, config_, &transformed_.kg1, &rng);
  cls_ent2_ = TransformKg(task_->kg2, config_, &transformed_.kg2, &rng);
  transformed_.gold_entities = task_->gold_entities;
  transformed_.gold_relations = task_->gold_relations;
  for (const auto& [c1, c2] : task_->gold_classes) {
    transformed_.gold_entities.emplace_back(cls_ent1_[c1], cls_ent2_[c2]);
  }
  transformed_.BuildGoldIndex();
}

BaselineResult EmbeddingBaseline::Run(const SeedAlignment& seed) {
  WallTimer timer;
  Rng rng(config_.seed ^ 0xB45EULL);

  KgeConfig kge_cfg = config_.kge;
  kge_cfg.max_neighbors = config_.max_neighbors;
  kge_cfg.seed = rng.NextUint64();
  auto model1 = MakeKgeModel(config_.kge_model, &transformed_.kg1, kge_cfg);
  kge_cfg.seed = rng.NextUint64();
  auto model2 = MakeKgeModel(config_.kge_model, &transformed_.kg2, kge_cfg);
  Rng init_rng = rng.Fork();
  model1->Init(&init_rng);
  model2->Init(&init_rng);

  JointAlignConfig align_cfg = config_.align;
  align_cfg.use_mean_embeddings = false;  // DAAKG-specific machinery
  align_cfg.semi_rounds = config_.semi_rounds;
  JointAlignmentModel joint(model1.get(), model2.get(), nullptr, nullptr,
                            align_cfg);
  joint.Init(&init_rng);

  // Joint training: one KGE epoch per KG interleaved with alignment
  // epochs (every deep competitor optimizes its embedding and alignment
  // objectives jointly, so all baselines get the same co-evolution the
  // DAAKG pipeline uses; see DESIGN.md).
  SeedAlignment mapped_seed;
  mapped_seed.entities = seed.entities;
  for (const auto& [c1, c2] : seed.classes) {
    mapped_seed.entities.emplace_back(cls_ent1_[c1], cls_ent2_[c2]);
  }
  mapped_seed.relations = seed.relations;

  KgeTrainer trainer1(model1.get(), nullptr);
  KgeTrainer trainer2(model2.get(), nullptr);
  Rng t1 = rng.Fork();
  Rng t2 = rng.Fork();
  Rng a_rng = rng.Fork();
  KgeTrainStats stats;
  for (int e = 0; e < config_.kge.epochs; ++e) {
    trainer1.TrainEpoch(&t1, &stats);
    trainer2.TrainEpoch(&t2, &stats);
  }
  std::vector<std::pair<ElementPair, double>> mined;
  for (int round = 0; round < align_cfg.align_epochs; ++round) {
    trainer1.TrainEpoch(&t1, &stats);
    trainer2.TrainEpoch(&t2, &stats);
    for (int k = 0; k < align_cfg.joint_epochs_per_round; ++k) {
      joint.TrainEpoch(mapped_seed, &a_rng, /*focal=*/false);
    }
    if (config_.semi_rounds > 0 && round >= align_cfg.align_epochs / 3 &&
        (round - align_cfg.align_epochs / 3) % align_cfg.semi_every == 0) {
      joint.RefreshCaches();
      mined = joint.MineSemiSupervision();
    }
    if (!mined.empty()) joint.TrainSemiEpoch(mined, &a_rng);
  }
  joint.RefreshCaches();

  BaselineResult result;
  result.name = config_.name;

  // Similarity matrices for evaluation, with optional literal blending.
  Matrix ent_sim = joint.entity_sim();
  Matrix rel_sim = joint.relation_sim();
  if (config_.name_view_weight > 0.0) {
    std::vector<std::string> names1(transformed_.kg1.num_entities());
    std::vector<std::string> names2(transformed_.kg2.num_entities());
    for (size_t e = 0; e < names1.size(); ++e) {
      names1[e] = transformed_.kg1.entity_name(static_cast<EntityId>(e));
    }
    for (size_t e = 0; e < names2.size(); ++e) {
      names2[e] = transformed_.kg2.entity_name(static_cast<EntityId>(e));
    }
    BlendInPlace(&ent_sim, NameSimilarityMatrix(names1, names2),
                 config_.name_view_weight);

    std::vector<std::string> rnames1, rnames2;
    for (size_t r = 0; r < task_->kg1.num_base_relations(); ++r) {
      rnames1.push_back(task_->kg1.relation_name(static_cast<RelationId>(r)));
    }
    for (size_t r = 0; r < task_->kg2.num_base_relations(); ++r) {
      rnames2.push_back(task_->kg2.relation_name(static_cast<RelationId>(r)));
    }
    Matrix rel_trim(rnames1.size(), rnames2.size());
    for (size_t a = 0; a < rnames1.size(); ++a) {
      for (size_t b = 0; b < rnames2.size(); ++b) {
        rel_trim(a, b) = rel_sim(a, b);
      }
    }
    BlendInPlace(&rel_trim, NameSimilarityMatrix(rnames1, rnames2),
                 config_.name_view_weight);
    rel_sim = std::move(rel_trim);
  } else {
    // Trim the synthetic `type` (and composite) relations off the
    // evaluation matrix.
    Matrix rel_trim(task_->kg1.num_base_relations(),
                    task_->kg2.num_base_relations());
    for (size_t a = 0; a < rel_trim.rows(); ++a) {
      for (size_t b = 0; b < rel_trim.cols(); ++b) {
        rel_trim(a, b) = rel_sim(a, b);
      }
    }
    rel_sim = std::move(rel_trim);
  }

  // Class similarities = entity similarities of the class-entities.
  Matrix cls_sim(task_->kg1.num_classes(), task_->kg2.num_classes());
  for (size_t c1 = 0; c1 < cls_sim.rows(); ++c1) {
    for (size_t c2 = 0; c2 < cls_sim.cols(); ++c2) {
      cls_sim(c1, c2) = ent_sim(cls_ent1_[c1], cls_ent2_[c2]);
    }
  }

  const float thr = 0.5f;
  auto ent_test = TestPairsExcluding(task_->gold_entities, seed.entities);
  auto rel_test = TestPairsExcluding(task_->gold_relations, seed.relations);
  auto cls_test = TestPairsExcluding(task_->gold_classes, seed.classes);
  result.eval.ent_rank = EvaluateRanking(ent_sim, ent_test);
  result.eval.rel_rank = EvaluateRanking(rel_sim, rel_test);
  result.eval.cls_rank = EvaluateRanking(cls_sim, cls_test);
  result.eval.ent_prf = EvaluateGreedyMatching(ent_sim, ent_test, thr);
  result.eval.rel_prf = EvaluateGreedyMatching(rel_sim, rel_test, thr);
  result.eval.cls_prf = EvaluateGreedyMatching(cls_sim, cls_test, thr);
  result.train_seconds = timer.ElapsedSeconds();
  return result;
}

std::vector<EmbeddingBaselineConfig> StandardBaselineRoster(
    const KgeConfig& kge, const JointAlignConfig& align) {
  std::vector<EmbeddingBaselineConfig> roster;
  auto base = [&kge, &align](const std::string& name) {
    EmbeddingBaselineConfig c;
    c.name = name;
    c.kge = kge;
    c.align = align;
    return c;
  };
  {
    auto c = base("MTransE");
    c.kge_model = KgeModelKind::kTransE;
    roster.push_back(c);
  }
  {
    auto c = base("BootEA");
    c.kge_model = KgeModelKind::kTransE;
    c.semi_rounds = 2;
    roster.push_back(c);
  }
  {
    auto c = base("GCN-Align");
    c.kge_model = KgeModelKind::kCompGcn;
    c.max_neighbors = 8;
    roster.push_back(c);
  }
  {
    auto c = base("AttrE");
    c.kge_model = KgeModelKind::kTransE;
    c.name_view_weight = 0.7;
    roster.push_back(c);
  }
  {
    auto c = base("RSN");
    c.kge_model = KgeModelKind::kTransE;
    c.path_augmentation = true;
    roster.push_back(c);
  }
  {
    auto c = base("MuGNN");
    c.kge_model = KgeModelKind::kCompGcn;
    c.max_neighbors = 20;
    roster.push_back(c);
  }
  {
    auto c = base("MultiKE");
    c.kge_model = KgeModelKind::kTransE;
    c.name_view_weight = 0.5;
    roster.push_back(c);
  }
  {
    auto c = base("KECG");
    c.kge_model = KgeModelKind::kCompGcn;
    c.semi_rounds = 1;
    roster.push_back(c);
  }
  return roster;
}

}  // namespace daakg
