#ifndef DAAKG_BASELINES_BASELINE_RESULT_H_
#define DAAKG_BASELINES_BASELINE_RESULT_H_

#include <string>

#include "core/daakg.h"

namespace daakg {

// Scores plus wall-clock for one competitor: a Table 3 row group and the
// matching Table 4 cell.
struct BaselineResult {
  std::string name;
  EvalResult eval;
  double train_seconds = 0.0;
};

}  // namespace daakg

#endif  // DAAKG_BASELINES_BASELINE_RESULT_H_
