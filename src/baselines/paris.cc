#include "baselines/paris.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "align/metrics.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace daakg {
namespace {

uint64_t Key(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

// Relation functionality: #distinct heads / #triplets (computed over all
// relations, including reverse ones, so inverse functionality comes free).
std::vector<double> Functionalities(const KnowledgeGraph& kg) {
  std::vector<double> fun(kg.num_relations(), 1.0);
  for (size_t r = 0; r < kg.num_relations(); ++r) {
    const auto& pairs = kg.TripletsOf(static_cast<RelationId>(r));
    if (pairs.empty()) continue;
    std::unordered_set<EntityId> heads;
    for (const auto& [h, t] : pairs) heads.insert(h);
    fun[r] = static_cast<double>(heads.size()) /
             static_cast<double>(pairs.size());
  }
  return fun;
}

template <typename PairT>
std::vector<std::pair<uint32_t, uint32_t>> TestPairsExcluding(
    const std::vector<PairT>& gold, const std::vector<PairT>& seed) {
  std::unordered_set<uint64_t> in_seed;
  for (const auto& [a, b] : seed) in_seed.insert(Key(a, b));
  std::vector<std::pair<uint32_t, uint32_t>> test;
  for (const auto& [a, b] : gold) {
    if (in_seed.count(Key(a, b)) == 0) test.emplace_back(a, b);
  }
  if (test.empty()) {
    for (const auto& [a, b] : gold) test.emplace_back(a, b);
  }
  return test;
}

}  // namespace

Paris::Paris(const AlignmentTask* task, const ParisConfig& config)
    : task_(task), config_(config) {}

BaselineResult Paris::Run(const SeedAlignment& seed) {
  WallTimer timer;
  const KnowledgeGraph& kg1 = task_->kg1;
  const KnowledgeGraph& kg2 = task_->kg2;
  const size_t n1 = kg1.num_entities();
  const size_t n2 = kg2.num_entities();
  const size_t m1 = kg1.num_relations();  // incl. reverse
  const size_t m2 = kg2.num_relations();

  std::vector<double> fun2 = Functionalities(kg2);

  // --- anchors --------------------------------------------------------------
  std::unordered_map<uint64_t, float> ent_prob;
  for (const auto& [e1, e2] : seed.entities) ent_prob[Key(e1, e2)] = 1.0f;
  {
    // Name anchors: bucket KG2 names by length to avoid the full n1*n2
    // edit-distance sweep; only near-equal-length names can clear the
    // anchor threshold.
    std::unordered_map<size_t, std::vector<EntityId>> by_len;
    for (size_t e = 0; e < n2; ++e) {
      by_len[kg2.entity_name(static_cast<EntityId>(e)).size()].push_back(
          static_cast<EntityId>(e));
    }
    for (size_t e1 = 0; e1 < n1; ++e1) {
      const std::string& name1 = kg1.entity_name(static_cast<EntityId>(e1));
      const size_t len = name1.size();
      const size_t max_edits =
          static_cast<size_t>((1.0 - config_.name_anchor_threshold) *
                              static_cast<double>(len)) + 1;
      for (size_t l = len > max_edits ? len - max_edits : 0;
           l <= len + max_edits; ++l) {
        auto it = by_len.find(l);
        if (it == by_len.end()) continue;
        for (EntityId e2 : it->second) {
          const double sim =
              EditSimilarity(name1, kg2.entity_name(e2));
          if (sim >= config_.name_anchor_threshold) {
            auto& slot = ent_prob[Key(static_cast<uint32_t>(e1), e2)];
            slot = std::max(slot, static_cast<float>(
                                      config_.name_anchor_prob * sim));
          }
        }
      }
    }
  }

  Matrix rel_prob(m1, m2);  // P(r1 = r2), incl. reverse rows/cols

  // best match per KG1 entity, maintained across iterations.
  std::vector<EntityId> best2(n1, kInvalidId);
  std::vector<float> best2_prob(n1, 0.0f);
  auto refresh_best = [&]() {
    std::fill(best2.begin(), best2.end(), kInvalidId);
    std::fill(best2_prob.begin(), best2_prob.end(), 0.0f);
    for (const auto& [key, p] : ent_prob) {
      const uint32_t e1 = static_cast<uint32_t>(key >> 32);
      if (p > best2_prob[e1]) {
        best2_prob[e1] = p;
        best2[e1] = static_cast<EntityId>(key & 0xFFFFFFFFu);
      }
    }
  };
  refresh_best();

  for (int iter = 0; iter < config_.iterations; ++iter) {
    // --- relation equivalence ---------------------------------------------
    // count(r1, r2) = sum of P(h=h') P(t=t') over aligned edges, using the
    // current best matches as the alignment.
    Matrix count(m1, m2);
    std::vector<double> total1(m1, 0.0);
    for (const Triplet& t : kg1.triplets()) {
      const EntityId h2 = best2[t.head];
      const EntityId t2 = best2[t.tail];
      const float ph = best2_prob[t.head];
      const float pt = best2_prob[t.tail];
      total1[t.relation] += 1.0;
      if (h2 == kInvalidId || t2 == kInvalidId) continue;
      for (const auto& nb : kg2.Neighbors(h2)) {
        if (nb.tail == t2) count(t.relation, nb.relation) += ph * pt;
      }
    }
    for (size_t r1 = 0; r1 < m1; ++r1) {
      for (size_t r2 = 0; r2 < m2; ++r2) {
        const double denom = std::min(
            std::max(total1[r1], 1.0),
            std::max(static_cast<double>(
                         kg2.TripletsOf(static_cast<RelationId>(r2)).size()),
                     1.0));
        rel_prob(r1, r2) = static_cast<float>(
            std::min(1.0, static_cast<double>(count(r1, r2)) / denom));
      }
    }

    // --- entity matches ------------------------------------------------------
    // Evidence for (e1, e2): a shared neighbor pair (h1, h2) with
    // P(h1=h2) reached via relations (r1, r2); probabilities aggregate as
    // 1 - prod(1 - p_h * P(r1=r2) * fun(r2)).
    std::unordered_map<uint64_t, double> neg_log;  // -log prod(1 - w)
    for (const Triplet& t : kg1.triplets()) {
      // t: (h1, r1, e1); evidence flows head -> tail.
      const EntityId h2 = best2[t.head];
      const float ph = best2_prob[t.head];
      if (h2 == kInvalidId || ph < 0.1f) continue;
      for (const auto& nb : kg2.Neighbors(h2)) {
        const double p_rel = rel_prob(t.relation, nb.relation);
        if (p_rel < 0.05) continue;
        const double w =
            std::min(0.999, ph * p_rel * fun2[nb.relation]);
        if (w < 0.02) continue;
        neg_log[Key(t.tail, nb.tail)] += -std::log1p(-w);
      }
    }
    for (const auto& [key, nl] : neg_log) {
      const float p = static_cast<float>(1.0 - std::exp(-nl));
      auto& slot = ent_prob[key];
      slot = std::max(slot, p);
    }
    // Seed anchors stay clamped at 1.
    for (const auto& [e1, e2] : seed.entities) ent_prob[Key(e1, e2)] = 1.0f;
    refresh_best();
  }

  // --- output matrices -------------------------------------------------------
  Matrix ent_sim(n1, n2);
  for (const auto& [key, p] : ent_prob) {
    ent_sim(key >> 32, key & 0xFFFFFFFFu) = p;
  }
  Matrix rel_sim(kg1.num_base_relations(), kg2.num_base_relations());
  for (size_t r1 = 0; r1 < rel_sim.rows(); ++r1) {
    for (size_t r2 = 0; r2 < rel_sim.cols(); ++r2) {
      // Symmetrize with the reverse direction.
      rel_sim(r1, r2) = std::max(
          rel_prob(r1, r2),
          rel_prob(kg1.ReverseOf(static_cast<RelationId>(r1)),
                   kg2.ReverseOf(static_cast<RelationId>(r2))));
    }
  }

  // Class equivalence from membership overlap under the best matches.
  Matrix cls_sim(kg1.num_classes(), kg2.num_classes());
  for (size_t c1 = 0; c1 < cls_sim.rows(); ++c1) {
    const auto& members1 = kg1.EntitiesOf(static_cast<ClassId>(c1));
    for (size_t c2 = 0; c2 < cls_sim.cols(); ++c2) {
      const auto& members2 = kg2.EntitiesOf(static_cast<ClassId>(c2));
      if (members1.empty() || members2.empty()) continue;
      double overlap = 0.0;
      for (EntityId e1 : members1) {
        const EntityId e2 = best2[e1];
        if (e2 == kInvalidId) continue;
        if (kg2.HasType(e2, static_cast<ClassId>(c2))) {
          overlap += best2_prob[e1];
        }
      }
      const double p12 = overlap / static_cast<double>(members1.size());
      const double p21 = overlap / static_cast<double>(members2.size());
      cls_sim(c1, c2) = static_cast<float>(std::sqrt(p12 * p21));
    }
  }

  BaselineResult result;
  result.name = "PARIS";
  auto ent_test = TestPairsExcluding(task_->gold_entities, seed.entities);
  auto rel_test = TestPairsExcluding(task_->gold_relations, seed.relations);
  auto cls_test = TestPairsExcluding(task_->gold_classes, seed.classes);
  result.eval.ent_rank = EvaluateRanking(ent_sim, ent_test);
  result.eval.rel_rank = EvaluateRanking(rel_sim, rel_test);
  result.eval.cls_rank = EvaluateRanking(cls_sim, cls_test);
  result.eval.ent_prf =
      EvaluateGreedyMatching(ent_sim, ent_test, config_.output_threshold);
  result.eval.rel_prf =
      EvaluateGreedyMatching(rel_sim, rel_test, config_.output_threshold);
  result.eval.cls_prf =
      EvaluateGreedyMatching(cls_sim, cls_test, config_.output_threshold);
  result.train_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace daakg
