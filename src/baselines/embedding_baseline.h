#ifndef DAAKG_BASELINES_EMBEDDING_BASELINE_H_
#define DAAKG_BASELINES_EMBEDDING_BASELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "align/joint_model.h"
#include "baselines/baseline_result.h"
#include "core/daakg.h"
#include "kg/alignment_task.h"

namespace daakg {

// Configuration of one deep entity-alignment competitor (Sect. 7.2). All
// competitors share one skeleton — "treat classes as entities, embed, learn
// a mapping from seed matches" — and differ in the knobs below. Each is a
// faithful *-lite* reimplementation of the cited method's key idea (see
// DESIGN.md for the per-method mapping):
//   MTransE    : TransE + linear mapping.
//   BootEA     : MTransE + bootstrapped (semi-supervised) match mining.
//   GCN-Align  : GNN encoder + mapping.
//   KECG       : GNN encoder + semi-supervision (joint KE / cross-graph).
//   MuGNN      : GNN encoder with wider neighborhood aggregation.
//   RSN        : TransE over a path-augmented KG (composite 2-hop
//                relations emulate the skipping RNN's long-path modeling).
//   AttrE      : literal name view blended with a weak structure view.
//   MultiKE    : multi-view — name view + structure view, equal blend.
struct EmbeddingBaselineConfig {
  std::string name = "MTransE";
  KgeModelKind kge_model = KgeModelKind::kTransE;
  int semi_rounds = 0;               // bootstrapping rounds
  size_t max_neighbors = 12;         // GNN aggregation width
  bool path_augmentation = false;    // RSN: composite 2-hop relations
  size_t path_augment_relations = 8; // how many composite relations to add
  double name_view_weight = 0.0;     // AttrE / MultiKE literal blending
  KgeConfig kge;
  JointAlignConfig align;
  uint64_t seed = 3;
};

// Runs one competitor end to end on `task` with the given seed alignment
// and evaluates entity / relation / class alignment the same way DAAKG is
// evaluated. Classes are folded into the entity set ("treated as entities",
// as the paper describes for these methods), which is exactly why their
// schema-alignment scores collapse.
class EmbeddingBaseline {
 public:
  EmbeddingBaseline(const AlignmentTask* task,
                    const EmbeddingBaselineConfig& config);

  BaselineResult Run(const SeedAlignment& seed);

 private:
  // Builds the classes-as-entities transformed pair of KGs.
  void BuildTransformedTask();

  const AlignmentTask* task_;
  EmbeddingBaselineConfig config_;
  AlignmentTask transformed_;
  // class-entity id of class c in the transformed KGs.
  std::vector<EntityId> cls_ent1_, cls_ent2_;
};

// The Table 3 competitor roster (all eight embedding baselines) with their
// canonical configurations.
std::vector<EmbeddingBaselineConfig> StandardBaselineRoster(
    const KgeConfig& kge, const JointAlignConfig& align);

}  // namespace daakg

#endif  // DAAKG_BASELINES_EMBEDDING_BASELINE_H_
