#ifndef DAAKG_OBS_TRACE_H_
#define DAAKG_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace daakg {
namespace obs {

// Structured tracing: RAII spans recorded into per-thread lock-free buffers
// while a TraceSession is active, exported as Chrome trace-event JSON
// (load the file at ui.perfetto.dev or chrome://tracing).
//
// Cost contract (see DESIGN.md, "Tracing"):
//   * with tracing disabled, a TraceSpan with no histogram costs exactly one
//     relaxed atomic load (the session generation check) — no clock read, no
//     allocation;
//   * a TraceSpan carrying a histogram (or TimingMode::kAlways) reads the
//     clock even when tracing is off, because the histogram sample / returned
//     elapsed time is needed regardless — the same cost ScopedTimer paid;
//   * with tracing enabled, emitting a span is two clock reads plus one
//     single-writer slot write into the calling thread's buffer; when the
//     buffer fills, new events are dropped (drop-newest) and counted.
//
// A span's histogram sample and its trace duration come from one clock-read
// pair: both are derived from the same integer nanosecond duration, so the
// exported trace and the metrics JSON agree bit-for-bit.

namespace trace_internal {

// Session generation: odd while a session is active. TraceSpan's inline
// fast path loads this once (relaxed) and bails when even.
extern std::atomic<uint64_t> g_generation;

// Monotonic clock in integer nanoseconds.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace trace_internal

// One completed span, as collected by TraceSession::Stop(). `name` and
// `cat` point at the string literals passed to TraceSpan; `ts_ns` is
// relative to the session start.
struct TraceEvent {
  struct Arg {
    const char* key = nullptr;
    double value = 0.0;
  };
  static constexpr uint32_t kMaxArgs = 3;

  const char* name = nullptr;
  const char* cat = nullptr;
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t id = 0;         // unique per span, never 0 for emitted spans
  uint64_t parent_id = 0;  // 0 = root
  uint32_t tid = 0;        // small per-thread ordinal (1 = first thread seen)
  uint32_t num_args = 0;
  Arg args[kMaxArgs];
};

// Whether a trace session is currently active (one relaxed load).
inline bool TraceEnabled() {
  return (trace_internal::g_generation.load(std::memory_order_relaxed) & 1) !=
         0;
}

// Controls whether a TraceSpan reads the clock when tracing is disabled.
enum class TimingMode {
  // Clock is read only if tracing is active or a histogram was supplied.
  // Finish() returns 0.0 when neither holds.
  kLazy,
  // Clock is always read; Finish() always returns the elapsed seconds.
  // For call sites that feed telemetry structs besides the histogram.
  kAlways,
};

// RAII span. `name` and `cat` must be string literals (or otherwise outlive
// the session): they are stored by pointer, never copied. Spans nest via a
// thread-local parent pointer and must be finished in LIFO order per thread
// (scoped RAII usage guarantees this). Typical use:
//
//   static Histogram* timing =
//       GlobalMetrics().GetHistogram("daakg.active.pool_build_seconds");
//   TraceSpan span("active.pool_generate", "active", timing);
//   span.AddArg("top_n", top_n);
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat,
                     Histogram* histogram = nullptr,
                     TimingMode mode = TimingMode::kLazy)
      : histogram_(histogram) {
    const uint64_t gen =
        trace_internal::g_generation.load(std::memory_order_relaxed);
    if ((gen & 1) == 0) {
      if (histogram == nullptr && mode == TimingMode::kLazy) return;  // kIdle
      state_ = State::kTimerOnly;
      start_ns_ = trace_internal::NowNs();
      return;
    }
    state_ = State::kTracing;
    BeginTracing(name, cat, gen);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (state_ != State::kIdle) Finish();
  }

  // Attaches a numeric argument (exported under "args" in the JSON). No-op
  // unless this span is actively tracing; at most TraceEvent::kMaxArgs stick.
  void AddArg(const char* key, double value) {
    if (state_ != State::kTracing || num_args_ >= TraceEvent::kMaxArgs) return;
    args_[num_args_].key = key;
    args_[num_args_].value = value;
    ++num_args_;
  }

  // Ends the span now (instead of at destruction): records the histogram
  // sample, emits the trace event, and returns the elapsed seconds (0.0 in
  // kLazy idle state). Idempotent; returns the first call's result after.
  double Finish();

  // The span id while tracing, 0 otherwise. Exposed for tests.
  uint64_t id() const { return id_; }

 private:
  enum class State : uint8_t { kIdle, kTimerOnly, kTracing };

  void BeginTracing(const char* name, const char* cat, uint64_t gen);

  Histogram* histogram_;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t gen_ = 0;
  double finished_seconds_ = 0.0;
  State state_ = State::kIdle;
  bool finished_ = false;
  uint32_t num_args_ = 0;
  TraceEvent::Arg args_[TraceEvent::kMaxArgs];
};

// Process-wide trace session. Buffers are per-thread and owned by the
// session singleton; they are reused (not freed) across Start/Stop cycles.
// All methods are safe to call from any thread, but Start/Stop are
// serialized internally — concurrent Start calls race benignly (one wins,
// the others get FailedPrecondition).
class TraceSession {
 public:
  static constexpr size_t kDefaultEventsPerThread = 1 << 16;

  static TraceSession& Global();

  // Begins recording. Fails with FailedPrecondition if already active.
  // `events_per_thread` sizes each thread's buffer (slots, not bytes).
  Status Start(size_t events_per_thread = kDefaultEventsPerThread);

  // Stops recording and returns every span emitted during the session,
  // sorted by start time. Returns an empty vector if no session is active.
  std::vector<TraceEvent> Stop();

  // Stop() + WriteTraceJson(events, path).
  Status StopAndWriteJson(const std::string& path);

  // Start() and register a process-exit hook that stops the session and
  // writes `path`. Used by the DAAKG_TRACE env var and --trace_json flag.
  Status StartWithExportAtExit(const std::string& path,
                               size_t events_per_thread =
                                   kDefaultEventsPerThread);

  bool active() const { return TraceEnabled(); }

  // Events dropped (buffers full) during the most recently stopped session.
  uint64_t dropped_last_session() const {
    return dropped_last_session_.load(std::memory_order_relaxed);
  }

 private:
  TraceSession() = default;

  std::atomic<uint64_t> dropped_last_session_{0};
};

// Serializes events as Chrome trace-event JSON (the {"traceEvents": [...]}
// object form). Timestamps and durations are microseconds.
std::string TraceEventsToJson(const std::vector<TraceEvent>& events);

// Writes TraceEventsToJson(events) to `path` (with a trailing newline).
Status WriteTraceJson(const std::vector<TraceEvent>& events,
                      const std::string& path);

}  // namespace obs
}  // namespace daakg

#endif  // DAAKG_OBS_TRACE_H_
