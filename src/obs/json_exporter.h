#ifndef DAAKG_OBS_JSON_EXPORTER_H_
#define DAAKG_OBS_JSON_EXPORTER_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace daakg {
namespace obs {

// Serializes a registry snapshot as a JSON object:
//
//   {
//     "counters":   { "daakg.active.oracle_queries": 120, ... },
//     "gauges":     { "daakg.active.pool_size": 4096.0, ... },
//     "histograms": {
//       "daakg.active.pool_build_seconds": {
//         "count": 5, "sum": 0.71, "min": 0.12, "max": 0.18, "mean": 0.142,
//         "p50": 0.139, "p95": 0.177, "p99": 0.18,
//         "buckets": [ { "le": 0.131072, "count": 3 },
//                      { "le": "+Inf",   "count": 2 } ]
//       }, ...
//     }
//   }
//
// Empty buckets are omitted; the overflow bucket's bound is the string
// "+Inf" because JSON has no infinity literal.
std::string MetricsToJson(const MetricsRegistry& registry);

// Writes MetricsToJson(registry) to `path` (with a trailing newline).
Status WriteMetricsJson(const MetricsRegistry& registry,
                        const std::string& path);

}  // namespace obs
}  // namespace daakg

#endif  // DAAKG_OBS_JSON_EXPORTER_H_
