#ifndef DAAKG_OBS_SCOPED_TIMER_H_
#define DAAKG_OBS_SCOPED_TIMER_H_

#include <chrono>
#include <string_view>

#include "obs/metrics.h"

namespace daakg {
namespace obs {

// RAII phase span: records the elapsed wall time (seconds) into a histogram
// when it goes out of scope.
//
// NOTE: instrumented library phases use obs::TraceSpan (obs/trace.h), which
// feeds the same histogram AND emits a trace event from a single clock-read
// pair. ScopedTimer remains for metric-only call sites outside the traced
// pipeline (and as the simplest possible timer for tests/tools).
//
// Typical use, with the handle hoisted so the registry lookup happens once:
//
//   static Histogram* timing =
//       GlobalMetrics().GetHistogram("daakg.active.pool_build_seconds");
//   ScopedTimer span(timing);
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(Clock::now()) {}
  // Convenience overload that resolves the histogram by name. Prefer the
  // pointer overload on hot paths.
  ScopedTimer(MetricsRegistry* registry, std::string_view name)
      : ScopedTimer(registry->GetHistogram(name)) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(Elapsed());
  }

  // Seconds since construction.
  double Elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Detaches the timer: nothing is recorded at destruction.
  void Cancel() { histogram_ = nullptr; }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* histogram_;
  Clock::time_point start_;
};

}  // namespace obs
}  // namespace daakg

#endif  // DAAKG_OBS_SCOPED_TIMER_H_
