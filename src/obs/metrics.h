#ifndef DAAKG_OBS_METRICS_H_
#define DAAKG_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace daakg {
namespace obs {

// Run-wide observability primitives. Design constraints (see DESIGN.md,
// "Observability"):
//   * handles returned by MetricsRegistry are stable for the registry's
//     lifetime — callers hoist them out of hot loops and increment lock-free;
//   * every mutation is a relaxed atomic op (or a short CAS loop), safe under
//     ThreadPool fan-out; the registry mutex guards registration only;
//   * names follow `daakg.<layer>.<metric>` (e.g.
//     `daakg.active.pool_build_seconds`).

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written level (pool sizes, partition counts, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Distribution of non-negative samples over fixed log-scale buckets.
//
// Bucket 0 holds samples <= kFirstUpperBound; bucket i (1 <= i <
// kNumBuckets - 1) holds (kFirstUpperBound * 2^(i-1), kFirstUpperBound *
// 2^i]; the last bucket is the overflow. With the defaults the range spans
// 1 microsecond .. ~200 days when samples are seconds, which covers every
// phase this library times.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 46;
  static constexpr double kFirstUpperBound = 1e-6;

  // Records one sample. Non-finite and negative samples count into bucket 0
  // with value 0 (they indicate a caller bug but must not poison the stats).
  void Record(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  // Min()/Max() are 0 while Count() == 0.
  double Min() const;
  double Max() const;
  double Mean() const;
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Estimated q-quantile (q in [0, 1]) by log-scale interpolation within the
  // bucket holding the target rank: geometric between the bucket's bounds
  // (linear in bucket 0, whose lower bound is 0), clamped to [Min(), Max()];
  // ranks landing in the overflow bucket return Max(). 0 while Count() == 0.
  double Quantile(double q) const;
  // Inclusive upper bound of bucket `i`; +infinity for the overflow bucket.
  static double BucketUpperBound(size_t i);
  // Index of the bucket `value` falls into.
  static size_t BucketIndex(double value);

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid while count_ > 0
  std::atomic<double> max_{0.0};
};

// Owns named metrics. Get*() registers on first use and always returns the
// same pointer for the same name afterwards; pointers stay valid until the
// registry is destroyed (Reset() zeroes values in place, it never
// deallocates). The same name may back a counter, a gauge and a histogram
// simultaneously (they live in separate namespaces), but instrumentation
// should not rely on that.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Snapshots for exporters, sorted by name.
  std::vector<std::pair<std::string, const Counter*>> Counters() const;
  std::vector<std::pair<std::string, const Gauge*>> Gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> Histograms() const;

  // Zeroes every metric; previously returned handles remain valid.
  void Reset();

 private:
  mutable std::mutex mu_;
  // std::map: node-based, so value addresses are stable across inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Process-wide registry the library's built-in instrumentation writes to.
MetricsRegistry& GlobalMetrics();

}  // namespace obs
}  // namespace daakg

#endif  // DAAKG_OBS_METRICS_H_
