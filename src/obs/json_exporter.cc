#include "obs/json_exporter.h"

#include <cmath>
#include <cstdint>
#include <string>

#include "common/file_util.h"
#include "common/string_util.h"

namespace daakg {
namespace obs {
namespace {

void AppendHistogram(const Histogram& h, std::string* out) {
  out->append(StrFormat(
      "{\"count\": %llu, \"sum\": %s, \"min\": %s, \"max\": %s, "
      "\"mean\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s, \"buckets\": [",
      static_cast<unsigned long long>(h.Count()), JsonNumber(h.Sum()).c_str(),
      JsonNumber(h.Min()).c_str(), JsonNumber(h.Max()).c_str(),
      JsonNumber(h.Mean()).c_str(), JsonNumber(h.Quantile(0.5)).c_str(),
      JsonNumber(h.Quantile(0.95)).c_str(),
      JsonNumber(h.Quantile(0.99)).c_str()));
  bool first = true;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    const uint64_t count = h.BucketCount(i);
    if (count == 0) continue;
    if (!first) out->append(", ");
    first = false;
    const double le = Histogram::BucketUpperBound(i);
    if (std::isinf(le)) {
      out->append(StrFormat("{\"le\": \"+Inf\", \"count\": %llu}",
                            static_cast<unsigned long long>(count)));
    } else {
      out->append(StrFormat("{\"le\": %s, \"count\": %llu}",
                            JsonNumber(le).c_str(),
                            static_cast<unsigned long long>(count)));
    }
  }
  out->append("]}");
}

}  // namespace

std::string MetricsToJson(const MetricsRegistry& registry) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : registry.Counters()) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\n    \"%s\": %llu", JsonEscape(name).c_str(),
                     static_cast<unsigned long long>(counter->Value()));
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : registry.Gauges()) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\n    \"%s\": %s", JsonEscape(name).c_str(),
                     JsonNumber(gauge->Value()).c_str());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : registry.Histograms()) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\n    \"%s\": ", JsonEscape(name).c_str());
    AppendHistogram(*hist, &out);
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

Status WriteMetricsJson(const MetricsRegistry& registry,
                        const std::string& path) {
  return WriteStringToFile(path, MetricsToJson(registry) + "\n");
}

}  // namespace obs
}  // namespace daakg
