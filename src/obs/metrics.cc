#include "obs/metrics.h"

#include <cmath>
#include <limits>

namespace daakg {
namespace obs {
namespace {

// CAS add for compilers whose std::atomic<double>::fetch_add codegen is
// suboptimal; also used for the min/max folds below.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value < cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value > cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::Add(double delta) { AtomicAdd(&value_, delta); }

size_t Histogram::BucketIndex(double value) {
  if (!std::isfinite(value) || value <= kFirstUpperBound) return 0;
  // Bucket upper bounds are inclusive, so an exact boundary (log2 integer)
  // belongs to the bucket it bounds — hence ceil, not 1 + floor.
  const double log2_ratio = std::log2(value / kFirstUpperBound);
  const size_t idx = static_cast<size_t>(std::ceil(log2_ratio));
  return idx < kNumBuckets ? idx : kNumBuckets - 1;
}

double Histogram::BucketUpperBound(size_t i) {
  if (i + 1 >= kNumBuckets) return std::numeric_limits<double>::infinity();
  return kFirstUpperBound * std::exp2(static_cast<double>(i));
}

void Histogram::Record(double value) {
  if (!std::isfinite(value) || value < 0.0) value = 0.0;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  // First-sample min/max initialization races are benign: count_ is bumped
  // last, and before the first bump Min()/Max() report 0; afterwards the CAS
  // folds below have already run for every recorded sample.
  if (count_.load(std::memory_order_relaxed) == 0) {
    double expected = 0.0;
    min_.compare_exchange_strong(expected, value, std::memory_order_relaxed);
    expected = 0.0;
    max_.compare_exchange_strong(expected, value, std::memory_order_relaxed);
  }
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  // Snapshot the buckets once so concurrent Record()s cannot move the
  // cumulative walk mid-scan; the snapshot is internally consistent enough
  // for an estimate (same guarantee exporters already live with).
  std::array<uint64_t, kNumBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double lo = Min();
  const double hi = Max();
  if (q <= 0.0) return lo;
  if (q >= 1.0) return hi;
  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    if (i + 1 == kNumBuckets) return hi;  // overflow bucket: no upper bound
    const double frac = (target - before) / static_cast<double>(counts[i]);
    double value;
    if (i == 0) {
      // Bucket 0 spans [0, kFirstUpperBound]: interpolate linearly, a
      // geometric walk from a 0 lower bound is degenerate.
      value = frac * kFirstUpperBound;
    } else {
      // Log-scale buckets: successive bounds differ by 2x, so the natural
      // interpolation is geometric — lower * 2^frac sweeps the bucket.
      value = BucketUpperBound(i - 1) * std::exp2(frac);
    }
    return std::min(hi, std::max(lo, value));
  }
  return hi;
}

double Histogram::Min() const {
  return Count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::Max() const {
  return Count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<std::pair<std::string, const Counter*>> MetricsRegistry::Counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter.get());
  }
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> MetricsRegistry::Gauges()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) out.emplace_back(name, gauge.get());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    out.emplace_back(name, hist.get());
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace daakg
