#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "common/file_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace daakg {
namespace obs {

namespace trace_internal {
std::atomic<uint64_t> g_generation{0};
}  // namespace trace_internal

namespace {

using trace_internal::g_generation;
using trace_internal::NowNs;

// ---------------------------------------------------------------------------
// Per-thread event buffers.
//
// Memory model: each buffer has exactly one writer — the thread that
// registered it. The writer fills slots_[head] and then publishes with a
// release store of head + 1; collectors (Stop(), under the session mutex)
// acquire-load head and read only [0, head), so every slot they touch was
// published by its writer. Buffers are owned by the leaked session state and
// reused across sessions: slots left over from an earlier session carry a
// stale `gen` tag and are filtered at collection, which also makes the rare
// straggler (a span constructed under an old generation finishing after a
// new session started) benign — its event lands tagged with the old gen.

struct Slot {
  TraceEvent event;
  uint64_t gen = 0;
};

struct ThreadBuffer {
  std::vector<Slot> slots;
  std::atomic<uint64_t> head{0};
  std::atomic<uint64_t> dropped{0};
  uint32_t tid = 0;
};

struct SessionState {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  size_t capacity = TraceSession::kDefaultEventsPerThread;
  uint64_t session_start_ns = 0;
  uint64_t active_gen = 0;  // the odd generation while active, else 0
  std::string export_path;
  bool atexit_registered = false;
};

SessionState& State() {
  static SessionState* state = new SessionState();
  return *state;
}

std::atomic<uint64_t> g_next_span_id{1};

uint64_t NextSpanId() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

// Current innermost tracing span on this thread; 0 at top level.
thread_local uint64_t t_parent_span_id = 0;

// Cached buffer for the fast emit path; revalidated when the session
// generation moves past the cached one.
thread_local ThreadBuffer* t_buffer = nullptr;
thread_local uint64_t t_buffer_gen = 0;

ThreadBuffer* AcquireBuffer(uint64_t gen) {
  if (t_buffer != nullptr && t_buffer_gen == gen) return t_buffer;
  SessionState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  // The span's session may have ended (or ended and restarted) since the
  // span began; only record into the generation it was opened under.
  if (st.active_gen != gen) return nullptr;
  if (t_buffer == nullptr) {
    auto buf = std::make_unique<ThreadBuffer>();
    buf->tid = static_cast<uint32_t>(st.buffers.size() + 1);
    buf->slots.resize(st.capacity);
    t_buffer = buf.get();
    st.buffers.push_back(std::move(buf));
  } else if (t_buffer->slots.size() != st.capacity) {
    // Owner-thread resize, serialized with collectors by st.mu.
    t_buffer->slots.resize(st.capacity);
  }
  t_buffer_gen = gen;
  return t_buffer;
}

void EmitEvent(uint64_t gen, const TraceEvent& event) {
  ThreadBuffer* buf = AcquireBuffer(gen);
  if (buf == nullptr) return;
  // Acquire pairs with Start()'s release reset of head: an old-generation
  // straggler that slipped past the TLS cache and observes the reset also
  // sees (happens-after) the previous Stop()'s slot reads, so overwriting
  // slot 0 is ordered; one that still observes its own stale head writes a
  // slot past the collected region instead. Either way the slot lands
  // tagged with the old gen and is filtered at the next collection.
  const uint64_t idx = buf->head.load(std::memory_order_acquire);
  if (idx >= buf->slots.size()) {
    // Drop-newest: keeps the earliest (outermost, structural) spans intact
    // rather than evicting the parents later events would nest under.
    buf->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = buf->slots[idx];
  slot.event = event;
  slot.event.tid = buf->tid;
  slot.gen = gen;
  buf->head.store(idx + 1, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// ThreadPool observer: pool telemetry metrics plus a synthetic "pool.task"
// span on the executing thread whose parent is the span that was current on
// the submitting thread, so ParallelFor worker slices nest under their
// enqueuing span in the exported trace.

struct TaskScope {
  uint64_t prev_parent = 0;
  uint64_t id = 0;
  uint64_t parent = 0;
  uint64_t gen = 0;
  uint64_t start_ns = 0;
  bool traced = false;
};

thread_local std::vector<TaskScope> t_task_stack;

uint64_t PoolCaptureContext() {
  if (!TraceEnabled()) return 0;
  return t_parent_span_id;
}

void PoolTaskBegin(uint64_t context) {
  TaskScope scope;
  scope.prev_parent = t_parent_span_id;
  const uint64_t gen = g_generation.load(std::memory_order_relaxed);
  if ((gen & 1) != 0) {
    scope.traced = true;
    scope.gen = gen;
    scope.id = NextSpanId();
    scope.parent = context;
    scope.start_ns = NowNs();
    t_parent_span_id = scope.id;
  }
  t_task_stack.push_back(scope);
}

void PoolTaskEnd() {
  static Counter* executed =
      GlobalMetrics().GetCounter("daakg.pool.tasks_executed");
  executed->Increment();
  if (t_task_stack.empty()) return;
  const TaskScope scope = t_task_stack.back();
  t_task_stack.pop_back();
  t_parent_span_id = scope.prev_parent;
  if (!scope.traced) return;
  TraceEvent event;
  event.name = "pool.task";
  event.cat = "pool";
  event.ts_ns = scope.start_ns;
  event.dur_ns = NowNs() - scope.start_ns;
  event.id = scope.id;
  event.parent_id = scope.parent;
  EmitEvent(scope.gen, event);
}

// on_enqueue/on_dequeue run under the pool mutex; GetCounter/GetGauge take
// only the registry mutex (pool -> registry lock order, never reversed).
void PoolOnEnqueue(size_t queue_depth) {
  static Counter* submitted =
      GlobalMetrics().GetCounter("daakg.pool.tasks_submitted");
  static Gauge* depth = GlobalMetrics().GetGauge("daakg.pool.queue_depth");
  submitted->Increment();
  depth->Set(static_cast<double>(queue_depth));
}

void PoolOnDequeue(size_t queue_depth) {
  static Gauge* depth = GlobalMetrics().GetGauge("daakg.pool.queue_depth");
  depth->Set(static_cast<double>(queue_depth));
}

void PoolOnHelpDrain() {
  static Counter* drained =
      GlobalMetrics().GetCounter("daakg.pool.help_drained_tasks");
  drained->Increment();
}

constexpr ThreadPoolObserver kPoolObserver = {
    &PoolCaptureContext, &PoolTaskBegin,  &PoolTaskEnd,
    &PoolOnEnqueue,      &PoolOnDequeue,  &PoolOnHelpDrain,
};

void ExportAtExit() {
  SessionState& st = State();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    path = st.export_path;
  }
  if (path.empty() || !TraceEnabled()) return;
  const Status status = TraceSession::Global().StopAndWriteJson(path);
  if (!status.ok()) {
    LOG_WARNING << "failed to export trace to " << path << ": " << status;
  }
}

// Installs the pool observer and honors DAAKG_TRACE=<path>. This TU is
// linked into every binary that emits a TraceSpan (the inline constructor
// references g_generation), which is exactly the set that needs the hooks.
struct TraceGlobalInit {
  TraceGlobalInit() {
    SetThreadPoolObserver(&kPoolObserver);
    const char* path = std::getenv("DAAKG_TRACE");
    if (path != nullptr && path[0] != '\0') {
      const Status status =
          TraceSession::Global().StartWithExportAtExit(path);
      if (!status.ok()) {
        LOG_WARNING << "DAAKG_TRACE: " << status;
      }
    }
  }
};

TraceGlobalInit g_trace_global_init;

}  // namespace

// ---------------------------------------------------------------------------
// TraceSpan

void TraceSpan::BeginTracing(const char* name, const char* cat, uint64_t gen) {
  name_ = name;
  cat_ = cat;
  gen_ = gen;
  id_ = NextSpanId();
  parent_id_ = t_parent_span_id;
  t_parent_span_id = id_;
  // Clock read last, so setup cost is outside the measured window.
  start_ns_ = NowNs();
}

double TraceSpan::Finish() {
  if (finished_ || state_ == State::kIdle) return finished_seconds_;
  finished_ = true;
  const uint64_t dur_ns = NowNs() - start_ns_;
  // One integer duration feeds both sinks: the histogram sample and the
  // trace event agree bit-for-bit.
  const double seconds = static_cast<double>(dur_ns) * 1e-9;
  finished_seconds_ = seconds;
  if (histogram_ != nullptr) histogram_->Record(seconds);
  if (state_ == State::kTracing) {
    t_parent_span_id = parent_id_;
    TraceEvent event;
    event.name = name_;
    event.cat = cat_;
    event.ts_ns = start_ns_;  // absolute here; rebased at collection
    event.dur_ns = dur_ns;
    event.id = id_;
    event.parent_id = parent_id_;
    event.num_args = num_args_;
    for (uint32_t i = 0; i < num_args_; ++i) event.args[i] = args_[i];
    EmitEvent(gen_, event);
  }
  return seconds;
}

// ---------------------------------------------------------------------------
// TraceSession

TraceSession& TraceSession::Global() {
  static TraceSession* session = new TraceSession();
  return *session;
}

Status TraceSession::Start(size_t events_per_thread) {
  if (events_per_thread == 0) {
    return InvalidArgumentError("events_per_thread must be positive");
  }
  SessionState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  const uint64_t gen = g_generation.load(std::memory_order_relaxed);
  if ((gen & 1) != 0) {
    return FailedPreconditionError("a trace session is already active");
  }
  st.capacity = events_per_thread;
  for (auto& buf : st.buffers) {
    // Release pairs with the writer's acquire load in EmitEvent (see there):
    // it carries the previous session's collection past the reset so a
    // straggler reusing slot 0 does not race with Stop()'s reads.
    buf->head.store(0, std::memory_order_release);
    buf->dropped.store(0, std::memory_order_relaxed);
    // A capacity change is applied lazily by each buffer's owner thread the
    // first time it emits under the new generation (AcquireBuffer).
  }
  st.session_start_ns = NowNs();
  st.active_gen = gen + 1;
  g_generation.store(gen + 1, std::memory_order_release);
  return Status::Ok();
}

std::vector<TraceEvent> TraceSession::Stop() {
  SessionState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  const uint64_t gen = g_generation.load(std::memory_order_relaxed);
  if ((gen & 1) == 0) return {};
  // Flip to even first: span fast paths go quiet immediately; anything
  // already mid-emit lands tagged with `gen` and is still collected below
  // if its head store wins the race, or harmlessly lost if not.
  g_generation.store(gen + 1, std::memory_order_release);
  st.active_gen = 0;

  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
  for (const auto& buf : st.buffers) {
    const uint64_t head =
        std::min<uint64_t>(buf->head.load(std::memory_order_acquire),
                           buf->slots.size());
    for (uint64_t i = 0; i < head; ++i) {
      const Slot& slot = buf->slots[i];
      if (slot.gen != gen) continue;  // stale slot from an earlier session
      TraceEvent event = slot.event;
      event.ts_ns = event.ts_ns > st.session_start_ns
                        ? event.ts_ns - st.session_start_ns
                        : 0;
      events.push_back(event);
    }
    dropped += buf->dropped.load(std::memory_order_relaxed);
  }
  dropped_last_session_.store(dropped, std::memory_order_relaxed);
  static Counter* dropped_counter =
      GlobalMetrics().GetCounter("daakg.obs.trace_dropped_events");
  dropped_counter->Increment(dropped);

  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return events;
}

Status TraceSession::StopAndWriteJson(const std::string& path) {
  return WriteTraceJson(Stop(), path);
}

Status TraceSession::StartWithExportAtExit(const std::string& path,
                                           size_t events_per_thread) {
  DAAKG_RETURN_IF_ERROR(Start(events_per_thread));
  SessionState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  st.export_path = path;
  if (!st.atexit_registered) {
    st.atexit_registered = true;
    std::atexit(&ExportAtExit);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON export.

std::string TraceEventsToJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\": [\n";
  // Process-name metadata record; also guarantees a non-empty array.
  out +=
      "  {\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", "
      "\"args\": {\"name\": \"daakg\"}}";
  for (const TraceEvent& ev : events) {
    out += ",\n  ";
    out += StrFormat(
        "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, "
        "\"dur\": %.3f, \"pid\": 1, \"tid\": %u, \"args\": {\"span_id\": "
        "%llu, \"parent_span_id\": %llu",
        JsonEscape(ev.name).c_str(), JsonEscape(ev.cat).c_str(),
        static_cast<double>(ev.ts_ns) / 1000.0,
        static_cast<double>(ev.dur_ns) / 1000.0, ev.tid,
        static_cast<unsigned long long>(ev.id),
        static_cast<unsigned long long>(ev.parent_id));
    for (uint32_t i = 0; i < ev.num_args && i < TraceEvent::kMaxArgs; ++i) {
      out += StrFormat(", \"%s\": %s", JsonEscape(ev.args[i].key).c_str(),
                       JsonNumber(ev.args[i].value).c_str());
    }
    out += "}}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}";
  return out;
}

Status WriteTraceJson(const std::vector<TraceEvent>& events,
                      const std::string& path) {
  return WriteStringToFile(path, TraceEventsToJson(events) + "\n");
}

}  // namespace obs
}  // namespace daakg
