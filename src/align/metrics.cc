#include "align/metrics.h"

#include <algorithm>
#include <limits>
#include <tuple>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "tensor/simd/simd.h"
#include "tensor/topk.h"

namespace daakg {

RankingMetrics EvaluateRanking(
    const Matrix& sim,
    const std::vector<std::pair<uint32_t, uint32_t>>& test_pairs) {
  RankingMetrics m;
  for (const auto& [first, second] : test_pairs) {
    DAAKG_CHECK_LT(first, sim.rows());
    DAAKG_CHECK_LT(second, sim.cols());
    const float* row = sim.RowData(first);
    const float target = row[second];
    // Entries strictly above the target outrank it; the target's own cell
    // compares equal, so no index needs excluding.
    const size_t rank = 1 + CountGreater(row, sim.cols(), target);
    if (rank == 1) m.hits_at_1 += 1.0;
    if (rank <= 10) m.hits_at_10 += 1.0;
    m.mrr += 1.0 / static_cast<double>(rank);
    ++m.num_queries;
  }
  if (m.num_queries > 0) {
    const double n = static_cast<double>(m.num_queries);
    m.hits_at_1 /= n;
    m.hits_at_10 /= n;
    m.mrr /= n;
  }
  return m;
}

RankingMetrics EvaluateRankingStreaming(
    const Matrix& a, const Matrix& b,
    const std::vector<std::pair<uint32_t, uint32_t>>& test_pairs,
    const BlockedKernelOptions& options) {
  RankingMetrics m;
  if (test_pairs.empty()) return m;
  DAAKG_CHECK_EQ(a.cols(), b.cols());
  const size_t num_queries = test_pairs.size();
  constexpr size_t kNone = std::numeric_limits<size_t>::max();

  // Compact the distinct query rows so the tile walk only touches them.
  std::vector<size_t> compact_of(a.rows(), kNone);
  std::vector<uint32_t> unique_rows;
  for (const auto& [first, second] : test_pairs) {
    DAAKG_CHECK_LT(first, a.rows());
    DAAKG_CHECK_LT(second, b.rows());
    if (compact_of[first] == kNone) {
      compact_of[first] = unique_rows.size();
      unique_rows.push_back(first);
    }
  }
  Matrix aq(unique_rows.size(), a.cols());
  std::vector<std::vector<size_t>> queries_of(unique_rows.size());
  for (size_t i = 0; i < unique_rows.size(); ++i) {
    std::copy_n(a.RowData(unique_rows[i]), a.cols(), aq.RowData(i));
  }
  for (size_t q = 0; q < num_queries; ++q) {
    queries_of[compact_of[test_pairs[q].first]].push_back(q);
  }

  // Targets via the dispatched dot, which is bitwise identical to the tile
  // cells the walk below produces for the same backend — exactly the value
  // the materialized path reads out of its row.
  const simd::Ops& ops = simd::Resolve(options.backend);
  std::vector<float> target(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    target[q] = ops.dot(a.RowData(test_pairs[q].first),
                        b.RowData(test_pairs[q].second), a.cols());
  }

  // Strictly-greater counts accumulate tile by tile. All tiles of one
  // compact row come from a single shard, so each greater[q] has exactly
  // one writer.
  std::vector<size_t> greater(num_queries, 0);
  BlockedSimVisit(
      aq, b,
      [&](size_t r, size_t /*c0*/, const float* sims, size_t count) {
        for (size_t q : queries_of[r]) {
          greater[q] += ops.count_greater(sims, count, target[q]);
        }
      },
      options);

  // Fold ranks in the original test-pair order (same summation order as
  // the materialized path).
  for (size_t q = 0; q < num_queries; ++q) {
    const size_t rank = 1 + greater[q];
    if (rank == 1) m.hits_at_1 += 1.0;
    if (rank <= 10) m.hits_at_10 += 1.0;
    m.mrr += 1.0 / static_cast<double>(rank);
    ++m.num_queries;
  }
  const double n = static_cast<double>(m.num_queries);
  m.hits_at_1 /= n;
  m.hits_at_10 /= n;
  m.mrr /= n;
  return m;
}

std::vector<std::pair<uint32_t, uint32_t>> GreedyOneToOneMatches(
    const Matrix& sim, float threshold) {
  // Sweep the matrix in row blocks, each shard collecting its rows' cells
  // above threshold locally; shard buffers concatenate in shard order, so
  // the combined sequence is the same row-major order a serial scan
  // produces (and hence the sort and greedy sweep below see identical
  // input).
  ThreadPool& pool = GlobalThreadPool();
  const size_t shards = std::min(sim.rows(), pool.num_threads());
  std::vector<std::vector<std::tuple<float, uint32_t, uint32_t>>> shard_cells(
      std::max<size_t>(shards, 1));
  pool.ParallelForShards(
      sim.rows(), [&](size_t shard, size_t begin, size_t end) {
        auto& cells = shard_cells[shard];
        for (size_t r = begin; r < end; ++r) {
          const float* row = sim.RowData(r);
          for (size_t c = 0; c < sim.cols(); ++c) {
            if (row[c] >= threshold) {
              cells.emplace_back(row[c], static_cast<uint32_t>(r),
                                 static_cast<uint32_t>(c));
            }
          }
        }
      });
  size_t total = 0;
  for (const auto& cells : shard_cells) total += cells.size();
  std::vector<std::tuple<float, uint32_t, uint32_t>> cells;
  cells.reserve(total);
  for (auto& shard : shard_cells) {
    cells.insert(cells.end(), shard.begin(), shard.end());
  }
  std::sort(cells.begin(), cells.end(), [](const auto& a, const auto& b) {
    return std::get<0>(a) > std::get<0>(b);
  });
  std::vector<bool> used_row(sim.rows(), false);
  std::vector<bool> used_col(sim.cols(), false);
  std::vector<std::pair<uint32_t, uint32_t>> matches;
  for (const auto& [score, r, c] : cells) {
    (void)score;
    if (used_row[r] || used_col[c]) continue;
    used_row[r] = true;
    used_col[c] = true;
    matches.emplace_back(r, c);
  }
  return matches;
}

PrfMetrics EvaluateGreedyMatching(
    const Matrix& sim,
    const std::vector<std::pair<uint32_t, uint32_t>>& gold_pairs,
    float threshold) {
  auto predicted = GreedyOneToOneMatches(sim, threshold);
  PrfMetrics m;
  m.num_predicted = predicted.size();
  std::vector<std::pair<uint32_t, uint32_t>> gold_sorted = gold_pairs;
  std::sort(gold_sorted.begin(), gold_sorted.end());
  for (const auto& p : predicted) {
    if (std::binary_search(gold_sorted.begin(), gold_sorted.end(), p)) {
      ++m.num_correct;
    }
  }
  if (m.num_predicted > 0) {
    m.precision = static_cast<double>(m.num_correct) /
                  static_cast<double>(m.num_predicted);
  }
  if (!gold_pairs.empty()) {
    m.recall = static_cast<double>(m.num_correct) /
               static_cast<double>(gold_pairs.size());
  }
  if (m.precision + m.recall > 0.0) {
    m.f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  return m;
}

}  // namespace daakg
