#include "align/metrics.h"

#include <algorithm>
#include <limits>
#include <tuple>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "index/candidate_index.h"
#include "tensor/topk.h"

namespace daakg {

RankingMetrics EvaluateRanking(
    const Matrix& sim,
    const std::vector<std::pair<uint32_t, uint32_t>>& test_pairs) {
  RankingMetrics m;
  for (const auto& [first, second] : test_pairs) {
    DAAKG_CHECK_LT(first, sim.rows());
    DAAKG_CHECK_LT(second, sim.cols());
    const float* row = sim.RowData(first);
    const float target = row[second];
    // Entries strictly above the target outrank it; the target's own cell
    // compares equal, so no index needs excluding.
    const size_t rank = 1 + CountGreater(row, sim.cols(), target);
    if (rank == 1) m.hits_at_1 += 1.0;
    if (rank <= 10) m.hits_at_10 += 1.0;
    m.mrr += 1.0 / static_cast<double>(rank);
    ++m.num_queries;
  }
  if (m.num_queries > 0) {
    const double n = static_cast<double>(m.num_queries);
    m.hits_at_1 /= n;
    m.hits_at_10 /= n;
    m.mrr /= n;
  }
  return m;
}

RankingMetrics EvaluateRankingStreaming(
    const Matrix& a, const Matrix& b,
    const std::vector<std::pair<uint32_t, uint32_t>>& test_pairs,
    const BlockedKernelOptions& options) {
  RankingMetrics m;
  if (test_pairs.empty()) return m;
  DAAKG_CHECK_EQ(a.cols(), b.cols());
  // Pin the exact backend: this signature's bit-identity contract must hold
  // regardless of any process-wide DAAKG_INDEX override.
  CandidateIndexConfig cfg;
  cfg.backend = IndexChoice::kExact;
  cfg.kernel = options;
  auto index = CandidateIndex::Build(b, cfg);
  DAAKG_CHECK(index.ok()) << index.status();
  return EvaluateRankingStreaming(**index, a, test_pairs);
}

RankingMetrics EvaluateRankingStreaming(
    const CandidateIndex& index, const Matrix& a,
    const std::vector<std::pair<uint32_t, uint32_t>>& test_pairs) {
  RankingMetrics m;
  if (test_pairs.empty()) return m;
  const Matrix& b = index.base();
  DAAKG_CHECK_EQ(a.cols(), b.cols());
  const size_t num_queries = test_pairs.size();
  constexpr size_t kNone = std::numeric_limits<size_t>::max();

  // Compact the distinct query rows so the index only scans them.
  std::vector<size_t> compact_of(a.rows(), kNone);
  std::vector<uint32_t> unique_rows;
  for (const auto& [first, second] : test_pairs) {
    DAAKG_CHECK_LT(first, a.rows());
    DAAKG_CHECK_LT(second, b.rows());
    if (compact_of[first] == kNone) {
      compact_of[first] = unique_rows.size();
      unique_rows.push_back(first);
    }
  }
  Matrix aq(unique_rows.size(), a.cols());
  for (size_t i = 0; i < unique_rows.size(); ++i) {
    std::copy_n(a.RowData(unique_rows[i]), a.cols(), aq.RowData(i));
  }

  // Targets via the index's exact-scoring primitive — the same dispatched
  // dot that is bitwise identical to the exact backend's tile cells, so
  // the target equals the value the materialized path reads out of its
  // row.
  std::vector<RankQuery> rank_queries(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    rank_queries[q].query_row =
        static_cast<uint32_t>(compact_of[test_pairs[q].first]);
    rank_queries[q].target = index.Score(aq.RowData(rank_queries[q].query_row),
                                         test_pairs[q].second);
  }

  const std::vector<size_t> greater = index.CountAbove(aq, rank_queries);

  // Fold ranks in the original test-pair order (same summation order as
  // the materialized path).
  for (size_t q = 0; q < num_queries; ++q) {
    const size_t rank = 1 + greater[q];
    if (rank == 1) m.hits_at_1 += 1.0;
    if (rank <= 10) m.hits_at_10 += 1.0;
    m.mrr += 1.0 / static_cast<double>(rank);
    ++m.num_queries;
  }
  const double n = static_cast<double>(m.num_queries);
  m.hits_at_1 /= n;
  m.hits_at_10 /= n;
  m.mrr /= n;
  return m;
}

namespace {

// Shared tail of the greedy one-to-one matching: sort by score (descending;
// the sort sees the cells in row-major order, so equal scores resolve the
// same way for every producer of that order) and sweep.
std::vector<std::pair<uint32_t, uint32_t>> GreedySweep(
    std::vector<std::tuple<float, uint32_t, uint32_t>>&& cells, size_t rows,
    size_t cols) {
  std::sort(cells.begin(), cells.end(), [](const auto& a, const auto& b) {
    return std::get<0>(a) > std::get<0>(b);
  });
  std::vector<bool> used_row(rows, false);
  std::vector<bool> used_col(cols, false);
  std::vector<std::pair<uint32_t, uint32_t>> matches;
  for (const auto& [score, r, c] : cells) {
    (void)score;
    if (used_row[r] || used_col[c]) continue;
    used_row[r] = true;
    used_col[c] = true;
    matches.emplace_back(r, c);
  }
  return matches;
}

}  // namespace

std::vector<std::pair<uint32_t, uint32_t>> GreedyOneToOneMatches(
    const Matrix& sim, float threshold) {
  // Sweep the matrix in row blocks, each shard collecting its rows' cells
  // above threshold locally; shard buffers concatenate in shard order, so
  // the combined sequence is the same row-major order a serial scan
  // produces (and hence the sort and greedy sweep below see identical
  // input).
  ThreadPool& pool = GlobalThreadPool();
  const size_t shards = std::min(sim.rows(), pool.num_threads());
  std::vector<std::vector<std::tuple<float, uint32_t, uint32_t>>> shard_cells(
      std::max<size_t>(shards, 1));
  pool.ParallelForShards(
      sim.rows(), [&](size_t shard, size_t begin, size_t end) {
        auto& cells = shard_cells[shard];
        for (size_t r = begin; r < end; ++r) {
          const float* row = sim.RowData(r);
          for (size_t c = 0; c < sim.cols(); ++c) {
            if (row[c] >= threshold) {
              cells.emplace_back(row[c], static_cast<uint32_t>(r),
                                 static_cast<uint32_t>(c));
            }
          }
        }
      });
  size_t total = 0;
  for (const auto& cells : shard_cells) total += cells.size();
  std::vector<std::tuple<float, uint32_t, uint32_t>> cells;
  cells.reserve(total);
  for (auto& shard : shard_cells) {
    cells.insert(cells.end(), shard.begin(), shard.end());
  }
  return GreedySweep(std::move(cells), sim.rows(), sim.cols());
}

std::vector<std::pair<uint32_t, uint32_t>> GreedyOneToOneMatches(
    const CandidateIndex& index, const Matrix& queries, float threshold) {
  // QueryAbove returns each row's qualifying cells in ascending base-row
  // order; concatenating rows in order reproduces the row-major cell
  // sequence of the matrix variant (bitwise, for an exact backend), so the
  // shared sweep behaves identically.
  const auto rows = index.QueryAbove(queries, threshold);
  size_t total = 0;
  for (const auto& row : rows) total += row.size();
  std::vector<std::tuple<float, uint32_t, uint32_t>> cells;
  cells.reserve(total);
  for (size_t r = 0; r < rows.size(); ++r) {
    for (const ScoredIndex& e : rows[r]) {
      cells.emplace_back(e.score, static_cast<uint32_t>(r), e.index);
    }
  }
  return GreedySweep(std::move(cells), queries.rows(), index.base().rows());
}

PrfMetrics EvaluateGreedyMatching(
    const Matrix& sim,
    const std::vector<std::pair<uint32_t, uint32_t>>& gold_pairs,
    float threshold) {
  auto predicted = GreedyOneToOneMatches(sim, threshold);
  PrfMetrics m;
  m.num_predicted = predicted.size();
  std::vector<std::pair<uint32_t, uint32_t>> gold_sorted = gold_pairs;
  std::sort(gold_sorted.begin(), gold_sorted.end());
  for (const auto& p : predicted) {
    if (std::binary_search(gold_sorted.begin(), gold_sorted.end(), p)) {
      ++m.num_correct;
    }
  }
  if (m.num_predicted > 0) {
    m.precision = static_cast<double>(m.num_correct) /
                  static_cast<double>(m.num_predicted);
  }
  if (!gold_pairs.empty()) {
    m.recall = static_cast<double>(m.num_correct) /
               static_cast<double>(gold_pairs.size());
  }
  if (m.precision + m.recall > 0.0) {
    m.f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  return m;
}

}  // namespace daakg
