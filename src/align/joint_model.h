#ifndef DAAKG_ALIGN_JOINT_MODEL_H_
#define DAAKG_ALIGN_JOINT_MODEL_H_

#include <utility>
#include <vector>

#include "common/rng.h"
#include "embedding/entity_class_model.h"
#include "embedding/kge_model.h"
#include "kg/alignment_task.h"
#include "tensor/matrix.h"

namespace daakg {

// Hyper-parameters of the joint alignment model (Sect. 4.2).
struct JointAlignConfig {
  float align_lr = 0.05f;
  // Joint training rounds: each round interleaves one KGE epoch per KG with
  // `joint_epochs_per_round` alignment epochs, so the embedding spaces
  // co-evolve with the mapping (Sect. 4.2's joint training).
  int align_epochs = 150;
  int joint_epochs_per_round = 3;
  // Semi-supervision cadence: mining re-runs every `semi_every` rounds once
  // a third of the rounds have elapsed.
  int semi_every = 12;
  int num_negatives = 10;      // negatives per labeled match
  // Hard-negative mining (normalized hard sample mining of Dual-AMN):
  // each negative is the most similar of this many uniform candidates.
  // 1 = plain uniform sampling.
  int hard_negative_candidates = 12;
  double loss_sharpness = 10.0;  // cosine -> logit scale in Eqs. (5), (8)
  // Weight of the auxiliary MTransE-style L2 pull ||A_ent e - e'||^2 on
  // labeled entity matches. The contrastive loss shapes *directions*; the
  // L2 term co-locates matches in absolute position, which is what lets
  // rotation-based geometries (RotatE) propagate alignment to neighbors.
  float l2_pull_weight = 0.3f;
  double tau = 0.9;            // semi-supervision similarity threshold
  int semi_rounds = 1;         // 0 disables semi-supervision (Table 5)
  double semi_lr_scale = 0.5;  // semi terms get a reduced learning rate
  double z_ent = 0.05;         // calibration temperatures (Sect. 7.1)
  double z_rel = 0.1;
  double z_cls = 0.1;
  double focal_gamma = 2.0;    // focal-loss focus (fine-tuning)
  bool use_mean_embeddings = true;   // Table 5 ablation switch
  bool update_embeddings = true;     // backprop alignment loss into KGE
  // --- entity-similarity cache refresh policy ----------------------------
  // When true, RefreshCaches() recomputes only the row bands of the cached
  // ent_sim_ whose unit-normalized source rows moved more than
  // `ent_sim_refresh_threshold` since they were last computed (plus
  // per-column patches for moved KG2 rows); every cached cell then stays
  // within 4 * threshold of the exact cosine (see DESIGN.md, "Incremental
  // entity-similarity refresh"). False forces the bit-exact full recompute
  // every round.
  bool incremental_ent_sim = true;
  float ent_sim_refresh_threshold = 1e-3f;
  // Rows are refreshed in bands of this many rows (amortizes the tiled
  // kernel's column-tile reloads across neighboring moved rows).
  size_t ent_sim_band_rows = 64;
  // Fall back to a full refresh when more than this fraction of rows or of
  // columns moved — incremental bookkeeping would cost more than it saves.
  float ent_sim_full_refresh_fraction = 0.5f;
  uint64_t seed = 29;
};

// The embedding-based joint alignment model (Fig. 3): learnable mapping
// matrices A_ent / A_rel / A_cls plus the similarity functions
//
//   S(e, e') = cos(A_ent e, e')                                     (Eq. 4)
//   S(r, r') = max(cos(A_rel r, r'), cos(A_ent rbar, rbar'))
//   S(c, c') = max(cos(A_cls c, c'), cos(A_ent cbar, cbar'))
//
// with dangling-aware entity weights (Eq. 6), weighted relation mean
// embeddings (Eq. 7) and class mean embeddings (Eq. 9).
//
// The model caches full similarity matrices after RefreshCaches(); the
// cached matrices also drive probability calibration (Eqs. 11-12), pool
// generation and semi-supervision mining.
class JointAlignmentModel {
 public:
  // `ec1`/`ec2` may be null ("w/o class embeddings" ablation: class
  // similarity then falls back to mean embeddings only). All pointees must
  // outlive the model.
  JointAlignmentModel(KgeModel* model1, KgeModel* model2,
                      EntityClassModel* ec1, EntityClassModel* ec2,
                      const JointAlignConfig& config);

  void Init(Rng* rng);

  const JointAlignConfig& config() const { return config_; }
  const KnowledgeGraph& kg1() const { return model1_->kg(); }
  const KnowledgeGraph& kg2() const { return model2_->kg(); }
  const KgeModel* kg1_model() const { return model1_; }
  const KgeModel* kg2_model() const { return model2_; }

  // --- similarities (computed fresh from current parameters) -------------
  float EntitySim(EntityId e1, EntityId e2) const;
  float RelationSim(RelationId r1, RelationId r2) const;  // base relations
  float ClassSim(ClassId c1, ClassId c2) const;
  float Sim(const ElementPair& pair) const;

  // --- caches -------------------------------------------------------------
  // Recomputes representations, similarity matrices, entity weights
  // (Eq. 6), relation/class mean embeddings (Eqs. 7, 9) and calibration
  // denominators. Cost O(|E1| |E2| dim); parallelized.
  void RefreshCaches();
  bool caches_ready() const { return caches_ready_; }

  const Matrix& entity_sim() const { return ent_sim_; }
  const Matrix& relation_sim() const { return rel_sim_; }
  const Matrix& class_sim() const { return cls_sim_; }

  // Unit-row snapshots the cached ent_sim_ cells were computed against:
  // row r of unit_mapped1() is the unit-normalized mapped KG1 entity row,
  // row c of unit_repr2() the unit-normalized KG2 entity row. Exact after a
  // full refresh; under the incremental policy each row is within
  // ent_sim_refresh_threshold of the current representation. Valid after
  // RefreshCaches(). These are the rows index-based entity matching builds
  // its CandidateIndex from (reusing the snapshots the incremental refresh
  // already keeps).
  const Matrix& unit_mapped1() const { return prev_unit1_; }
  const Matrix& unit_repr2() const { return prev_unit2_; }

  // What the last ent_sim_ refresh actually recomputed.
  struct EntSimRefreshStats {
    bool incremental = false;   // false: full recompute (first call,
                                // fallback, or incremental_ent_sim off)
    size_t rows_total = 0;
    size_t rows_refreshed = 0;  // rows recomputed via row-band matmul
    size_t cols_patched = 0;    // moved columns rewritten in skipped rows
  };
  const EntSimRefreshStats& ent_sim_refresh_stats() const {
    return ent_sim_refresh_stats_;
  }

  float EntityWeight1(EntityId e1) const { return weight1_[e1]; }
  float EntityWeight2(EntityId e2) const { return weight2_[e2]; }

  // Mapped / raw representations used by the inference-power module.
  Vector MappedEntityRepr1(EntityId e1) const;
  Vector EntityRepr2(EntityId e2) const;
  Vector MappedRelationVec1(const Vector& r_vec_in_kg1_space) const;

  const Matrix& a_ent() const { return a_ent_; }
  const Matrix& a_rel() const { return a_rel_; }
  const Matrix& a_cls() const { return a_cls_; }

  // Weighted relation mean embedding rbar (Eq. 7) / class mean embedding
  // cbar (Eq. 9); valid after RefreshCaches().
  const Vector& RelationMean1(RelationId r) const { return rel_mean1_[r]; }
  const Vector& RelationMean2(RelationId r) const { return rel_mean2_[r]; }
  const Vector& ClassMean1(ClassId c) const { return cls_mean1_[c]; }
  const Vector& ClassMean2(ClassId c) const { return cls_mean2_[c]; }

  // Total weights behind the weighted means — the denominators of Eqs. (7)
  // and (9); the gradient-based inference powers (Eqs. 21-22) need them.
  double RelationMeanWeightSum1(RelationId r) const { return rel_wsum1_[r]; }
  double RelationMeanWeightSum2(RelationId r) const { return rel_wsum2_[r]; }
  double ClassMeanWeightSum1(ClassId c) const { return cls_wsum1_[c]; }
  double ClassMeanWeightSum2(ClassId c) const { return cls_wsum2_[c]; }

  // --- probability calibration (Eqs. 11-12) -------------------------------
  // min(Pr[x'|x], Pr[x|x']) under temperature-scaled softmax over the
  // cached similarity rows/columns.
  double MatchProbability(const ElementPair& pair) const;

  // --- training ------------------------------------------------------------
  // One epoch of supervised alignment training over the seed matches
  // (Eqs. 5, 8 and the class analogue). With `focal`, the focal-loss
  // variant is used (fine-tuning). Returns the mean loss.
  double TrainEpoch(const SeedAlignment& seed, Rng* rng, bool focal);

  // Semi-supervision (Eq. 10): mines element pairs with cached similarity
  // > tau, resolves one-to-one conflicts by score, and returns them with
  // their soft labels S0.
  std::vector<std::pair<ElementPair, double>> MineSemiSupervision() const;

  // One epoch over mined semi-supervised pairs: ascends S0 * S(x, x').
  double TrainSemiEpoch(
      const std::vector<std::pair<ElementPair, double>>& semi, Rng* rng);

 private:
  struct CosineGrad {
    float sim;
    Vector d_mapped;  // d sim / d (A x)
    Vector d_second;  // d sim / d y
  };
  static CosineGrad CosineWithGrad(const Vector& mapped, const Vector& y);

  // Applies one contrastive step for an entity match; returns the loss.
  double TrainEntityPair(EntityId e1, EntityId e2, Rng* rng, bool focal,
                         float lr);
  double TrainRelationPair(RelationId r1, RelationId r2, Rng* rng, bool focal,
                           float lr);
  double TrainClassPair(ClassId c1, ClassId c2, Rng* rng, bool focal,
                        float lr);

  // Gradient ascent on a single pair's similarity with weight `w` (the
  // semi-supervised objective of Eq. 10).
  void AscendPairSimilarity(const ElementPair& pair, double weight, float lr);

  void ComputeEntitySimMatrix();
  // Fills ent_sim_ = unit1 * unit2^T, either wholesale or — when the
  // incremental policy allows — only the row bands / columns whose unit
  // rows drifted beyond the configured threshold since their snapshot.
  void RefreshEntitySimFromUnits(const Matrix& unit1, const Matrix& unit2);
  void ComputeMeanEmbeddings();
  void ComputeSchemaSimMatrices();
  void ComputeCalibrationDenominators();

  // Class representation from the EC model, or empty if ec is null.
  Vector ClassRepr(int side, ClassId c) const;

  // Refreshes the per-epoch representation snapshot used only to *pick*
  // hard negatives (exact gradients are still computed on fresh
  // representations). Avoids re-encoding GNN entities per candidate.
  void RefreshMiningSnapshot();

  KgeModel* model1_;
  KgeModel* model2_;
  EntityClassModel* ec1_;
  EntityClassModel* ec2_;
  JointAlignConfig config_;

  Matrix a_ent_;  // dim x dim
  Matrix a_rel_;  // dim x dim
  Matrix a_cls_;  // class_dim x class_dim

  // Caches (valid while caches_ready_).
  bool caches_ready_ = false;
  Matrix repr1_;     // |E1| x dim
  Matrix repr2_;     // |E2| x dim
  Matrix mapped1_;   // |E1| x dim  (A_ent * repr1)
  Matrix ent_sim_;   // |E1| x |E2| cosine
  // Unit-row snapshots the cached ent_sim_ cells were computed against:
  // prev_unit1_ row r is updated only when row r is actually refreshed,
  // prev_unit2_ row c only when column c is patched (or on full refresh),
  // so per-cell drift stays bounded across rounds of skipped work.
  Matrix prev_unit1_;
  Matrix prev_unit2_;
  bool have_prev_units_ = false;
  EntSimRefreshStats ent_sim_refresh_stats_;
  Matrix rel_sim_;   // base relations only
  Matrix cls_sim_;
  std::vector<float> weight1_;  // Eq. 6
  std::vector<float> weight2_;
  std::vector<Vector> rel_mean1_;  // Eq. 7, base relations
  std::vector<Vector> rel_mean2_;
  std::vector<Vector> cls_mean1_;  // Eq. 9
  std::vector<Vector> cls_mean2_;
  std::vector<double> rel_wsum1_, rel_wsum2_;
  std::vector<double> cls_wsum1_, cls_wsum2_;
  // Stale per-epoch snapshots for hard-negative mining.
  Matrix mining_mapped1_;  // A_ent * repr1 at epoch start
  Matrix mining_repr2_;
  // Log-sum-exp denominators for Eq. 11, rows (1->2) and columns (2->1).
  std::vector<double> ent_row_lse_, ent_col_lse_;
  std::vector<double> rel_row_lse_, rel_col_lse_;
  std::vector<double> cls_row_lse_, cls_col_lse_;
};

}  // namespace daakg

#endif  // DAAKG_ALIGN_JOINT_MODEL_H_
