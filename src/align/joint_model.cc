#include "align/joint_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>

#include "align/losses.h"
#include "common/thread_pool.h"
#include "index/candidate_index.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/topk.h"

namespace daakg {
namespace {
constexpr float kNormEps = 1e-12f;
}  // namespace

JointAlignmentModel::JointAlignmentModel(KgeModel* model1, KgeModel* model2,
                                         EntityClassModel* ec1,
                                         EntityClassModel* ec2,
                                         const JointAlignConfig& config)
    : model1_(model1),
      model2_(model2),
      ec1_(ec1),
      ec2_(ec2),
      config_(config) {
  DAAKG_CHECK_EQ(model1->dim(), model2->dim());
  const size_t dim = model1->dim();
  a_ent_ = Matrix(dim, dim);
  a_rel_ = Matrix(dim, dim);
  const size_t cdim =
      ec1_ != nullptr ? ec1_->class_dim() : model1->config().class_dim;
  a_cls_ = Matrix(cdim, cdim);
}

void JointAlignmentModel::Init(Rng* rng) {
  // Identity + noise: similar embedding spaces start roughly aligned and
  // training refines the map.
  a_ent_.SetIdentity();
  a_rel_.SetIdentity();
  a_cls_.SetIdentity();
  Matrix n1(a_ent_.rows(), a_ent_.cols());
  n1.InitGaussian(rng, 0.01f);
  a_ent_ += n1;
  Matrix n2(a_rel_.rows(), a_rel_.cols());
  n2.InitGaussian(rng, 0.01f);
  a_rel_ += n2;
  Matrix n3(a_cls_.rows(), a_cls_.cols());
  n3.InitGaussian(rng, 0.01f);
  a_cls_ += n3;
}

JointAlignmentModel::CosineGrad JointAlignmentModel::CosineWithGrad(
    const Vector& mapped, const Vector& y) {
  CosineGrad out;
  const float nu = mapped.Norm() + kNormEps;
  const float nv = y.Norm() + kNormEps;
  const float dot = mapped.Dot(y);
  out.sim = dot / (nu * nv);
  out.d_mapped = y * (1.0f / (nu * nv)) - mapped * (out.sim / (nu * nu));
  out.d_second = mapped * (1.0f / (nu * nv)) - y * (out.sim / (nv * nv));
  return out;
}

float JointAlignmentModel::EntitySim(EntityId e1, EntityId e2) const {
  Vector u = a_ent_.Multiply(model1_->EntityRepr(e1));
  Vector v = model2_->EntityRepr(e2);
  return Cosine(u, v);
}

float JointAlignmentModel::RelationSim(RelationId r1, RelationId r2) const {
  Vector u = a_rel_.Multiply(model1_->RelationRepr(r1));
  Vector v = model2_->RelationRepr(r2);
  float sim = Cosine(u, v);
  if (config_.use_mean_embeddings && caches_ready_) {
    Vector mu = a_ent_.Multiply(rel_mean1_[r1]);
    sim = std::max(sim, Cosine(mu, rel_mean2_[r2]));
  }
  return sim;
}

Vector JointAlignmentModel::ClassRepr(int side, ClassId c) const {
  const EntityClassModel* ec = side == 1 ? ec1_ : ec2_;
  if (ec == nullptr) return Vector();
  return ec->ClassRepr(c);
}

float JointAlignmentModel::ClassSim(ClassId c1, ClassId c2) const {
  float sim = -1.0f;
  bool have_any = false;
  if (ec1_ != nullptr && ec2_ != nullptr) {
    Vector u = a_cls_.Multiply(ec1_->ClassRepr(c1));
    sim = std::max(sim, Cosine(u, ec2_->ClassRepr(c2)));
    have_any = true;
  }
  if ((config_.use_mean_embeddings || ec1_ == nullptr) && caches_ready_) {
    Vector mu = a_ent_.Multiply(cls_mean1_[c1]);
    sim = std::max(sim, Cosine(mu, cls_mean2_[c2]));
    have_any = true;
  }
  return have_any ? sim : 0.0f;
}

float JointAlignmentModel::Sim(const ElementPair& pair) const {
  switch (pair.kind) {
    case ElementKind::kEntity:
      return EntitySim(pair.first, pair.second);
    case ElementKind::kRelation:
      return RelationSim(pair.first, pair.second);
    case ElementKind::kClass:
      return ClassSim(pair.first, pair.second);
  }
  return 0.0f;
}

// --------------------------------------------------------------------------
// Caches
// --------------------------------------------------------------------------

void JointAlignmentModel::ComputeEntitySimMatrix() {
  const size_t n1 = kg1().num_entities();
  const size_t n2 = kg2().num_entities();
  const size_t dim = model1_->dim();
  repr1_ = Matrix(n1, dim);
  repr2_ = Matrix(n2, dim);
  ThreadPool& pool = GlobalThreadPool();
  pool.ParallelFor(n1, [this](size_t e) {
    repr1_.SetRow(e, model1_->EntityRepr(static_cast<EntityId>(e)));
  });
  pool.ParallelFor(n2, [this](size_t e) {
    repr2_.SetRow(e, model2_->EntityRepr(static_cast<EntityId>(e)));
  });

  // mapped1 = repr1 * A_ent^T, then unit-normalize both sides and take the
  // dot products (cosines).
  mapped1_ = Matrix(n1, dim);
  pool.ParallelFor(n1, [this](size_t e) {
    mapped1_.SetRow(e, a_ent_.Multiply(repr1_.Row(e)));
  });

  Matrix unit1 = mapped1_;
  Matrix unit2 = repr2_;
  auto normalize_rows = [](Matrix* m) {
    for (size_t r = 0; r < m->rows(); ++r) {
      float* row = m->RowData(r);
      double sq = 0.0;
      for (size_t c = 0; c < m->cols(); ++c) {
        sq += static_cast<double>(row[c]) * row[c];
      }
      const float inv =
          sq > 0.0 ? static_cast<float>(1.0 / std::sqrt(sq)) : 0.0f;
      for (size_t c = 0; c < m->cols(); ++c) row[c] *= inv;
    }
  };
  normalize_rows(&unit1);
  normalize_rows(&unit2);

  // Unit rows make the blocked A * B^T exactly the cosine matrix.
  RefreshEntitySimFromUnits(unit1, unit2);

  // Entity weights (Eq. 6): best similarity in the other KG. Computed from
  // the (possibly incrementally refreshed) cache; staleness is bounded by
  // the refresh threshold.
  weight1_.assign(n1, -1.0f);
  weight2_.assign(n2, -1.0f);
  for (size_t r = 0; r < n1; ++r) {
    const float* row = ent_sim_.RowData(r);
    for (size_t c = 0; c < n2; ++c) {
      weight1_[r] = std::max(weight1_[r], row[c]);
      weight2_[c] = std::max(weight2_[c], row[c]);
    }
  }
  // Clamp to [0, 1]: a best-match cosine below zero means "surely dangling".
  for (auto& w : weight1_) w = std::max(w, 0.0f);
  for (auto& w : weight2_) w = std::max(w, 0.0f);
}

void JointAlignmentModel::RefreshEntitySimFromUnits(const Matrix& unit1,
                                                    const Matrix& unit2) {
  static obs::Counter* full_refreshes = obs::GlobalMetrics().GetCounter(
      "daakg.align.ent_sim_full_refreshes");
  static obs::Counter* incr_refreshes = obs::GlobalMetrics().GetCounter(
      "daakg.align.ent_sim_incremental_refreshes");
  static obs::Counter* rows_refreshed_total = obs::GlobalMetrics().GetCounter(
      "daakg.align.ent_sim_rows_refreshed");
  static obs::Counter* rows_skipped_total = obs::GlobalMetrics().GetCounter(
      "daakg.align.ent_sim_rows_skipped");
  static obs::Counter* cols_patched_total = obs::GlobalMetrics().GetCounter(
      "daakg.align.ent_sim_cols_patched");
  static obs::Gauge* refresh_fraction = obs::GlobalMetrics().GetGauge(
      "daakg.align.ent_sim_refresh_fraction");

  const size_t n1 = unit1.rows();
  const size_t n2 = unit2.rows();
  const size_t dim = unit1.cols();
  ent_sim_refresh_stats_ = {};
  ent_sim_refresh_stats_.rows_total = n1;

  const bool can_incremental =
      config_.incremental_ent_sim && have_prev_units_ &&
      prev_unit1_.rows() == n1 && prev_unit2_.rows() == n2 &&
      prev_unit1_.cols() == dim && prev_unit2_.cols() == dim &&
      ent_sim_.rows() == n1 && ent_sim_.cols() == n2;
  if (can_incremental) {
    const float thr = std::max(config_.ent_sim_refresh_threshold, 0.0f);
    const double thr_sq = static_cast<double>(thr) * thr;
    // Drift of each unit row against the snapshot it was last computed
    // with. Rows (and columns) that stayed within the threshold since
    // their snapshot keep their cached cells; every kept cell is then
    // within 4 * threshold of the exact cosine (each side's current and
    // last-written rows are both within threshold of the shared snapshot,
    // and all rows are unit-norm).
    std::vector<char> row_moved(n1, 0);
    std::vector<char> col_moved(n2, 0);
    ThreadPool& pool = GlobalThreadPool();
    auto moved = [thr_sq, dim](const Matrix& now, const Matrix& prev,
                               size_t r) -> char {
      const float* a = now.RowData(r);
      const float* b = prev.RowData(r);
      double acc = 0.0;
      for (size_t i = 0; i < dim; ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        acc += d * d;
      }
      return acc > thr_sq;
    };
    pool.ParallelFor(n1, [&](size_t r) {
      row_moved[r] = moved(unit1, prev_unit1_, r);
    });
    pool.ParallelFor(n2, [&](size_t c) {
      col_moved[c] = moved(unit2, prev_unit2_, c);
    });

    const size_t band = std::max<size_t>(1, config_.ent_sim_band_rows);
    const size_t num_bands = (n1 + band - 1) / band;
    std::vector<char> band_dirty(num_bands, 0);
    size_t rows_to_refresh = 0;
    for (size_t bi = 0; bi < num_bands; ++bi) {
      const size_t begin = bi * band;
      const size_t end = std::min(n1, begin + band);
      for (size_t r = begin; r < end; ++r) {
        if (row_moved[r]) {
          band_dirty[bi] = 1;
          break;
        }
      }
      if (band_dirty[bi]) rows_to_refresh += end - begin;
    }
    size_t moved_cols = 0;
    for (size_t c = 0; c < n2; ++c) moved_cols += col_moved[c] != 0;

    const double frac = std::clamp(
        static_cast<double>(config_.ent_sim_full_refresh_fraction), 0.0, 1.0);
    if (static_cast<double>(rows_to_refresh) <= frac * static_cast<double>(n1) &&
        static_cast<double>(moved_cols) <= frac * static_cast<double>(n2)) {
      // Recompute contiguous runs of dirty bands through the row-range
      // kernel; snapshot exactly the rows that were rewritten.
      obs::TraceSpan band_span("align.ent_sim_band_refresh", "align");
      band_span.AddArg("rows", static_cast<double>(rows_to_refresh));
      band_span.AddArg("cols_patched", static_cast<double>(moved_cols));
      for (size_t bi = 0; bi < num_bands;) {
        if (!band_dirty[bi]) {
          ++bi;
          continue;
        }
        size_t bj = bi;
        while (bj < num_bands && band_dirty[bj]) ++bj;
        const size_t begin = bi * band;
        const size_t end = std::min(n1, bj * band);
        BlockedMatMulNTRows(unit1, unit2, begin, end, &ent_sim_);
        for (size_t r = begin; r < end; ++r) {
          std::copy_n(unit1.RowData(r), dim, prev_unit1_.RowData(r));
        }
        bi = bj;
      }
      // Patch moved KG2 columns in the rows that kept their band, through
      // the candidate index's exact-scoring primitive: an ExactIndex over
      // unit2 scores exactly the requested rows with the dispatched dot,
      // which is bitwise identical to the band kernel's cells within a
      // backend, so patched and band-refreshed cells agree exactly.
      if (moved_cols > 0) {
        obs::TraceSpan patch_span("align.ent_sim_col_patch", "align");
        patch_span.AddArg("cols", static_cast<double>(moved_cols));
        std::vector<uint32_t> patch_cols;
        patch_cols.reserve(moved_cols);
        for (size_t c = 0; c < n2; ++c) {
          if (col_moved[c]) patch_cols.push_back(static_cast<uint32_t>(c));
        }
        CandidateIndexConfig patch_cfg;
        patch_cfg.backend = IndexChoice::kExact;
        auto col_index = CandidateIndex::Build(unit2, patch_cfg);
        DAAKG_CHECK(col_index.ok()) << col_index.status();
        const CandidateIndex& index = **col_index;
        pool.ParallelForShards(n1, [&](size_t /*shard*/, size_t begin,
                                       size_t end) {
          std::vector<float> scores(patch_cols.size());
          for (size_t r = begin; r < end; ++r) {
            if (band_dirty[r / band]) continue;
            index.ScoreRows(unit1.RowData(r), patch_cols, scores.data());
            float* row = ent_sim_.RowData(r);
            for (size_t j = 0; j < patch_cols.size(); ++j) {
              row[patch_cols[j]] = scores[j];
            }
          }
        });
        for (uint32_t c : patch_cols) {
          std::copy_n(unit2.RowData(c), dim, prev_unit2_.RowData(c));
        }
      }
      ent_sim_refresh_stats_.incremental = true;
      ent_sim_refresh_stats_.rows_refreshed = rows_to_refresh;
      ent_sim_refresh_stats_.cols_patched = moved_cols;
      incr_refreshes->Increment();
      rows_refreshed_total->Increment(rows_to_refresh);
      rows_skipped_total->Increment(n1 - rows_to_refresh);
      cols_patched_total->Increment(moved_cols);
      refresh_fraction->Set(
          n1 > 0 ? static_cast<double>(rows_to_refresh) / n1 : 0.0);
      return;
    }
  }

  // Full refresh: first call, incremental disabled, shape change, or too
  // much movement for the incremental path to pay off. The unit snapshots
  // are stored unconditionally — unit_mapped1()/unit_repr2() consumers
  // (index-based matching at scale) need them even when the incremental
  // policy is off; have_prev_units_ still gates the incremental path.
  obs::TraceSpan full_span("align.ent_sim_full_refresh", "align");
  full_span.AddArg("rows", static_cast<double>(n1));
  BlockedMatMulNT(unit1, unit2, &ent_sim_);
  prev_unit1_ = unit1;
  prev_unit2_ = unit2;
  have_prev_units_ = config_.incremental_ent_sim;
  ent_sim_refresh_stats_.rows_refreshed = n1;
  full_refreshes->Increment();
  rows_refreshed_total->Increment(n1);
  refresh_fraction->Set(n1 > 0 ? 1.0 : 0.0);
}

void JointAlignmentModel::ComputeMeanEmbeddings() {
  const size_t dim = model1_->dim();
  auto relation_means = [dim](const KgeModel& model,
                              const std::vector<float>& weights,
                              std::vector<double>* wsums) {
    const KnowledgeGraph& kg = model.kg();
    std::vector<Vector> means(kg.num_base_relations(), Vector(dim));
    wsums->assign(kg.num_base_relations(), 0.0);
    for (size_t r = 0; r < kg.num_base_relations(); ++r) {
      const auto& pairs = kg.TripletsOf(static_cast<RelationId>(r));
      Vector acc(dim);
      double total_w = 0.0;
      for (const auto& [h, t] : pairs) {
        const float w = std::min(weights[h], weights[t]);
        if (w <= 0.0f) continue;
        acc.Axpy(w, model.LocalOptimumRelation(h, t));
        total_w += w;
      }
      if (total_w > 0.0) {
        acc *= static_cast<float>(1.0 / total_w);
      } else if (!pairs.empty()) {
        // All incident entities look dangling; fall back to the unweighted
        // mean so the vector is still informative.
        for (const auto& [h, t] : pairs) {
          acc += model.LocalOptimumRelation(h, t);
        }
        acc *= 1.0f / static_cast<float>(pairs.size());
        total_w = static_cast<double>(pairs.size());
      }
      (*wsums)[r] = total_w;
      means[r] = std::move(acc);
    }
    return means;
  };
  rel_mean1_ = relation_means(*model1_, weight1_, &rel_wsum1_);
  rel_mean2_ = relation_means(*model2_, weight2_, &rel_wsum2_);

  auto class_means = [dim](const KgeModel& model, const Matrix& reprs,
                           const std::vector<float>& weights,
                           std::vector<double>* wsums) {
    const KnowledgeGraph& kg = model.kg();
    std::vector<Vector> means(kg.num_classes(), Vector(dim));
    wsums->assign(kg.num_classes(), 0.0);
    for (size_t c = 0; c < kg.num_classes(); ++c) {
      const auto& members = kg.EntitiesOf(static_cast<ClassId>(c));
      Vector acc(dim);
      double total_w = 0.0;
      for (EntityId e : members) {
        const float w = weights[e];
        if (w <= 0.0f) continue;
        acc.Axpy(w, reprs.Row(e));
        total_w += w;
      }
      if (total_w > 0.0) {
        acc *= static_cast<float>(1.0 / total_w);
      } else if (!members.empty()) {
        for (EntityId e : members) acc += reprs.Row(e);
        acc *= 1.0f / static_cast<float>(members.size());
        total_w = static_cast<double>(members.size());
      }
      (*wsums)[c] = total_w;
      means[c] = std::move(acc);
    }
    return means;
  };
  cls_mean1_ = class_means(*model1_, repr1_, weight1_, &cls_wsum1_);
  cls_mean2_ = class_means(*model2_, repr2_, weight2_, &cls_wsum2_);
}

void JointAlignmentModel::ComputeSchemaSimMatrices() {
  const size_t m1 = kg1().num_base_relations();
  const size_t m2 = kg2().num_base_relations();
  rel_sim_ = Matrix(m1, m2);
  for (size_t r1 = 0; r1 < m1; ++r1) {
    Vector u = a_rel_.Multiply(model1_->RelationRepr(static_cast<RelationId>(r1)));
    Vector mu = a_ent_.Multiply(rel_mean1_[r1]);
    for (size_t r2 = 0; r2 < m2; ++r2) {
      float sim = Cosine(u, model2_->RelationRepr(static_cast<RelationId>(r2)));
      if (config_.use_mean_embeddings) {
        sim = std::max(sim, Cosine(mu, rel_mean2_[r2]));
      }
      rel_sim_(r1, r2) = sim;
    }
  }

  const size_t k1 = kg1().num_classes();
  const size_t k2 = kg2().num_classes();
  cls_sim_ = Matrix(k1, k2);
  for (size_t c1 = 0; c1 < k1; ++c1) {
    Vector u;
    if (ec1_ != nullptr && ec2_ != nullptr) {
      u = a_cls_.Multiply(ec1_->ClassRepr(static_cast<ClassId>(c1)));
    }
    Vector mu = a_ent_.Multiply(cls_mean1_[c1]);
    for (size_t c2 = 0; c2 < k2; ++c2) {
      float sim = -1.0f;
      if (!u.empty()) {
        sim = Cosine(u, ec2_->ClassRepr(static_cast<ClassId>(c2)));
      }
      if (config_.use_mean_embeddings || u.empty()) {
        sim = std::max(sim, Cosine(mu, cls_mean2_[c2]));
      }
      cls_sim_(c1, c2) = sim;
    }
  }
}

void JointAlignmentModel::ComputeCalibrationDenominators() {
  auto row_lse = [](const Matrix& sim, double z) {
    std::vector<double> out(sim.rows());
    GlobalThreadPool().ParallelFor(sim.rows(), [&sim, &out, z](size_t r) {
      const float* row = sim.RowData(r);
      double max_l = -1e30;
      for (size_t c = 0; c < sim.cols(); ++c) {
        max_l = std::max(max_l, static_cast<double>(row[c]) / z);
      }
      double acc = 0.0;
      for (size_t c = 0; c < sim.cols(); ++c) {
        acc += std::exp(static_cast<double>(row[c]) / z - max_l);
      }
      out[r] = max_l + std::log(acc);
    });
    return out;
  };
  auto col_lse = [](const Matrix& sim, double z) {
    std::vector<double> max_l(sim.cols(), -1e30);
    for (size_t r = 0; r < sim.rows(); ++r) {
      const float* row = sim.RowData(r);
      for (size_t c = 0; c < sim.cols(); ++c) {
        max_l[c] = std::max(max_l[c], static_cast<double>(row[c]) / z);
      }
    }
    std::vector<double> acc(sim.cols(), 0.0);
    for (size_t r = 0; r < sim.rows(); ++r) {
      const float* row = sim.RowData(r);
      for (size_t c = 0; c < sim.cols(); ++c) {
        acc[c] += std::exp(static_cast<double>(row[c]) / z - max_l[c]);
      }
    }
    std::vector<double> out(sim.cols());
    for (size_t c = 0; c < sim.cols(); ++c) out[c] = max_l[c] + std::log(acc[c]);
    return out;
  };
  ent_row_lse_ = row_lse(ent_sim_, config_.z_ent);
  ent_col_lse_ = col_lse(ent_sim_, config_.z_ent);
  rel_row_lse_ = row_lse(rel_sim_, config_.z_rel);
  rel_col_lse_ = col_lse(rel_sim_, config_.z_rel);
  cls_row_lse_ = row_lse(cls_sim_, config_.z_cls);
  cls_col_lse_ = col_lse(cls_sim_, config_.z_cls);
}

void JointAlignmentModel::RefreshCaches() {
  static obs::Histogram* refresh_timing =
      obs::GlobalMetrics().GetHistogram("daakg.align.refresh_caches_seconds");
  static obs::Counter* refresh_count =
      obs::GlobalMetrics().GetCounter("daakg.align.refresh_caches_calls");
  obs::TraceSpan span("align.refresh_caches", "align", refresh_timing);
  refresh_count->Increment();
  {
    obs::TraceSpan sub("align.entity_sim", "align");
    ComputeEntitySimMatrix();
  }
  {
    obs::TraceSpan sub("align.mean_embeddings", "align");
    ComputeMeanEmbeddings();
  }
  caches_ready_ = true;  // schema sims below may consult mean embeddings
  {
    obs::TraceSpan sub("align.schema_sims", "align");
    ComputeSchemaSimMatrices();
  }
  {
    obs::TraceSpan sub("align.calibration", "align");
    ComputeCalibrationDenominators();
  }
}

Vector JointAlignmentModel::MappedEntityRepr1(EntityId e1) const {
  return a_ent_.Multiply(model1_->EntityRepr(e1));
}

Vector JointAlignmentModel::EntityRepr2(EntityId e2) const {
  return model2_->EntityRepr(e2);
}

Vector JointAlignmentModel::MappedRelationVec1(const Vector& v) const {
  return a_rel_.Multiply(v);
}

double JointAlignmentModel::MatchProbability(const ElementPair& pair) const {
  DAAKG_CHECK(caches_ready_);
  const Matrix* sim = nullptr;
  const std::vector<double>* row_lse = nullptr;
  const std::vector<double>* col_lse = nullptr;
  double z = 1.0;
  switch (pair.kind) {
    case ElementKind::kEntity:
      sim = &ent_sim_;
      row_lse = &ent_row_lse_;
      col_lse = &ent_col_lse_;
      z = config_.z_ent;
      break;
    case ElementKind::kRelation:
      sim = &rel_sim_;
      row_lse = &rel_row_lse_;
      col_lse = &rel_col_lse_;
      z = config_.z_rel;
      break;
    case ElementKind::kClass:
      sim = &cls_sim_;
      row_lse = &cls_row_lse_;
      col_lse = &cls_col_lse_;
      z = config_.z_cls;
      break;
  }
  const double s = static_cast<double>((*sim)(pair.first, pair.second)) / z;
  const double p_fwd = std::exp(s - (*row_lse)[pair.first]);
  const double p_bwd = std::exp(s - (*col_lse)[pair.second]);
  return std::min(p_fwd, p_bwd);  // Eq. 12
}

// --------------------------------------------------------------------------
// Training
// --------------------------------------------------------------------------

double JointAlignmentModel::TrainEntityPair(EntityId e1, EntityId e2, Rng* rng,
                                            bool focal, float lr) {
  Vector x1 = model1_->EntityRepr(e1);
  Vector u = a_ent_.Multiply(x1);
  Vector v = model2_->EntityRepr(e2);
  CosineGrad pos = CosineWithGrad(u, v);

  // Negatives: corrupt either side of the match (the M~_ent of Eq. 5).
  struct Neg {
    EntityId n1;
    EntityId n2;
    CosineGrad grad;
    Vector x1;  // repr of the (possibly corrupted) KG1 side
  };
  std::vector<Neg> negs;
  std::vector<double> s_negs;
  const int candidates = std::max(1, config_.hard_negative_candidates);
  // Hard negatives are *picked* against the per-epoch mining snapshot
  // (cheap, slightly stale); gradients are then computed fresh.
  const bool snap = !mining_mapped1_.empty() && !mining_repr2_.empty();
  for (int k = 0; k < config_.num_negatives; ++k) {
    Neg neg;
    if (rng->NextBernoulli(0.5)) {
      neg.n1 = e1;
      neg.x1 = x1;
      float best_sim = -2.0f;
      EntityId best = 0;
      for (int c = 0; c < candidates; ++c) {
        EntityId cand =
            static_cast<EntityId>(rng->NextUint64(kg2().num_entities()));
        if (cand == e2) continue;
        const float s = snap ? Cosine(u, mining_repr2_.Row(cand))
                             : Cosine(u, model2_->EntityRepr(cand));
        if (s > best_sim) {
          best_sim = s;
          best = cand;
        }
      }
      neg.n2 = best;
      neg.grad = CosineWithGrad(u, model2_->EntityRepr(neg.n2));
    } else {
      neg.n2 = e2;
      float best_sim = -2.0f;
      EntityId best = 0;
      for (int c = 0; c < candidates; ++c) {
        EntityId cand =
            static_cast<EntityId>(rng->NextUint64(kg1().num_entities()));
        if (cand == e1) continue;
        const float s =
            snap ? Cosine(mining_mapped1_.Row(cand), v)
                 : Cosine(a_ent_.Multiply(model1_->EntityRepr(cand)), v);
        if (s > best_sim) {
          best_sim = s;
          best = cand;
        }
      }
      neg.n1 = best;
      neg.x1 = model1_->EntityRepr(neg.n1);
      neg.grad = CosineWithGrad(a_ent_.Multiply(neg.x1), v);
    }
    s_negs.push_back(neg.grad.sim);
    negs.push_back(std::move(neg));
  }

  ContrastiveGrad cg =
      focal ? FocalContrastive(pos.sim, s_negs, config_.loss_sharpness,
                               config_.focal_gamma)
            : SoftmaxContrastive(pos.sim, s_negs, config_.loss_sharpness);

  // Positive term.
  auto apply_entity_grads = [this, lr](EntityId a, EntityId b,
                                       const CosineGrad& g, const Vector& xa,
                                       double coef) {
    if (coef == 0.0) return;
    const float c = static_cast<float>(coef);
    // d loss / d A_ent += coef * d_mapped x_a^T.
    a_ent_.AddOuter(-lr * c, g.d_mapped, xa);
    if (config_.update_embeddings) {
      Vector gx = a_ent_.TransposeMultiply(g.d_mapped);
      gx *= c;
      model1_->BackpropEntityRepr(a, gx, lr);
      Vector gy = g.d_second * c;
      model2_->BackpropEntityRepr(b, gy, lr);
    }
  };
  apply_entity_grads(e1, e2, pos, x1, cg.d_pos);
  for (size_t j = 0; j < negs.size(); ++j) {
    apply_entity_grads(negs[j].n1, negs[j].n2, negs[j].grad, negs[j].x1,
                       cg.d_negs[j]);
  }

  // Auxiliary L2 pull on the positive match (see JointAlignConfig).
  if (config_.l2_pull_weight > 0.0f) {
    const float w = config_.l2_pull_weight;
    Vector diff = u - v;  // A x1 - x2
    // d/dA = 2 w diff x1^T; d/dx1 = 2 w A^T diff; d/dx2 = -2 w diff.
    a_ent_.AddOuter(-lr * 2.0f * w, diff, x1);
    if (config_.update_embeddings) {
      Vector gx = a_ent_.TransposeMultiply(diff);
      gx *= 2.0f * w;
      model1_->BackpropEntityRepr(e1, gx, lr);
      Vector gy = diff * (-2.0f * w);
      model2_->BackpropEntityRepr(e2, gy, lr);
    }
  }
  return cg.loss;
}

double JointAlignmentModel::TrainRelationPair(RelationId r1, RelationId r2,
                                              Rng* rng, bool focal, float lr) {
  // Subgradient through the winning branch of the max() in S(r, r'). The
  // mean-embedding branch treats the means as constants (they are rebuilt
  // from entity embeddings at the next RefreshCaches()), so only the
  // embedding branch receives parameter updates; when the mean branch wins
  // the pair still shapes A_ent via its entity constituents.
  Vector x1 = model1_->RelationRepr(r1);
  Vector u = a_rel_.Multiply(x1);
  Vector v = model2_->RelationRepr(r2);
  CosineGrad pos = CosineWithGrad(u, v);

  const size_t m2 = kg2().num_base_relations();
  const size_t m1 = kg1().num_base_relations();
  struct Neg {
    RelationId n1;
    RelationId n2;
    CosineGrad grad;
    Vector x1;
  };
  std::vector<Neg> negs;
  std::vector<double> s_negs;
  for (int k = 0; k < config_.num_negatives; ++k) {
    Neg neg;
    if (rng->NextBernoulli(0.5) || m1 < 2) {
      neg.n1 = r1;
      neg.n2 = static_cast<RelationId>(rng->NextUint64(m2));
      neg.x1 = x1;
      neg.grad = CosineWithGrad(u, model2_->RelationRepr(neg.n2));
    } else {
      neg.n1 = static_cast<RelationId>(rng->NextUint64(m1));
      neg.n2 = r2;
      neg.x1 = model1_->RelationRepr(neg.n1);
      neg.grad = CosineWithGrad(a_rel_.Multiply(neg.x1), v);
    }
    s_negs.push_back(neg.grad.sim);
    negs.push_back(std::move(neg));
  }

  ContrastiveGrad cg =
      focal ? FocalContrastive(pos.sim, s_negs, config_.loss_sharpness,
                               config_.focal_gamma)
            : SoftmaxContrastive(pos.sim, s_negs, config_.loss_sharpness);

  auto apply = [this, lr](RelationId a, RelationId b, const CosineGrad& g,
                          const Vector& xa, double coef) {
    if (coef == 0.0) return;
    const float c = static_cast<float>(coef);
    a_rel_.AddOuter(-lr * c, g.d_mapped, xa);
    if (config_.update_embeddings) {
      Vector gx = a_rel_.TransposeMultiply(g.d_mapped);
      gx *= c;
      model1_->BackpropRelationRepr(a, gx, lr);
      Vector gy = g.d_second * c;
      model2_->BackpropRelationRepr(b, gy, lr);
    }
  };
  apply(r1, r2, pos, x1, cg.d_pos);
  for (size_t j = 0; j < negs.size(); ++j) {
    apply(negs[j].n1, negs[j].n2, negs[j].grad, negs[j].x1, cg.d_negs[j]);
  }
  return cg.loss;
}

double JointAlignmentModel::TrainClassPair(ClassId c1, ClassId c2, Rng* rng,
                                           bool focal, float lr) {
  if (ec1_ == nullptr || ec2_ == nullptr) return 0.0;
  Vector x1 = ec1_->ClassRepr(c1);
  Vector u = a_cls_.Multiply(x1);
  Vector v = ec2_->ClassRepr(c2);
  CosineGrad pos = CosineWithGrad(u, v);

  const size_t k1 = kg1().num_classes();
  const size_t k2 = kg2().num_classes();
  struct Neg {
    ClassId n1;
    ClassId n2;
    CosineGrad grad;
    Vector x1;
  };
  std::vector<Neg> negs;
  std::vector<double> s_negs;
  for (int k = 0; k < config_.num_negatives; ++k) {
    Neg neg;
    if (rng->NextBernoulli(0.5) || k1 < 2) {
      neg.n1 = c1;
      neg.n2 = static_cast<ClassId>(rng->NextUint64(k2));
      neg.x1 = x1;
      neg.grad = CosineWithGrad(u, ec2_->ClassRepr(neg.n2));
    } else {
      neg.n1 = static_cast<ClassId>(rng->NextUint64(k1));
      neg.n2 = c2;
      neg.x1 = ec1_->ClassRepr(neg.n1);
      neg.grad = CosineWithGrad(a_cls_.Multiply(neg.x1), v);
    }
    s_negs.push_back(neg.grad.sim);
    negs.push_back(std::move(neg));
  }

  ContrastiveGrad cg =
      focal ? FocalContrastive(pos.sim, s_negs, config_.loss_sharpness,
                               config_.focal_gamma)
            : SoftmaxContrastive(pos.sim, s_negs, config_.loss_sharpness);

  auto apply = [this, lr](ClassId a, ClassId b, const CosineGrad& g,
                          const Vector& xa, double coef) {
    if (coef == 0.0) return;
    const float c = static_cast<float>(coef);
    a_cls_.AddOuter(-lr * c, g.d_mapped, xa);
    if (config_.update_embeddings) {
      Vector gx = a_cls_.TransposeMultiply(g.d_mapped);
      gx *= c;
      ec1_->BackpropClassRepr(a, gx, lr);
      Vector gy = g.d_second * c;
      ec2_->BackpropClassRepr(b, gy, lr);
    }
  };
  apply(c1, c2, pos, x1, cg.d_pos);
  for (size_t j = 0; j < negs.size(); ++j) {
    apply(negs[j].n1, negs[j].n2, negs[j].grad, negs[j].x1, cg.d_negs[j]);
  }
  return cg.loss;
}

void JointAlignmentModel::RefreshMiningSnapshot() {
  const size_t n1 = kg1().num_entities();
  const size_t n2 = kg2().num_entities();
  const size_t dim = model1_->dim();
  if (mining_mapped1_.rows() != n1) mining_mapped1_ = Matrix(n1, dim);
  if (mining_repr2_.rows() != n2) mining_repr2_ = Matrix(n2, dim);
  ThreadPool& pool = GlobalThreadPool();
  pool.ParallelFor(n1, [this](size_t e) {
    mining_mapped1_.SetRow(
        e, a_ent_.Multiply(model1_->EntityRepr(static_cast<EntityId>(e))));
  });
  pool.ParallelFor(n2, [this](size_t e) {
    mining_repr2_.SetRow(e, model2_->EntityRepr(static_cast<EntityId>(e)));
  });
}

double JointAlignmentModel::TrainEpoch(const SeedAlignment& seed, Rng* rng,
                                       bool focal) {
  obs::TraceSpan span("align.joint_epoch", "align");
  caches_ready_ = false;  // parameters move; cached sims go stale
  RefreshMiningSnapshot();
  double total = 0.0;
  size_t steps = 0;
  const float lr = config_.align_lr;

  std::vector<size_t> order(seed.entities.size());
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  for (size_t i : order) {
    total += TrainEntityPair(seed.entities[i].first, seed.entities[i].second,
                             rng, focal, lr);
    ++steps;
  }
  for (const auto& [r1, r2] : seed.relations) {
    total += TrainRelationPair(r1, r2, rng, focal, lr);
    ++steps;
  }
  for (const auto& [c1, c2] : seed.classes) {
    total += TrainClassPair(c1, c2, rng, focal, lr);
    ++steps;
  }
  return steps > 0 ? total / static_cast<double>(steps) : 0.0;
}

// --------------------------------------------------------------------------
// Semi-supervision (Eq. 10)
// --------------------------------------------------------------------------

std::vector<std::pair<ElementPair, double>>
JointAlignmentModel::MineSemiSupervision() const {
  DAAKG_CHECK(caches_ready_);
  std::vector<std::pair<ElementPair, double>> mined;

  auto mine_matrix = [this, &mined](const Matrix& sim, ElementKind kind) {
    // Candidates above tau, then greedy one-to-one conflict resolution
    // ("we discard the pairs with lower similarity scores").
    std::vector<std::tuple<float, uint32_t, uint32_t>> cands;
    for (size_t r = 0; r < sim.rows(); ++r) {
      const float* row = sim.RowData(r);
      for (size_t c = 0; c < sim.cols(); ++c) {
        if (row[c] > config_.tau) {
          cands.emplace_back(row[c], static_cast<uint32_t>(r),
                             static_cast<uint32_t>(c));
        }
      }
    }
    std::sort(cands.begin(), cands.end(), [](const auto& a, const auto& b) {
      return std::get<0>(a) > std::get<0>(b);
    });
    std::vector<bool> used_r(sim.rows(), false);
    std::vector<bool> used_c(sim.cols(), false);
    for (const auto& [score, r, c] : cands) {
      if (used_r[r] || used_c[c]) continue;
      used_r[r] = true;
      used_c[c] = true;
      mined.push_back({ElementPair{kind, r, c}, static_cast<double>(score)});
    }
  };
  mine_matrix(ent_sim_, ElementKind::kEntity);
  mine_matrix(rel_sim_, ElementKind::kRelation);
  mine_matrix(cls_sim_, ElementKind::kClass);
  return mined;
}

void JointAlignmentModel::AscendPairSimilarity(const ElementPair& pair,
                                               double weight, float lr) {
  // O_semi = -S0 * S(x, x'): gradient descent on it ascends S with
  // coefficient S0.
  const float coef = static_cast<float>(-weight);
  switch (pair.kind) {
    case ElementKind::kEntity: {
      Vector x1 = model1_->EntityRepr(pair.first);
      Vector u = a_ent_.Multiply(x1);
      Vector v = model2_->EntityRepr(pair.second);
      CosineGrad g = CosineWithGrad(u, v);
      a_ent_.AddOuter(-lr * coef, g.d_mapped, x1);
      if (config_.update_embeddings) {
        Vector gx = a_ent_.TransposeMultiply(g.d_mapped);
        gx *= coef;
        model1_->BackpropEntityRepr(pair.first, gx, lr);
        Vector gy = g.d_second * coef;
        model2_->BackpropEntityRepr(pair.second, gy, lr);
      }
      break;
    }
    case ElementKind::kRelation: {
      Vector x1 = model1_->RelationRepr(pair.first);
      Vector u = a_rel_.Multiply(x1);
      Vector v = model2_->RelationRepr(pair.second);
      CosineGrad g = CosineWithGrad(u, v);
      a_rel_.AddOuter(-lr * coef, g.d_mapped, x1);
      if (config_.update_embeddings) {
        Vector gx = a_rel_.TransposeMultiply(g.d_mapped);
        gx *= coef;
        model1_->BackpropRelationRepr(pair.first, gx, lr);
        Vector gy = g.d_second * coef;
        model2_->BackpropRelationRepr(pair.second, gy, lr);
      }
      break;
    }
    case ElementKind::kClass: {
      if (ec1_ == nullptr || ec2_ == nullptr) return;
      Vector x1 = ec1_->ClassRepr(pair.first);
      Vector u = a_cls_.Multiply(x1);
      Vector v = ec2_->ClassRepr(pair.second);
      CosineGrad g = CosineWithGrad(u, v);
      a_cls_.AddOuter(-lr * coef, g.d_mapped, x1);
      if (config_.update_embeddings) {
        Vector gx = a_cls_.TransposeMultiply(g.d_mapped);
        gx *= coef;
        ec1_->BackpropClassRepr(pair.first, gx, lr);
        Vector gy = g.d_second * coef;
        ec2_->BackpropClassRepr(pair.second, gy, lr);
      }
      break;
    }
  }
}

double JointAlignmentModel::TrainSemiEpoch(
    const std::vector<std::pair<ElementPair, double>>& semi, Rng* rng) {
  caches_ready_ = false;
  std::vector<size_t> order(semi.size());
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  const float lr =
      config_.align_lr * static_cast<float>(config_.semi_lr_scale);
  double total = 0.0;
  for (size_t i : order) {
    const auto& [pair, s0] = semi[i];
    AscendPairSimilarity(pair, s0, lr);
    total += -s0 * Sim(pair);
  }
  return semi.empty() ? 0.0 : total / static_cast<double>(semi.size());
}

}  // namespace daakg
