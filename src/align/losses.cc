#include "align/losses.h"

#include <algorithm>
#include <cmath>

namespace daakg {
namespace {
constexpr double kTinyProb = 1e-12;
}  // namespace

ContrastiveGrad SoftmaxContrastive(double s_pos,
                                   const std::vector<double>& s_negs,
                                   double sharpness) {
  ContrastiveGrad out;
  out.d_negs.resize(s_negs.size());

  // Stable softmax over {g*s_pos} u {g*s_neg_j}.
  double max_logit = sharpness * s_pos;
  for (double s : s_negs) max_logit = std::max(max_logit, sharpness * s);
  const double e_pos = std::exp(sharpness * s_pos - max_logit);
  double z = e_pos;
  std::vector<double> e_negs(s_negs.size());
  for (size_t j = 0; j < s_negs.size(); ++j) {
    e_negs[j] = std::exp(sharpness * s_negs[j] - max_logit);
    z += e_negs[j];
  }
  const double p = std::max(e_pos / z, kTinyProb);
  out.p_pos = p;
  out.loss = -std::log(p);
  // dL/ds_pos = g (p - 1); dL/ds_neg_j = g p_j.
  out.d_pos = sharpness * (p - 1.0);
  for (size_t j = 0; j < s_negs.size(); ++j) {
    out.d_negs[j] = sharpness * (e_negs[j] / z);
  }
  return out;
}

ContrastiveGrad FocalContrastive(double s_pos,
                                 const std::vector<double>& s_negs,
                                 double sharpness, double gamma) {
  ContrastiveGrad base = SoftmaxContrastive(s_pos, s_negs, sharpness);
  const double p = base.p_pos;
  const double one_minus_p = std::max(1.0 - p, 0.0);
  const double focal_weight = std::pow(one_minus_p, gamma);

  ContrastiveGrad out;
  out.p_pos = p;
  out.loss = focal_weight * base.loss;

  // L(p) = (1-p)^gamma * (-log p)
  // dL/dp = -(1-p)^gamma / p + gamma (1-p)^(gamma-1) log p
  const double log_p = std::log(std::max(p, kTinyProb));
  double dL_dp = -focal_weight / std::max(p, kTinyProb);
  if (one_minus_p > 0.0) {
    dL_dp += gamma * std::pow(one_minus_p, gamma - 1.0) * log_p;
  }
  // dp/ds_pos = g p (1 - p); dp/ds_neg_j = -g p p_j, where p_j can be
  // recovered from the base gradient: base.d_negs[j] = g p_j.
  const double dp_dspos = sharpness * p * one_minus_p;
  out.d_pos = dL_dp * dp_dspos;
  out.d_negs.resize(s_negs.size());
  for (size_t j = 0; j < s_negs.size(); ++j) {
    const double p_j = base.d_negs[j] / sharpness;
    out.d_negs[j] = dL_dp * (-sharpness * p * p_j);
  }
  return out;
}

}  // namespace daakg
