#ifndef DAAKG_ALIGN_METRICS_H_
#define DAAKG_ALIGN_METRICS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "index/candidate_index.h"
#include "tensor/matrix.h"
#include "tensor/topk.h"

namespace daakg {

// Evaluation metrics of Sect. 7.1: H@k / MRR (ranking) and
// precision / recall / F1 under the greedy one-to-one matching of [34].

struct RankingMetrics {
  double hits_at_1 = 0.0;
  double hits_at_10 = 0.0;
  double mrr = 0.0;
  size_t num_queries = 0;
};

struct PrfMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t num_predicted = 0;
  size_t num_correct = 0;
};

// `sim` is a full |X1| x |X2| similarity matrix; `test_pairs` hold gold
// (first, second) index pairs. For each pair, the rank of `second` among
// all columns of row `first` is measured (1-based, optimistic tie break
// disabled: ties count as worse rank).
RankingMetrics EvaluateRanking(
    const Matrix& sim,
    const std::vector<std::pair<uint32_t, uint32_t>>& test_pairs);

// Streaming variant: computes the same metrics directly from the embedding
// matrices `a` (|X1| x dim) and `b` (|X2| x dim) without materializing the
// |X1| x |X2| similarity matrix — the query path runs through an ExactIndex
// over `b` (pinned exact regardless of DAAKG_INDEX, preserving this
// signature's contract). Bit-identical to EvaluateRanking on
// BlockedMatMulNT(a, b) under the same options: tile cells and the target
// cell come from the same dispatched kernels, and per-query ranks are
// folded in the original test-pair order. Peak extra memory is
// O(|X2| * dim + unique_rows * dim), not O(|X1| * |X2|).
RankingMetrics EvaluateRankingStreaming(
    const Matrix& a, const Matrix& b,
    const std::vector<std::pair<uint32_t, uint32_t>>& test_pairs,
    const BlockedKernelOptions& options = {});

// Index-based variant: ranks each test pair's target among the candidate
// scores the index produces for query row `first` of `a`. With an exact
// backend this equals the materialized path bit-for-bit; with an IVF
// backend only probed rows can outrank the target, so ranks are optimistic
// in proportion to the index's recall. `index.base()` must hold the rows of
// `b` (pairs' `second` indexes into it).
RankingMetrics EvaluateRankingStreaming(
    const CandidateIndex& index, const Matrix& a,
    const std::vector<std::pair<uint32_t, uint32_t>>& test_pairs);

// Greedy one-to-one matching: repeatedly takes the highest-similarity
// unused (row, col) pair with similarity >= threshold, then scores the
// predicted set against `gold_pairs` restricted to rows/cols that appear in
// gold (so dangling elements don't inflate the denominator is NOT done --
// the paper counts all predictions; we follow the paper).
PrfMetrics EvaluateGreedyMatching(
    const Matrix& sim,
    const std::vector<std::pair<uint32_t, uint32_t>>& gold_pairs,
    float threshold);

// Convenience: the greedy one-to-one predicted pairs themselves.
std::vector<std::pair<uint32_t, uint32_t>> GreedyOneToOneMatches(
    const Matrix& sim, float threshold);

// Index-based variant: candidate cells come from index.QueryAbove(queries,
// threshold) instead of a materialized matrix. With an exact backend the
// cell sequence matches the matrix scan's row-major order bit-for-bit, so
// the result is identical to GreedyOneToOneMatches(queries * base^T, thr);
// an IVF backend restricts candidates to probed lists (scores of surviving
// cells stay exact).
std::vector<std::pair<uint32_t, uint32_t>> GreedyOneToOneMatches(
    const CandidateIndex& index, const Matrix& queries, float threshold);

}  // namespace daakg

#endif  // DAAKG_ALIGN_METRICS_H_
