#ifndef DAAKG_ALIGN_LOSSES_H_
#define DAAKG_ALIGN_LOSSES_H_

#include <vector>

namespace daakg {

// Gradient helpers for the alignment losses (Eqs. 5, 8 and the focal-loss
// fine-tuning variant of Sect. 4.2). Pure functions of similarity scores so
// they are unit-testable against finite differences.

// Result of one softmax-contrastive term: the loss value and dL/ds for the
// positive score and each negative score.
struct ContrastiveGrad {
  double loss = 0.0;
  double d_pos = 0.0;
  std::vector<double> d_negs;
  double p_pos = 0.0;  // model probability of the positive
};

// Softmax cross-entropy of the positive similarity against negatives:
//   p = exp(g s_pos) / (exp(g s_pos) + sum_j exp(g s_neg_j)),
//   L = -log p,
// where g (`sharpness`) scales cosine similarities into logits. This is the
// softmax(S(e,e'), S(e'',e''')) of Eq. (5).
ContrastiveGrad SoftmaxContrastive(double s_pos,
                                   const std::vector<double>& s_negs,
                                   double sharpness);

// Focal variant used during active-learning fine-tuning (Sect. 4.2):
//   L = (1 - p)^gamma * (-log p),   gamma = 2 in the paper,
// which up-weights pairs the model currently misclassifies.
ContrastiveGrad FocalContrastive(double s_pos,
                                 const std::vector<double>& s_negs,
                                 double sharpness, double gamma);

}  // namespace daakg

#endif  // DAAKG_ALIGN_LOSSES_H_
