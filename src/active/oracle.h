#ifndef DAAKG_ACTIVE_ORACLE_H_
#define DAAKG_ACTIVE_ORACLE_H_

#include "kg/alignment_task.h"
#include "kg/ids.h"

namespace daakg {

// The human annotator abstraction of Sect. 2.1: returns the true label of
// any element pair. Active-learning evaluation follows the standard
// noise-free oracle assumption.
class Oracle {
 public:
  virtual ~Oracle() = default;

  // True iff the pair is a match (y*(q) = 1).
  virtual bool Label(const ElementPair& pair) = 0;

  // Number of Label() calls so far (the consumed labeling budget).
  size_t queries() const { return queries_; }

 protected:
  size_t queries_ = 0;
};

// Oracle answering from the gold alignment of the task.
class GoldOracle : public Oracle {
 public:
  explicit GoldOracle(const AlignmentTask* task) : task_(task) {}

  bool Label(const ElementPair& pair) override {
    ++queries_;
    return task_->IsGoldMatch(pair);
  }

 private:
  const AlignmentTask* task_;
};

}  // namespace daakg

#endif  // DAAKG_ACTIVE_ORACLE_H_
