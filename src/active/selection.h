#ifndef DAAKG_ACTIVE_SELECTION_H_
#define DAAKG_ACTIVE_SELECTION_H_

#include <cstdint>
#include <vector>

#include "infer/inference_power.h"

namespace daakg {

struct SelectionConfig {
  size_t batch_size = 100;  // B
  double rho = 0.9;         // Algorithm 2 partition-quality threshold
};

// Shared context for one batch-selection call.
struct SelectionContext {
  const InferenceEngine* engine;          // edge costs precomputed
  const JointAlignmentModel* model;       // caches ready
  const std::vector<bool>* labeled;       // per pool node: already labeled?
};

// Result of a batch selection, with bookkeeping for the Fig. 7 comparison.
struct SelectionResult {
  std::vector<uint32_t> selected;  // pool node indexes, selection order
  // The algorithm's own estimate of the expected overall inference power of
  // the selected set (Eq. 28 objective).
  double objective = 0.0;
  double seconds = 0.0;
  // Algorithm 2 only: number of groups the pool was partitioned into.
  size_t num_groups = 0;
};

// Algorithm 1: greedy expected-inference-power maximization with lazy
// (priority-queue) gain re-evaluation, valid because the objective is
// increasing sub-modular (Theorem 6.1).
//
// The expectation over oracle outcomes is tracked incrementally: after
// selecting q, the running expected power M(q') of every pair q' in q's
// power row is raised by Pr[match(q)] * |I(q'|q) - M(q')|_+, which is the
// gain expression derived in Appendix A.
SelectionResult GreedySelect(const SelectionContext& ctx,
                             const SelectionConfig& config);

// Algorithm 2: graph-partitioning-based selection. Splits the pool into
// groups until every pair keeps at least a rho fraction of its 1-hop
// inference power across group boundaries, estimates power rows at group
// granularity (mu-hop search over the coarse graph), and runs the greedy
// loop on the estimates. Approximation ratio rho^mu (1 - 1/e)
// (Theorem 6.2).
SelectionResult PartitionSelect(const SelectionContext& ctx,
                                const SelectionConfig& config);

// Exact expected overall inference power of an already-chosen set, computed
// with full PowerFrom rows. Used to report Fig. 7's "relative inference
// power" of Algorithm 2 against Algorithm 1.
double EvaluateSelectionObjective(const SelectionContext& ctx,
                                  const std::vector<uint32_t>& selected);

}  // namespace daakg

#endif  // DAAKG_ACTIVE_SELECTION_H_
