#ifndef DAAKG_ACTIVE_POOL_H_
#define DAAKG_ACTIVE_POOL_H_

#include <memory>
#include <vector>

#include "align/joint_model.h"
#include "index/candidate_index.h"
#include "kg/alignment_task.h"
#include "kg/ids.h"
#include "tensor/matrix.h"

namespace daakg {

struct PoolConfig {
  // Top-N nearest neighbors by schema signature per entity (Sect. 6.1;
  // paper uses N = 1000 at 100k entities — scale accordingly).
  size_t top_n = 25;
  // Candidate index backing the mutual top-N search over schema
  // signatures. The default (kAuto, i.e. exact unless DAAKG_INDEX=ivf)
  // reproduces the pre-index blocked pass bit-for-bit; IVF trades bounded
  // recall for sub-quadratic scaling (bench/fig6_pool_recall measures the
  // tradeoff).
  CandidateIndexConfig index;
};

// Element pair pool generation (Sect. 6.1).
//
// Each entity gets a *schema signature* (Eq. 24): the concatenation of the
// weighted mean of the mean embeddings of its incident relations and the
// weighted mean of the mean embeddings of its classes, where the weights
// (Eq. 25) down-weight dangling relations/classes. The entity-pair part of
// the pool keeps (e, e') iff e' is among the top-N signature neighbors of e
// AND e is among the top-N of e'; all relation and class pairs are kept.
//
// Signatures are computed and unit-normalized once per generator: the KG2
// side lives inside a CandidateIndex (normalization hoisted into the index
// build), the KG1 side in a cached query matrix. Repeated Generate() calls
// — e.g. a top-N sweep — reuse both instead of recomputing the signatures.
class PoolGenerator {
 public:
  // `model` must have fresh caches (mean embeddings, schema similarities).
  PoolGenerator(const AlignmentTask* task, const JointAlignmentModel* model,
                const PoolConfig& config);

  // Schema signature of entity `e` on the given side (exposed for tests).
  Vector Signature(int side, EntityId e) const;

  // Generates the pool. Entity pairs first, then relation pairs, then class
  // pairs (relation pairs cover base relations only).
  std::vector<ElementPair> Generate() const;
  // Same, with an explicit top-N cut-off (sweeps reuse the cached index).
  std::vector<ElementPair> Generate(size_t top_n) const;

  // The signature index over KG2 (built on first use; exposed for benches
  // and tests).
  const CandidateIndex& index() const;

  // Recall of gold entity matches inside the generated pool — the Fig. 6
  // measurement.
  double EntityPairRecall(const std::vector<ElementPair>& pool) const;

 private:
  // Builds the KG1 query matrix and the KG2 signature index once.
  void EnsureIndex() const;

  const AlignmentTask* task_;
  const JointAlignmentModel* model_;
  PoolConfig config_;
  // Lazy caches (PoolGenerator is not used concurrently).
  mutable Matrix queries_;  // unit KG1 signatures
  mutable std::unique_ptr<CandidateIndex> index_;  // over unit KG2 signatures
};

}  // namespace daakg

#endif  // DAAKG_ACTIVE_POOL_H_
