#ifndef DAAKG_ACTIVE_POOL_H_
#define DAAKG_ACTIVE_POOL_H_

#include <vector>

#include "align/joint_model.h"
#include "kg/alignment_task.h"
#include "kg/ids.h"
#include "tensor/matrix.h"

namespace daakg {

struct PoolConfig {
  // Top-N nearest neighbors by schema signature per entity (Sect. 6.1;
  // paper uses N = 1000 at 100k entities — scale accordingly).
  size_t top_n = 25;
};

// Element pair pool generation (Sect. 6.1).
//
// Each entity gets a *schema signature* (Eq. 24): the concatenation of the
// weighted mean of the mean embeddings of its incident relations and the
// weighted mean of the mean embeddings of its classes, where the weights
// (Eq. 25) down-weight dangling relations/classes. The entity-pair part of
// the pool keeps (e, e') iff e' is among the top-N signature neighbors of e
// AND e is among the top-N of e'; all relation and class pairs are kept.
class PoolGenerator {
 public:
  // `model` must have fresh caches (mean embeddings, schema similarities).
  PoolGenerator(const AlignmentTask* task, const JointAlignmentModel* model,
                const PoolConfig& config);

  // Schema signature of entity `e` on the given side (exposed for tests).
  Vector Signature(int side, EntityId e) const;

  // Generates the pool. Entity pairs first, then relation pairs, then class
  // pairs (relation pairs cover base relations only).
  std::vector<ElementPair> Generate() const;

  // Recall of gold entity matches inside the generated pool — the Fig. 6
  // measurement.
  double EntityPairRecall(const std::vector<ElementPair>& pool) const;

 private:
  const AlignmentTask* task_;
  const JointAlignmentModel* model_;
  PoolConfig config_;
};

}  // namespace daakg

#endif  // DAAKG_ACTIVE_POOL_H_
