#include "active/selection.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace daakg {
namespace {

// Shared per-batch bookkeeping of both selection algorithms.
void RecordSelection(const SelectionResult& result) {
  static obs::Histogram* timing =
      obs::GlobalMetrics().GetHistogram("daakg.active.selection_seconds");
  static obs::Counter* selected =
      obs::GlobalMetrics().GetCounter("daakg.active.selected_pairs");
  timing->Record(result.seconds);
  selected->Increment(result.selected.size());
}

constexpr float kLazyEps = 1e-9f;
constexpr size_t kMaxSplits = 512;  // safety cap for the splitting loop

// A sparse estimated power row at group granularity: reaching `count` pool
// pairs of group `group` with inference power `power` each.
struct GroupEntry {
  uint32_t group;
  float power;
  uint32_t count;
};

// Generic lazy greedy over per-candidate gain rows; rows are re-evaluated
// against the shared expected-power accumulator `M` keyed by `key_of` the
// row entries.
template <typename Entry>
SelectionResult LazyGreedy(
    const SelectionContext& ctx, const SelectionConfig& config,
    const std::vector<std::vector<Entry>>& rows,
    const std::vector<double>& prob,
    const std::function<double(const std::vector<Entry>&,
                               const std::vector<float>&)>& gain_fn,
    const std::function<void(const std::vector<Entry>&, double,
                             std::vector<float>*)>& commit_fn,
    size_t m_size) {
  SelectionResult result;
  std::vector<float> m(m_size, 0.0f);

  using Item = std::pair<double, uint32_t>;
  std::priority_queue<Item> queue;
  for (uint32_t q = 0; q < rows.size(); ++q) {
    if ((*ctx.labeled)[q]) continue;
    if (rows[q].empty()) continue;
    queue.emplace(prob[q] * gain_fn(rows[q], m), q);
  }

  std::vector<bool> taken(rows.size(), false);
  while (result.selected.size() < config.batch_size && !queue.empty()) {
    auto [g, q] = queue.top();
    queue.pop();
    if (taken[q]) continue;
    const double fresh = prob[q] * gain_fn(rows[q], m);
    if (!queue.empty() && fresh + kLazyEps < queue.top().first) {
      queue.emplace(fresh, q);
      continue;
    }
    taken[q] = true;
    result.selected.push_back(q);
    result.objective += fresh;
    commit_fn(rows[q], prob[q], &m);
  }
  return result;
}

}  // namespace

SelectionResult GreedySelect(const SelectionContext& ctx,
                             const SelectionConfig& config) {
  // kAlways: result.seconds (and through it the selection histogram) needs
  // the elapsed time even when tracing is off; Finish() supplies the same
  // duration the trace event records.
  obs::TraceSpan span("active.greedy_select", "active", nullptr,
                      obs::TimingMode::kAlways);
  span.AddArg("batch_size", static_cast<double>(config.batch_size));
  const size_t n = ctx.engine->graph().num_nodes();

  // Line 2 of Algorithm 1: power rows for every candidate (the brute-force
  // step). PowerFrom is read-only once edge costs are precomputed, so the
  // rows can be computed in parallel.
  std::vector<PowerRow> rows(n);
  std::vector<double> prob(n, 0.0);
  GlobalThreadPool().ParallelFor(n, [&](size_t q) {
    if ((*ctx.labeled)[q]) return;
    rows[q] = ctx.engine->PowerFrom(static_cast<uint32_t>(q));
    prob[q] =
        ctx.model->MatchProbability(ctx.engine->graph().pool()[q]);
  });

  auto gain = [](const PowerRow& row, const std::vector<float>& m) {
    double g = 0.0;
    for (const auto& [q2, p] : row) g += std::max(0.0f, p - m[q2]);
    return g;
  };
  auto commit = [](const PowerRow& row, double pr, std::vector<float>* m) {
    for (const auto& [q2, p] : row) {
      (*m)[q2] += static_cast<float>(pr) * std::max(0.0f, p - (*m)[q2]);
    }
  };
  SelectionResult result = LazyGreedy<std::pair<uint32_t, float>>(
      ctx, config, rows, prob, gain, commit, n);
  result.seconds = span.Finish();
  RecordSelection(result);
  return result;
}

SelectionResult PartitionSelect(const SelectionContext& ctx,
                                const SelectionConfig& config) {
  obs::TraceSpan span("active.partition_select", "active", nullptr,
                      obs::TimingMode::kAlways);
  span.AddArg("batch_size", static_cast<double>(config.batch_size));
  const AlignmentGraph& graph = ctx.engine->graph();
  const size_t n = graph.num_nodes();
  const int mu = ctx.engine->config().max_hops;

  // --- 1-hop powers for every entity pair --------------------------------
  std::vector<std::vector<InferenceEngine::OneHopPower>> onehop(n);
  GlobalThreadPool().ParallelFor(n, [&](size_t q) {
    onehop[q] = ctx.engine->OneHopPowers(static_cast<uint32_t>(q));
  });

  // --- partition splitting (Lines 2-14) -----------------------------------
  // Entity pairs start in group 0; every schema pair is its own singleton
  // group (they have no outgoing relational edges to split on).
  std::vector<uint32_t> group_of(n, 0);
  uint32_t num_groups = 1;
  std::vector<std::vector<uint32_t>> members(1);
  for (uint32_t q = 0; q < n; ++q) {
    if (graph.pool()[q].kind == ElementKind::kEntity) {
      group_of[q] = 0;
      members[0].push_back(q);
    } else {
      group_of[q] = num_groups;
      members.push_back({q});
      ++num_groups;
    }
  }

  std::vector<bool> frozen(members.size(), false);
  bool flag = true;
  size_t splits = 0;  // schema singletons inflate num_groups; cap *splits*
  while (flag && splits < kMaxSplits) {
    flag = false;
    for (uint32_t i = 0; i < num_groups; ++i) {
      if (frozen[i] || members[i].size() < 2) continue;
      // Cross-boundary power fraction of the group. The paper's Line 9
      // takes the minimum over members; a single member with only
      // intra-group edges then forces splitting to exhaustion for every
      // rho, so we use the aggregate fraction (total outer power over
      // total power), which preserves the intent -- split groups that trap
      // too much inference power inside -- while letting rho control the
      // granularity (see DESIGN.md).
      double inner = 0.0;
      double outer = 0.0;
      for (uint32_t q : members[i]) {
        for (const auto& hp : onehop[q]) {
          if (group_of[hp.target] == i) {
            inner += hp.power;
          } else {
            outer += hp.power;
          }
        }
      }
      if (inner + outer <= 0.0 || outer / (inner + outer) >= config.rho) {
        continue;
      }

      // Split by the relation pair labeling the most intra-group edges.
      std::unordered_map<uint32_t, size_t> label_count;
      for (uint32_t q : members[i]) {
        for (const auto& hp : onehop[q]) {
          if (group_of[hp.target] == i) ++label_count[hp.label];
        }
      }
      uint32_t best_label = AlignmentGraph::kTypeLabel;
      size_t best_count = 0;
      for (const auto& [label, count] : label_count) {
        if (count > best_count) {
          best_count = count;
          best_label = label;
        }
      }
      std::vector<uint32_t> moved;
      std::vector<uint32_t> kept;
      for (uint32_t q : members[i]) {
        bool has_label_edge = false;
        for (const auto& hp : onehop[q]) {
          if (hp.label == best_label && group_of[hp.target] == i) {
            has_label_edge = true;
            break;
          }
        }
        (has_label_edge ? moved : kept).push_back(q);
      }
      if (moved.empty() || kept.empty()) {
        frozen[i] = true;  // degenerate split: stop refining this group
        continue;
      }
      members[i] = std::move(kept);
      for (uint32_t q : moved) group_of[q] = num_groups;
      members.push_back(std::move(moved));
      frozen.push_back(false);
      ++num_groups;
      ++splits;
      flag = true;
      break;  // restart the scan (Line 14)
    }
  }

  // Unlabeled pool pairs per group: the |P_j| factor of the estimate.
  std::vector<uint32_t> group_size(num_groups, 0);
  for (uint32_t q = 0; q < n; ++q) {
    if (!(*ctx.labeled)[q]) ++group_size[group_of[q]];
  }

  // --- coarse graph: min edge cost between groups --------------------------
  auto key = [](uint32_t a, uint32_t b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  std::unordered_map<uint64_t, float> coarse_cost;
  for (uint32_t q = 0; q < n; ++q) {
    const uint32_t ga = group_of[q];
    for (const auto& hp : onehop[q]) {
      const uint32_t gb = group_of[hp.target];
      if (ga == gb) continue;  // self-loops are the approximation loss
      const float cost = 1.0f / hp.power - 1.0f;
      auto [it, inserted] = coarse_cost.emplace(key(ga, gb), cost);
      if (!inserted) it->second = std::min(it->second, cost);
    }
  }
  std::vector<std::vector<std::pair<uint32_t, float>>> coarse_adj(num_groups);
  for (const auto& [k, cost] : coarse_cost) {
    coarse_adj[static_cast<uint32_t>(k >> 32)].emplace_back(
        static_cast<uint32_t>(k & 0xFFFFFFFFu), cost);
  }

  const float power_floor =
      static_cast<float>(ctx.engine->config().power_floor);
  const float max_cost = 1.0f / power_floor - 1.0f + 1e-6f;

  // --- estimated power rows (Line 15) --------------------------------------
  std::vector<std::vector<GroupEntry>> rows(n);
  std::vector<double> prob(n, 0.0);
  GlobalThreadPool().ParallelFor(n, [&](size_t qi) {
    const uint32_t q = static_cast<uint32_t>(qi);
    if ((*ctx.labeled)[q]) return;
    prob[q] = ctx.model->MatchProbability(graph.pool()[q]);

    std::unordered_map<uint32_t, float> best;  // group -> min cost
    const ElementPair& pair = graph.pool()[q];
    if (pair.kind == ElementKind::kEntity) {
      for (const auto& hp : onehop[q]) {
        const float cost = 1.0f / hp.power - 1.0f;
        if (cost > max_cost) continue;
        const uint32_t g = group_of[hp.target];
        auto [it, inserted] = best.emplace(g, cost);
        if (!inserted) it->second = std::min(it->second, cost);
      }
    } else if (pair.kind == ElementKind::kRelation) {
      // Relation sources are cheap to evaluate exactly (Eq. 20).
      for (const auto& [node, power] : ctx.engine->PowerFrom(q)) {
        const float cost = 1.0f / power - 1.0f;
        const uint32_t g = group_of[node];
        auto [it, inserted] = best.emplace(g, cost);
        if (!inserted) it->second = std::min(it->second, cost);
      }
    } else {
      return;  // class pairs: no outgoing inference
    }

    // mu-1 further hops over the coarse graph.
    std::unordered_map<uint32_t, float> frontier = best;
    for (int hop = 1; hop < mu && !frontier.empty(); ++hop) {
      std::unordered_map<uint32_t, float> next;
      for (const auto& [g, cost] : frontier) {
        for (const auto& [h, c] : coarse_adj[g]) {
          const float nc = cost + c;
          if (nc > max_cost) continue;
          auto it = best.find(h);
          if (it == best.end() || nc < it->second) {
            best[h] = nc;
            next[h] = nc;
          }
        }
      }
      frontier = std::move(next);
    }
    for (const auto& [g, cost] : best) {
      const float power = 1.0f / (1.0f + cost);
      if (power > power_floor && group_size[g] > 0) {
        rows[qi].push_back(GroupEntry{g, power, group_size[g]});
      }
    }
  });

  auto gain = [](const std::vector<GroupEntry>& row,
                 const std::vector<float>& m) {
    double g = 0.0;
    for (const auto& e : row) {
      g += static_cast<double>(e.count) * std::max(0.0f, e.power - m[e.group]);
    }
    return g;
  };
  auto commit = [](const std::vector<GroupEntry>& row, double pr,
                   std::vector<float>* m) {
    for (const auto& e : row) {
      (*m)[e.group] +=
          static_cast<float>(pr) * std::max(0.0f, e.power - (*m)[e.group]);
    }
  };
  SelectionResult result = LazyGreedy<GroupEntry>(ctx, config, rows, prob,
                                                  gain, commit, num_groups);
  result.num_groups = num_groups;
  result.seconds = span.Finish();
  obs::GlobalMetrics()
      .GetGauge("daakg.active.partition_groups")
      ->Set(static_cast<double>(num_groups));
  RecordSelection(result);
  return result;
}

double EvaluateSelectionObjective(const SelectionContext& ctx,
                                  const std::vector<uint32_t>& selected) {
  const size_t n = ctx.engine->graph().num_nodes();
  std::vector<float> m(n, 0.0f);
  double total = 0.0;
  for (uint32_t q : selected) {
    const double pr =
        ctx.model->MatchProbability(ctx.engine->graph().pool()[q]);
    double gain = 0.0;
    for (const auto& [q2, p] : ctx.engine->PowerFrom(q)) {
      const float delta = std::max(0.0f, p - m[q2]);
      gain += delta;
      m[q2] += static_cast<float>(pr) * delta;
    }
    total += pr * gain;
  }
  return total;
}

}  // namespace daakg
