#ifndef DAAKG_ACTIVE_STRATEGIES_H_
#define DAAKG_ACTIVE_STRATEGIES_H_

#include <memory>
#include <string>
#include <vector>

#include "active/selection.h"
#include "common/rng.h"

namespace daakg {

// A batch selection strategy for active alignment. DAAKG's own algorithms
// (Greedy / Partition, Sect. 6.2) and the competitors of Sect. 7.2
// (Random, Degree, PageRank, Uncertainty, ActiveEA) share this interface so
// the Fig. 5 bench can sweep them uniformly.
class SelectionStrategy {
 public:
  virtual ~SelectionStrategy() = default;
  virtual std::string name() const = 0;
  // Picks up to `batch_size` unlabeled pool nodes.
  virtual std::vector<uint32_t> SelectBatch(const SelectionContext& ctx,
                                            size_t batch_size, Rng* rng) = 0;
};

// Uniformly random unlabeled pairs (the default training-set construction).
class RandomStrategy : public SelectionStrategy {
 public:
  std::string name() const override { return "Random"; }
  std::vector<uint32_t> SelectBatch(const SelectionContext& ctx,
                                    size_t batch_size, Rng* rng) override;
};

// Largest alignment-graph degree (in + out).
class DegreeStrategy : public SelectionStrategy {
 public:
  std::string name() const override { return "Degree"; }
  std::vector<uint32_t> SelectBatch(const SelectionContext& ctx,
                                    size_t batch_size, Rng* rng) override;
};

// Highest PageRank score on the alignment graph.
class PageRankStrategy : public SelectionStrategy {
 public:
  explicit PageRankStrategy(double damping = 0.85, int iterations = 30)
      : damping_(damping), iterations_(iterations) {}
  std::string name() const override { return "PageRank"; }
  std::vector<uint32_t> SelectBatch(const SelectionContext& ctx,
                                    size_t batch_size, Rng* rng) override;

 private:
  double damping_;
  int iterations_;
};

// Largest prediction entropy of the calibrated match probability
// (classic uncertainty sampling, as in Corleone / DTAL).
class UncertaintyStrategy : public SelectionStrategy {
 public:
  std::string name() const override { return "Uncertainty"; }
  std::vector<uint32_t> SelectBatch(const SelectionContext& ctx,
                                    size_t batch_size, Rng* rng) override;
};

// ActiveEA-inspired structural uncertainty sampling (Liu et al., 2021):
// a pair's score is its own uncertainty plus the propagated uncertainty of
// its alignment-graph neighbors, so labeling it also reduces neighborhood
// uncertainty.
class ActiveEaStrategy : public SelectionStrategy {
 public:
  explicit ActiveEaStrategy(double neighbor_weight = 0.5)
      : neighbor_weight_(neighbor_weight) {}
  std::string name() const override { return "ActiveEA"; }
  std::vector<uint32_t> SelectBatch(const SelectionContext& ctx,
                                    size_t batch_size, Rng* rng) override;

 private:
  double neighbor_weight_;
};

// DAAKG batch selection, Algorithm 1 (greedy) or Algorithm 2 (partition).
class DaakgStrategy : public SelectionStrategy {
 public:
  explicit DaakgStrategy(bool use_partitioning, double rho = 0.9)
      : use_partitioning_(use_partitioning), rho_(rho) {}
  std::string name() const override {
    return use_partitioning_ ? "DAAKG" : "DAAKG-greedy";
  }
  std::vector<uint32_t> SelectBatch(const SelectionContext& ctx,
                                    size_t batch_size, Rng* rng) override;

 private:
  bool use_partitioning_;
  double rho_;
};

// All Fig. 5 strategies, DAAKG last.
std::vector<std::unique_ptr<SelectionStrategy>> MakeAllStrategies();

}  // namespace daakg

#endif  // DAAKG_ACTIVE_STRATEGIES_H_
