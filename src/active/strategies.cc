#include "active/strategies.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/ops.h"

namespace daakg {
namespace {

// Top `batch_size` unlabeled nodes by `score`, descending.
std::vector<uint32_t> TopUnlabeled(const SelectionContext& ctx,
                                   const std::vector<float>& score,
                                   size_t batch_size) {
  std::vector<uint32_t> idx;
  idx.reserve(score.size());
  for (uint32_t q = 0; q < score.size(); ++q) {
    if (!(*ctx.labeled)[q]) idx.push_back(q);
  }
  const size_t k = std::min(batch_size, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(k),
                    idx.end(), [&score](uint32_t a, uint32_t b) {
                      if (score[a] != score[b]) return score[a] > score[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

double PairEntropy(const SelectionContext& ctx, uint32_t q) {
  const double p =
      ctx.model->MatchProbability(ctx.engine->graph().pool()[q]);
  const double pc = std::clamp(p, 1e-9, 1.0 - 1e-9);
  return -pc * std::log(pc) - (1.0 - pc) * std::log(1.0 - pc);
}

}  // namespace

std::vector<uint32_t> RandomStrategy::SelectBatch(const SelectionContext& ctx,
                                                  size_t batch_size,
                                                  Rng* rng) {
  std::vector<uint32_t> unlabeled;
  for (uint32_t q = 0; q < ctx.labeled->size(); ++q) {
    if (!(*ctx.labeled)[q]) unlabeled.push_back(q);
  }
  rng->Shuffle(&unlabeled);
  unlabeled.resize(std::min(batch_size, unlabeled.size()));
  return unlabeled;
}

std::vector<uint32_t> DegreeStrategy::SelectBatch(const SelectionContext& ctx,
                                                  size_t batch_size,
                                                  Rng* /*rng*/) {
  const AlignmentGraph& graph = ctx.engine->graph();
  std::vector<float> degree(graph.num_nodes(), 0.0f);
  for (uint32_t q = 0; q < graph.num_nodes(); ++q) {
    degree[q] += static_cast<float>(graph.Out(q).size());
    for (const auto& e : graph.Out(q)) degree[e.target] += 1.0f;
  }
  return TopUnlabeled(ctx, degree, batch_size);
}

std::vector<uint32_t> PageRankStrategy::SelectBatch(
    const SelectionContext& ctx, size_t batch_size, Rng* /*rng*/) {
  const AlignmentGraph& graph = ctx.engine->graph();
  const size_t n = graph.num_nodes();
  std::vector<float> rank(n, 1.0f / static_cast<float>(n));
  std::vector<float> next(n);
  for (int it = 0; it < iterations_; ++it) {
    std::fill(next.begin(), next.end(),
              static_cast<float>((1.0 - damping_) / static_cast<double>(n)));
    for (uint32_t q = 0; q < n; ++q) {
      const auto& out = graph.Out(q);
      if (out.empty()) {
        // Dangling mass spreads uniformly; approximated by self-retention
        // to keep the iteration O(E).
        next[q] += static_cast<float>(damping_) * rank[q];
        continue;
      }
      const float share =
          static_cast<float>(damping_) * rank[q] / static_cast<float>(out.size());
      for (const auto& e : out) next[e.target] += share;
    }
    std::swap(rank, next);
  }
  return TopUnlabeled(ctx, rank, batch_size);
}

std::vector<uint32_t> UncertaintyStrategy::SelectBatch(
    const SelectionContext& ctx, size_t batch_size, Rng* /*rng*/) {
  std::vector<float> score(ctx.labeled->size(), 0.0f);
  for (uint32_t q = 0; q < score.size(); ++q) {
    if (!(*ctx.labeled)[q]) {
      score[q] = static_cast<float>(PairEntropy(ctx, q));
    }
  }
  return TopUnlabeled(ctx, score, batch_size);
}

std::vector<uint32_t> ActiveEaStrategy::SelectBatch(
    const SelectionContext& ctx, size_t batch_size, Rng* /*rng*/) {
  const AlignmentGraph& graph = ctx.engine->graph();
  const size_t n = graph.num_nodes();
  std::vector<float> own(n, 0.0f);
  for (uint32_t q = 0; q < n; ++q) own[q] = static_cast<float>(PairEntropy(ctx, q));
  std::vector<float> score = own;
  for (uint32_t q = 0; q < n; ++q) {
    const auto& out = graph.Out(q);
    if (out.empty()) continue;
    float nb = 0.0f;
    for (const auto& e : out) nb += own[e.target];
    score[q] += static_cast<float>(neighbor_weight_) * nb /
                static_cast<float>(out.size());
  }
  return TopUnlabeled(ctx, score, batch_size);
}

std::vector<uint32_t> DaakgStrategy::SelectBatch(const SelectionContext& ctx,
                                                 size_t batch_size,
                                                 Rng* /*rng*/) {
  SelectionConfig config;
  config.batch_size = batch_size;
  config.rho = rho_;
  SelectionResult result = use_partitioning_ ? PartitionSelect(ctx, config)
                                             : GreedySelect(ctx, config);
  return result.selected;
}

std::vector<std::unique_ptr<SelectionStrategy>> MakeAllStrategies() {
  std::vector<std::unique_ptr<SelectionStrategy>> out;
  out.push_back(std::make_unique<RandomStrategy>());
  out.push_back(std::make_unique<DegreeStrategy>());
  out.push_back(std::make_unique<PageRankStrategy>());
  out.push_back(std::make_unique<UncertaintyStrategy>());
  out.push_back(std::make_unique<ActiveEaStrategy>());
  out.push_back(std::make_unique<DaakgStrategy>(/*use_partitioning=*/true));
  return out;
}

}  // namespace daakg
