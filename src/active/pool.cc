#include "active/pool.h"

#include <algorithm>
#include <unordered_set>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "tensor/topk.h"

namespace daakg {

PoolGenerator::PoolGenerator(const AlignmentTask* task,
                             const JointAlignmentModel* model,
                             const PoolConfig& config)
    : task_(task), model_(model), config_(config) {
  DAAKG_CHECK(model->caches_ready());
}

Vector PoolGenerator::Signature(int side, EntityId e) const {
  const KnowledgeGraph& kg = side == 1 ? task_->kg1 : task_->kg2;
  const Matrix& rel_sim = model_->relation_sim();
  const Matrix& cls_sim = model_->class_sim();
  const size_t dim = model_->kg1_model()->dim();

  // Relation half: weighted mean of rbar over incident base relations
  // (Eq. 24 left), weights w_r = max similarity to the other side's
  // relations (Eq. 25).
  Vector rel_part(dim);
  double rel_w = 0.0;
  for (const auto& nb : kg.Neighbors(e)) {
    RelationId r = nb.relation;
    if (kg.IsReverseRelation(r)) r = kg.ReverseOf(r);
    float w = -1.0f;
    if (side == 1) {
      const float* row = rel_sim.RowData(r);
      for (size_t c = 0; c < rel_sim.cols(); ++c) w = std::max(w, row[c]);
    } else {
      for (size_t r1 = 0; r1 < rel_sim.rows(); ++r1) {
        w = std::max(w, rel_sim(r1, r));
      }
    }
    w = std::max(w, 0.0f);
    if (w <= 0.0f) continue;
    const Vector& mean =
        side == 1 ? model_->RelationMean1(r) : model_->RelationMean2(r);
    rel_part.Axpy(w, mean);
    rel_w += w;
  }
  if (rel_w > 0.0) rel_part *= static_cast<float>(1.0 / rel_w);

  // Class half (Eq. 24 right).
  Vector cls_part(dim);
  double cls_w = 0.0;
  for (ClassId c : kg.ClassesOf(e)) {
    float w = -1.0f;
    if (side == 1) {
      const float* row = cls_sim.RowData(c);
      for (size_t j = 0; j < cls_sim.cols(); ++j) w = std::max(w, row[j]);
    } else {
      for (size_t c1 = 0; c1 < cls_sim.rows(); ++c1) {
        w = std::max(w, cls_sim(c1, c));
      }
    }
    w = std::max(w, 0.0f);
    if (w <= 0.0f) continue;
    const Vector& mean =
        side == 1 ? model_->ClassMean1(c) : model_->ClassMean2(c);
    cls_part.Axpy(w, mean);
    cls_w += w;
  }
  if (cls_w > 0.0) cls_part *= static_cast<float>(1.0 / cls_w);

  // Mean embeddings live in their own KG's entity space; map side 1 through
  // A_ent (as every cross-KG comparison of means does, cf. Eqs. 7-9) so the
  // two signatures are comparable. Mapping the weighted halves is
  // equivalent to mapping each mean (linearity).
  if (side == 1) {
    rel_part = model_->a_ent().Multiply(rel_part);
    cls_part = model_->a_ent().Multiply(cls_part);
  }
  return Concat(rel_part, cls_part);
}

void PoolGenerator::EnsureIndex() const {
  if (index_ != nullptr) return;
  static obs::Histogram* sig_timing = obs::GlobalMetrics().GetHistogram(
      "daakg.active.pool_signature_seconds");
  obs::TraceSpan span("active.pool_signatures", "active", sig_timing);
  const size_t n1 = task_->kg1.num_entities();
  const size_t n2 = task_->kg2.num_entities();
  const size_t sig_dim = 2 * model_->kg1_model()->dim();
  span.AddArg("n1", static_cast<double>(n1));
  span.AddArg("n2", static_cast<double>(n2));

  // Signatures (parallel). The KG1 side is unit-normalized here; the KG2
  // side is normalized inside the index build (config.normalize) with the
  // exact same arithmetic, so either placement yields bitwise-equal rows.
  queries_ = Matrix(n1, sig_dim);
  Matrix sig2(n2, sig_dim);
  ThreadPool& pool = GlobalThreadPool();
  pool.ParallelFor(n1, [this](size_t e) {
    Vector s = Signature(1, static_cast<EntityId>(e));
    s.Normalize();
    queries_.SetRow(e, s);
  });
  pool.ParallelFor(n2, [this, &sig2](size_t e) {
    sig2.SetRow(e, Signature(2, static_cast<EntityId>(e)));
  });

  CandidateIndexConfig index_cfg = config_.index;
  index_cfg.normalize = true;
  auto built = CandidateIndex::Build(std::move(sig2), index_cfg);
  DAAKG_CHECK(built.ok()) << built.status();
  index_ = std::move(built.value());
}

const CandidateIndex& PoolGenerator::index() const {
  EnsureIndex();
  return *index_;
}

std::vector<ElementPair> PoolGenerator::Generate() const {
  return Generate(config_.top_n);
}

std::vector<ElementPair> PoolGenerator::Generate(size_t top_n) const {
  static obs::Histogram* build_timing =
      obs::GlobalMetrics().GetHistogram("daakg.active.pool_build_seconds");
  static obs::Counter* candidates =
      obs::GlobalMetrics().GetCounter("daakg.active.pool_candidates");
  static obs::Gauge* pool_size =
      obs::GlobalMetrics().GetGauge("daakg.active.pool_size");
  obs::TraceSpan span("active.pool_generate", "active", build_timing);
  span.AddArg("top_n", static_cast<double>(top_n));
  EnsureIndex();
  const size_t n1 = task_->kg1.num_entities();
  const size_t n2 = task_->kg2.num_entities();
  const size_t n = std::min(top_n, n2);

  // Top-N lists in both directions from one pass through the index: the
  // exact backend streams the similarity matrix with per-row and
  // per-column top-N state (neither the n1 x n2 buffer nor its transpose
  // is materialized); the IVF backend scores only the probed lists.
  const size_t n_rev = std::min(top_n, n1);
  SimTopK topk = index_->QueryTopK(queries_, n, n_rev);
  std::vector<std::unordered_set<uint32_t>> top2(n2);
  for (size_t c = 0; c < n2; ++c) {
    for (const ScoredIndex& e : topk.col_topk[c]) top2[c].insert(e.index);
  }

  std::vector<ElementPair> out;
  for (uint32_t e1 = 0; e1 < n1; ++e1) {
    for (const ScoredIndex& cand : topk.row_topk[e1]) {
      const uint32_t e2 = cand.index;
      if (top2[e2].count(e1) > 0) {
        out.push_back(ElementPair{ElementKind::kEntity, e1, e2});
      }
    }
  }
  for (uint32_t r1 = 0; r1 < task_->kg1.num_base_relations(); ++r1) {
    for (uint32_t r2 = 0; r2 < task_->kg2.num_base_relations(); ++r2) {
      out.push_back(ElementPair{ElementKind::kRelation, r1, r2});
    }
  }
  for (uint32_t c1 = 0; c1 < task_->kg1.num_classes(); ++c1) {
    for (uint32_t c2 = 0; c2 < task_->kg2.num_classes(); ++c2) {
      out.push_back(ElementPair{ElementKind::kClass, c1, c2});
    }
  }
  candidates->Increment(out.size());
  pool_size->Set(static_cast<double>(out.size()));
  return out;
}

double PoolGenerator::EntityPairRecall(
    const std::vector<ElementPair>& pool) const {
  if (task_->gold_entities.empty()) return 0.0;
  std::unordered_set<uint64_t> in_pool;
  for (const ElementPair& p : pool) {
    if (p.kind != ElementKind::kEntity) continue;
    in_pool.insert((static_cast<uint64_t>(p.first) << 32) | p.second);
  }
  size_t hit = 0;
  for (const auto& [e1, e2] : task_->gold_entities) {
    if (in_pool.count((static_cast<uint64_t>(e1) << 32) | e2) > 0) ++hit;
  }
  return static_cast<double>(hit) /
         static_cast<double>(task_->gold_entities.size());
}

}  // namespace daakg
