#include "common/file_util.h"

#include <sys/stat.h>

#include <fstream>
#include <sstream>

namespace daakg {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open for reading: " + path);
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) return IoError("read failed: " + path);
  return out.str();
}

StatusOr<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return IoError("cannot open for reading: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  if (in.bad()) return IoError("read failed: " + path);
  return lines;
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return IoError("cannot open for writing: " + path);
  out << content;
  out.flush();
  if (!out) return IoError("write failed: " + path);
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace daakg
