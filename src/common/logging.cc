#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace daakg {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

// Serializes log line emission across threads.
std::mutex& LogMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

const char* LevelPrefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

// Strips directories from a path so log lines stay short.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelPrefix(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace daakg
