#ifndef DAAKG_COMMON_STRING_UTIL_H_
#define DAAKG_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace daakg {

// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char delim);

// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

// True if `s` begins with `prefix`.
bool StrStartsWith(std::string_view s, std::string_view prefix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// Escapes `s` for embedding in a JSON string literal (quotes, backslashes,
// control characters). Shared by the metrics and trace JSON exporters.
std::string JsonEscape(std::string_view s);

// Formats `v` as a JSON number. JSON has no Infinity/NaN literals, so
// non-finite values serialize as 0 rather than corrupting the document.
std::string JsonNumber(double v);

// Character-level n-gram Jaccard similarity in [0, 1]; used by lexical
// baselines. n defaults to 2 (bigrams). Strings shorter than n are compared
// for equality.
double NgramJaccard(std::string_view a, std::string_view b, int n = 2);

// Levenshtein edit distance (dynamic programming, O(|a||b|)).
size_t EditDistance(std::string_view a, std::string_view b);

// Normalized edit similarity: 1 - dist / max(|a|, |b|); 1.0 for two empty
// strings.
double EditSimilarity(std::string_view a, std::string_view b);

}  // namespace daakg

#endif  // DAAKG_COMMON_STRING_UTIL_H_
