#include "common/status.h"

namespace daakg {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}

}  // namespace daakg
