#ifndef DAAKG_COMMON_STATUS_H_
#define DAAKG_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace daakg {

// Error codes loosely modeled after absl::StatusCode. Only the codes the
// library actually produces are defined.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kIoError = 7,
  kUnimplemented = 8,
};

// Returns a human-readable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

// Status carries the result of an operation that can fail. The library does
// not use exceptions (see DESIGN.md); fallible functions return Status or
// StatusOr<T>.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Returns e.g. "InvalidArgument: dimension must be positive".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status IoError(std::string message);
Status UnimplementedError(std::string message);

// StatusOr<T> holds either a value of type T or a non-OK Status.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` or
  // `return SomeError(...);` directly.
  StatusOr(const T& value) : rep_(value) {}          // NOLINT
  StatusOr(T&& value) : rep_(std::move(value)) {}    // NOLINT
  StatusOr(Status status) : rep_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  // Precondition: ok().
  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace daakg

// Evaluates `expr` (a Status); returns it from the enclosing function if not
// OK.
#define DAAKG_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::daakg::Status _daakg_status = (expr);        \
    if (!_daakg_status.ok()) return _daakg_status; \
  } while (0)

// Evaluates `rexpr` (a StatusOr<T>); assigns the value to `lhs` or returns
// the error from the enclosing function.
#define DAAKG_ASSIGN_OR_RETURN(lhs, rexpr)                   \
  DAAKG_ASSIGN_OR_RETURN_IMPL_(                              \
      DAAKG_STATUS_CONCAT_(_daakg_statusor, __LINE__), lhs, rexpr)

#define DAAKG_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()

#define DAAKG_STATUS_CONCAT_(a, b) DAAKG_STATUS_CONCAT_IMPL_(a, b)
#define DAAKG_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // DAAKG_COMMON_STATUS_H_
