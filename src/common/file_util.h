#ifndef DAAKG_COMMON_FILE_UTIL_H_
#define DAAKG_COMMON_FILE_UTIL_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace daakg {

// Reads an entire file into a string.
StatusOr<std::string> ReadFileToString(const std::string& path);

// Reads a text file and returns its lines (without trailing newlines).
StatusOr<std::vector<std::string>> ReadLines(const std::string& path);

// Writes `content` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, const std::string& content);

// True if a file (or directory) exists at `path`.
bool FileExists(const std::string& path);

}  // namespace daakg

#endif  // DAAKG_COMMON_FILE_UTIL_H_
