#ifndef DAAKG_COMMON_RNG_H_
#define DAAKG_COMMON_RNG_H_

#include <cstdint>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace daakg {

// Deterministic, seedable pseudo-random number generator (xoshiro256**,
// seeded via SplitMix64). Every stochastic component of the library draws
// from an explicitly passed Rng so experiments are reproducible bit-for-bit.
//
// Not thread-safe; use one Rng per thread (see Fork()).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  // Re-seeds the generator deterministically from `seed`.
  void Seed(uint64_t seed);

  // Uniform random 64-bit value.
  uint64_t NextUint64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t NextUint64(uint64_t bound);

  // Uniform integer in [lo, hi). Precondition: lo < hi.
  int64_t NextInt(int64_t lo, int64_t hi) {
    DAAKG_CHECK_LT(lo, hi);
    return lo + static_cast<int64_t>(NextUint64(static_cast<uint64_t>(hi - lo)));
  }

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Bernoulli draw with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  // Draws from Zipf distribution over {0, ..., n-1} with exponent s > 0.
  // Smaller indexes are more likely. Uses cached CDF per (n, s); cheap for
  // repeated draws with identical parameters.
  size_t NextZipf(size_t n, double s);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->size() < 2) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = NextUint64(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  // Samples `k` distinct indexes from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  // Returns an independent generator deterministically derived from this
  // one's state; use to hand per-thread RNGs out of a master seed.
  Rng Fork();

 private:
  uint64_t state_[4];
  // Cached Zipf CDF for the last (n, s) used.
  std::vector<double> zipf_cdf_;
  size_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
};

}  // namespace daakg

#endif  // DAAKG_COMMON_RNG_H_
