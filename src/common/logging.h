#ifndef DAAKG_COMMON_LOGGING_H_
#define DAAKG_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace daakg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Global minimum log level; messages below it are dropped. Default: kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

// Accumulates one log line and flushes it (with level prefix and source
// location) on destruction. FATAL messages abort the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows a streamed expression when the log level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace daakg

#define DAAKG_LOG_INTERNAL(level) \
  ::daakg::internal_logging::LogMessage(level, __FILE__, __LINE__).stream()

#define LOG_DEBUG                                             \
  if (::daakg::GetLogLevel() > ::daakg::LogLevel::kDebug) {   \
  } else                                                      \
    DAAKG_LOG_INTERNAL(::daakg::LogLevel::kDebug)
#define LOG_INFO                                              \
  if (::daakg::GetLogLevel() > ::daakg::LogLevel::kInfo) {    \
  } else                                                      \
    DAAKG_LOG_INTERNAL(::daakg::LogLevel::kInfo)
#define LOG_WARNING                                           \
  if (::daakg::GetLogLevel() > ::daakg::LogLevel::kWarning) { \
  } else                                                      \
    DAAKG_LOG_INTERNAL(::daakg::LogLevel::kWarning)
#define LOG_ERROR DAAKG_LOG_INTERNAL(::daakg::LogLevel::kError)
#define LOG_FATAL DAAKG_LOG_INTERNAL(::daakg::LogLevel::kFatal)

// CHECK macros abort (with message) when the condition fails, in all build
// modes. Use for programmer errors / invariant violations, not user input.
#define DAAKG_CHECK(cond)                                    \
  if (cond) {                                                \
  } else                                                     \
    LOG_FATAL << "Check failed: " #cond " "

#define DAAKG_CHECK_EQ(a, b) DAAKG_CHECK((a) == (b))
#define DAAKG_CHECK_NE(a, b) DAAKG_CHECK((a) != (b))
#define DAAKG_CHECK_LT(a, b) DAAKG_CHECK((a) < (b))
#define DAAKG_CHECK_LE(a, b) DAAKG_CHECK((a) <= (b))
#define DAAKG_CHECK_GT(a, b) DAAKG_CHECK((a) > (b))
#define DAAKG_CHECK_GE(a, b) DAAKG_CHECK((a) >= (b))

#endif  // DAAKG_COMMON_LOGGING_H_
