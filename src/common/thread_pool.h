#ifndef DAAKG_COMMON_THREAD_POOL_H_
#define DAAKG_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace daakg {

// Optional instrumentation hooks for every ThreadPool in the process.
// `common/` cannot depend on `obs/`, so the observability layer installs a
// table of plain function pointers instead of calling it directly
// (`obs/trace.cc` does so from a static initializer).
//
// Contract: all pointers must be non-null; the table must outlive every
// pool (install a static). on_enqueue/on_dequeue run under the pool mutex
// and must not touch the pool. capture_context runs on the submitting
// thread, outside the pool mutex; its return value is handed to task_begin
// on the executing thread just before the task body runs, and task_end runs
// right after — these bracket every task and may keep thread-local state.
struct ThreadPoolObserver {
  // Captures an opaque submit-side context (e.g. the current trace span id).
  uint64_t (*capture_context)();
  // Brackets task execution on the running thread.
  void (*task_begin)(uint64_t context);
  void (*task_end)();
  // Queue-depth samples, taken under the pool mutex right after a push/pop.
  void (*on_enqueue)(size_t queue_depth);
  void (*on_dequeue)(size_t queue_depth);
  // A thread that would otherwise block in Wait()/ParallelForShards ran a
  // queued task instead.
  void (*on_help_drain)();
};

// Installs the process-wide observer (nullptr uninstalls). Not synchronized
// with in-flight tasks: install once at startup, before pools run work.
void SetThreadPoolObserver(const ThreadPoolObserver* observer);

// Fixed-size worker pool for data-parallel loops. Tasks are plain
// std::function<void()>; Wait() blocks until the queue drains and all
// in-flight tasks finish.
//
// Thread-safe for concurrent Submit from multiple producers. ParallelFor /
// ParallelForShards may be nested: each call tracks its own shards through a
// per-call completion group, and a thread that waits (Wait() or the tail of
// a ParallelForShards) help-drains queued tasks instead of parking, so
// waiting from inside a pool task can neither deadlock nor block on
// unrelated work submitted by other callers.
class ThreadPool {
 public:
  // Creates `num_threads` workers (>= 1). Pass 0 to use the hardware
  // concurrency.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Enqueues a task for execution.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has completed, executing queued tasks
  // on the calling thread while it waits.
  void Wait();

  // Runs fn(i) for i in [0, n), partitioned into contiguous shards across
  // the pool, and blocks until done. fn must be safe to call concurrently
  // for distinct i. The calling thread also participates.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Like ParallelFor but hands each worker a contiguous [begin, end) range,
  // letting callers hoist per-shard state. shard_fn(shard_index, begin, end).
  void ParallelForShards(
      size_t n,
      const std::function<void(size_t, size_t, size_t)>& shard_fn);

 private:
  // Completion state of one ParallelForShards call: the number of its
  // shards still queued or running. Guarded by mutex_; shared_ptr so a
  // shard finishing after the call returns (impossible today, but cheap to
  // make safe) cannot dangle.
  struct Group {
    size_t remaining = 0;
  };

  // One queued task plus the observer context captured at Submit time.
  struct Task {
    std::function<void()> fn;
    uint64_t context = 0;
  };

  void WorkerLoop();
  // Runs one queued task (any task, not necessarily the caller's) with
  // in-flight bookkeeping. Returns false if the queue was empty.
  // `from_wait` marks help-draining callers (Wait / ParallelForShards tails)
  // as opposed to dedicated workers, for the observer only.
  bool TryRunOneTask(bool from_wait);

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  // Single condition variable for every wake-up source: task submission,
  // task completion, group completion, and shutdown. Waiters re-check their
  // own predicate, so sharing one cv trades a few spurious wake-ups for the
  // impossibility of a lost wake-up across the three waiter kinds (workers,
  // Wait(), group waits).
  std::condition_variable cv_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

// Returns a lazily constructed process-wide pool sized to the hardware.
ThreadPool& GlobalThreadPool();

}  // namespace daakg

#endif  // DAAKG_COMMON_THREAD_POOL_H_
