#ifndef DAAKG_COMMON_THREAD_POOL_H_
#define DAAKG_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace daakg {

// Fixed-size worker pool for data-parallel loops. Tasks are plain
// std::function<void()>; Wait() blocks until the queue drains and all
// in-flight tasks finish.
//
// Thread-safe for concurrent Submit from multiple producers.
class ThreadPool {
 public:
  // Creates `num_threads` workers (>= 1). Pass 0 to use the hardware
  // concurrency.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Enqueues a task for execution.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has completed.
  void Wait();

  // Runs fn(i) for i in [0, n), partitioned into contiguous shards across
  // the pool, and blocks until done. fn must be safe to call concurrently
  // for distinct i. The calling thread also participates.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Like ParallelFor but hands each worker a contiguous [begin, end) range,
  // letting callers hoist per-shard state. shard_fn(shard_index, begin, end).
  void ParallelForShards(
      size_t n,
      const std::function<void(size_t, size_t, size_t)>& shard_fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

// Returns a lazily constructed process-wide pool sized to the hardware.
ThreadPool& GlobalThreadPool();

}  // namespace daakg

#endif  // DAAKG_COMMON_THREAD_POOL_H_
