#ifndef DAAKG_COMMON_THREAD_POOL_H_
#define DAAKG_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace daakg {

// Fixed-size worker pool for data-parallel loops. Tasks are plain
// std::function<void()>; Wait() blocks until the queue drains and all
// in-flight tasks finish.
//
// Thread-safe for concurrent Submit from multiple producers. ParallelFor /
// ParallelForShards may be nested: each call tracks its own shards through a
// per-call completion group, and a thread that waits (Wait() or the tail of
// a ParallelForShards) help-drains queued tasks instead of parking, so
// waiting from inside a pool task can neither deadlock nor block on
// unrelated work submitted by other callers.
class ThreadPool {
 public:
  // Creates `num_threads` workers (>= 1). Pass 0 to use the hardware
  // concurrency.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Enqueues a task for execution.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has completed, executing queued tasks
  // on the calling thread while it waits.
  void Wait();

  // Runs fn(i) for i in [0, n), partitioned into contiguous shards across
  // the pool, and blocks until done. fn must be safe to call concurrently
  // for distinct i. The calling thread also participates.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Like ParallelFor but hands each worker a contiguous [begin, end) range,
  // letting callers hoist per-shard state. shard_fn(shard_index, begin, end).
  void ParallelForShards(
      size_t n,
      const std::function<void(size_t, size_t, size_t)>& shard_fn);

 private:
  // Completion state of one ParallelForShards call: the number of its
  // shards still queued or running. Guarded by mutex_; shared_ptr so a
  // shard finishing after the call returns (impossible today, but cheap to
  // make safe) cannot dangle.
  struct Group {
    size_t remaining = 0;
  };

  void WorkerLoop();
  // Runs one queued task (any task, not necessarily the caller's) with
  // in-flight bookkeeping. Returns false if the queue was empty.
  bool TryRunOneTask();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  // Single condition variable for every wake-up source: task submission,
  // task completion, group completion, and shutdown. Waiters re-check their
  // own predicate, so sharing one cv trades a few spurious wake-ups for the
  // impossibility of a lost wake-up across the three waiter kinds (workers,
  // Wait(), group waits).
  std::condition_variable cv_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

// Returns a lazily constructed process-wide pool sized to the hardware.
ThreadPool& GlobalThreadPool();

}  // namespace daakg

#endif  // DAAKG_COMMON_THREAD_POOL_H_
