#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/logging.h"

namespace daakg {

namespace {

// Relaxed is enough: the contract requires installation before pools run
// work, so there is no concurrent install/use ordering to enforce.
std::atomic<const ThreadPoolObserver*> g_pool_observer{nullptr};

const ThreadPoolObserver* PoolObserver() {
  return g_pool_observer.load(std::memory_order_relaxed);
}

}  // namespace

void SetThreadPoolObserver(const ThreadPoolObserver* observer) {
  g_pool_observer.store(observer, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  const ThreadPoolObserver* obs = PoolObserver();
  // Capture outside the lock: the hook may read thread-local trace state.
  const uint64_t context = obs != nullptr ? obs->capture_context() : 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    DAAKG_CHECK(!shutting_down_);
    tasks_.push(Task{std::move(task), context});
    ++in_flight_;
    if (obs != nullptr) obs->on_enqueue(tasks_.size());
  }
  cv_.notify_all();
}

bool ThreadPool::TryRunOneTask(bool from_wait) {
  const ThreadPoolObserver* obs = PoolObserver();
  Task task;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
    if (obs != nullptr) obs->on_dequeue(tasks_.size());
  }
  if (obs != nullptr) {
    if (from_wait) obs->on_help_drain();
    obs->task_begin(task.context);
  }
  task.fn();
  if (obs != nullptr) obs->task_end();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    --in_flight_;
  }
  cv_.notify_all();
  return true;
}

void ThreadPool::Wait() {
  for (;;) {
    if (TryRunOneTask(/*from_wait=*/true)) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    if (in_flight_ == 0) return;
    if (!tasks_.empty()) continue;
    cv_.wait(lock, [this] { return in_flight_ == 0 || !tasks_.empty(); });
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty() && shutting_down_) return;
    }
    TryRunOneTask(/*from_wait=*/false);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForShards(n, [&fn](size_t /*shard*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForShards(
    size_t n, const std::function<void(size_t, size_t, size_t)>& shard_fn) {
  if (n == 0) return;
  const size_t shards = std::min(n, num_threads());
  if (shards <= 1) {
    shard_fn(0, 0, n);
    return;
  }
  const size_t chunk = (n + shards - 1) / shards;

  // Each call gets its own completion group so the tail wait below tracks
  // exactly this call's shards: waiting on the global in-flight count would
  // over-wait on unrelated work (and deadlock when every worker waits).
  auto group = std::make_shared<Group>();
  size_t submitted = 0;
  for (size_t s = 1; s < shards; ++s) {
    size_t begin = s * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    ++submitted;
  }
  group->remaining = submitted;
  for (size_t s = 1; s <= submitted; ++s) {
    size_t begin = s * chunk;
    size_t end = std::min(n, begin + chunk);
    // &shard_fn stays valid: this call does not return before the group
    // completes, and the decrement runs after shard_fn.
    Submit([this, &shard_fn, group, s, begin, end] {
      shard_fn(s, begin, end);
      {
        std::unique_lock<std::mutex> lock(mutex_);
        --group->remaining;
      }
      cv_.notify_all();
    });
  }
  // The calling thread runs shard 0 itself, then help-drains queued tasks
  // (this call's shards or anyone else's) until its own group completes.
  shard_fn(0, 0, std::min(chunk, n));
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (group->remaining == 0) return;
      if (tasks_.empty()) {
        cv_.wait(lock, [this, &group] {
          return group->remaining == 0 || !tasks_.empty();
        });
        continue;
      }
    }
    TryRunOneTask(/*from_wait=*/true);
  }
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace daakg

