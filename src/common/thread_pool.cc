#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace daakg {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    DAAKG_CHECK(!shutting_down_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForShards(n, [&fn](size_t /*shard*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForShards(
    size_t n, const std::function<void(size_t, size_t, size_t)>& shard_fn) {
  if (n == 0) return;
  const size_t shards = std::min(n, num_threads());
  if (shards <= 1) {
    shard_fn(0, 0, n);
    return;
  }
  const size_t chunk = (n + shards - 1) / shards;
  // The calling thread runs shard 0 itself; workers take the rest. This
  // keeps small loops cheap and avoids deadlock if ParallelFor is called
  // from within a pool task.
  for (size_t s = 1; s < shards; ++s) {
    size_t begin = s * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    Submit([&shard_fn, s, begin, end] { shard_fn(s, begin, end); });
  }
  shard_fn(0, 0, std::min(chunk, n));
  Wait();
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace daakg
