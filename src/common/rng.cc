#include "common/rng.h"

#include <algorithm>
#include <numeric>

namespace daakg {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  zipf_n_ = 0;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  DAAKG_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextGaussian() {
  // Box-Muller; draws two uniforms, discards the second output for
  // simplicity (statelessness beats the 2x speed-up here).
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

size_t Rng::NextZipf(size_t n, double s) {
  DAAKG_CHECK_GT(n, 0u);
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_cdf_.resize(n);
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = acc;
    }
    for (auto& c : zipf_cdf_) c /= acc;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  double u = NextDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<size_t>(std::min<ptrdiff_t>(
      it - zipf_cdf_.begin(), static_cast<ptrdiff_t>(n) - 1));
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  DAAKG_CHECK_LE(k, n);
  if (k == 0) return {};
  // For small k relative to n, use a hash-free partial Fisher-Yates over a
  // sparse permutation is overkill; a full index vector is fine at our
  // scales (n <= a few hundred thousand).
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + NextUint64(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace daakg
