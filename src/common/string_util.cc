#include "common/string_util.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <unordered_set>

namespace daakg {

std::vector<std::string> StrSplit(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StrStartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

double NgramJaccard(std::string_view a, std::string_view b, int n) {
  const size_t un = static_cast<size_t>(n);
  if (a.size() < un || b.size() < un) {
    if (a == b) return 1.0;
    return 0.0;
  }
  std::unordered_set<std::string> grams_a;
  std::unordered_set<std::string> grams_b;
  for (size_t i = 0; i + un <= a.size(); ++i) {
    grams_a.emplace(a.substr(i, un));
  }
  for (size_t i = 0; i + un <= b.size(); ++i) {
    grams_b.emplace(b.substr(i, un));
  }
  size_t inter = 0;
  for (const auto& g : grams_a) inter += grams_b.count(g);
  size_t uni = grams_a.size() + grams_b.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);
  // b is the shorter string; keep one rolling row.
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t prev_diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t cur = row[j];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, prev_diag + cost});
      prev_diag = cur;
    }
  }
  return row[b.size()];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  size_t m = std::max(a.size(), b.size());
  if (m == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) / static_cast<double>(m);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  return StrFormat("%.9g", v);
}

}  // namespace daakg
