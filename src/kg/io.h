#ifndef DAAKG_KG_IO_H_
#define DAAKG_KG_IO_H_

#include <string>

#include "common/status.h"
#include "kg/alignment_task.h"
#include "kg/knowledge_graph.h"

namespace daakg {

// Text formats (OpenEA-style):
//
//   triples file   : one `head<TAB>relation<TAB>tail` per line; lines whose
//                    relation equals `type_relation` become entity-class
//                    triplets (the tail is a class).
//   matches file   : one `element1<TAB>element2` per line (names).
//
// Blank lines and lines starting with '#' are skipped.

inline constexpr char kDefaultTypeRelation[] = "rdf:type";

// Parses a triples file into a fresh (finalized) KnowledgeGraph.
StatusOr<KnowledgeGraph> LoadKgFromTsv(
    const std::string& path, const std::string& type_relation = kDefaultTypeRelation);

// Writes a finalized KG back out (forward triplets and type triplets only;
// synthetic reverse triplets are skipped so a round trip is lossless).
Status SaveKgToTsv(const KnowledgeGraph& kg, const std::string& path,
                   const std::string& type_relation = kDefaultTypeRelation);

// Loads a full task from a directory containing:
//   kg1_triples.tsv  kg2_triples.tsv
//   ent_matches.tsv  rel_matches.tsv  cls_matches.tsv
// (the two schema match files are optional).
StatusOr<AlignmentTask> LoadAlignmentTask(const std::string& dir);

// Writes a task into `dir` (which must exist) in the layout above.
Status SaveAlignmentTask(const AlignmentTask& task, const std::string& dir);

}  // namespace daakg

#endif  // DAAKG_KG_IO_H_
