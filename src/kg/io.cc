#include "kg/io.h"

#include <sstream>

#include "common/file_util.h"
#include "common/string_util.h"

namespace daakg {
namespace {

bool SkippableLine(const std::string& line) {
  std::string_view t = StrTrim(line);
  return t.empty() || t.front() == '#';
}

StatusOr<std::vector<std::pair<std::string, std::string>>> LoadNamePairs(
    const std::string& path) {
  DAAKG_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(path));
  std::vector<std::pair<std::string, std::string>> pairs;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (SkippableLine(lines[i])) continue;
    std::vector<std::string> fields = StrSplit(lines[i], '\t');
    if (fields.size() != 2) {
      return InvalidArgumentError(StrFormat(
          "%s:%zu: expected 2 tab-separated fields, got %zu", path.c_str(),
          i + 1, fields.size()));
    }
    pairs.emplace_back(std::move(fields[0]), std::move(fields[1]));
  }
  return pairs;
}

}  // namespace

StatusOr<KnowledgeGraph> LoadKgFromTsv(const std::string& path,
                                       const std::string& type_relation) {
  DAAKG_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(path));
  KnowledgeGraph kg;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (SkippableLine(lines[i])) continue;
    std::vector<std::string> fields = StrSplit(lines[i], '\t');
    if (fields.size() != 3) {
      return InvalidArgumentError(StrFormat(
          "%s:%zu: expected 3 tab-separated fields, got %zu", path.c_str(),
          i + 1, fields.size()));
    }
    EntityId head = kg.AddEntity(fields[0]);
    if (fields[1] == type_relation) {
      ClassId cls = kg.AddClass(fields[2]);
      kg.AddTypeTriplet(head, cls);
    } else {
      RelationId rel = kg.AddRelation(fields[1]);
      EntityId tail = kg.AddEntity(fields[2]);
      kg.AddTriplet(head, rel, tail);
    }
  }
  DAAKG_RETURN_IF_ERROR(kg.Finalize());
  return kg;
}

Status SaveKgToTsv(const KnowledgeGraph& kg, const std::string& path,
                   const std::string& type_relation) {
  std::ostringstream out;
  for (const Triplet& t : kg.triplets()) {
    if (kg.IsReverseRelation(t.relation)) continue;
    out << kg.entity_name(t.head) << '\t' << kg.relation_name(t.relation)
        << '\t' << kg.entity_name(t.tail) << '\n';
  }
  for (const TypeTriplet& t : kg.type_triplets()) {
    out << kg.entity_name(t.entity) << '\t' << type_relation << '\t'
        << kg.class_name(t.cls) << '\n';
  }
  return WriteStringToFile(path, out.str());
}

StatusOr<AlignmentTask> LoadAlignmentTask(const std::string& dir) {
  AlignmentTask task;
  task.name = dir;
  DAAKG_ASSIGN_OR_RETURN(task.kg1, LoadKgFromTsv(dir + "/kg1_triples.tsv"));
  DAAKG_ASSIGN_OR_RETURN(task.kg2, LoadKgFromTsv(dir + "/kg2_triples.tsv"));

  DAAKG_ASSIGN_OR_RETURN(auto ent_pairs,
                         LoadNamePairs(dir + "/ent_matches.tsv"));
  for (const auto& [n1, n2] : ent_pairs) {
    EntityId e1 = task.kg1.FindEntity(n1);
    EntityId e2 = task.kg2.FindEntity(n2);
    if (e1 == kInvalidId || e2 == kInvalidId) {
      return InvalidArgumentError("unknown entity in ent_matches.tsv: " + n1 +
                                  " / " + n2);
    }
    task.gold_entities.emplace_back(e1, e2);
  }

  if (FileExists(dir + "/rel_matches.tsv")) {
    DAAKG_ASSIGN_OR_RETURN(auto rel_pairs,
                           LoadNamePairs(dir + "/rel_matches.tsv"));
    for (const auto& [n1, n2] : rel_pairs) {
      RelationId r1 = task.kg1.FindRelation(n1);
      RelationId r2 = task.kg2.FindRelation(n2);
      if (r1 == kInvalidId || r2 == kInvalidId) {
        return InvalidArgumentError("unknown relation in rel_matches.tsv: " +
                                    n1 + " / " + n2);
      }
      task.gold_relations.emplace_back(r1, r2);
    }
  }

  if (FileExists(dir + "/cls_matches.tsv")) {
    DAAKG_ASSIGN_OR_RETURN(auto cls_pairs,
                           LoadNamePairs(dir + "/cls_matches.tsv"));
    for (const auto& [n1, n2] : cls_pairs) {
      ClassId c1 = task.kg1.FindClass(n1);
      ClassId c2 = task.kg2.FindClass(n2);
      if (c1 == kInvalidId || c2 == kInvalidId) {
        return InvalidArgumentError("unknown class in cls_matches.tsv: " + n1 +
                                    " / " + n2);
      }
      task.gold_classes.emplace_back(c1, c2);
    }
  }

  task.BuildGoldIndex();
  return task;
}

Status SaveAlignmentTask(const AlignmentTask& task, const std::string& dir) {
  DAAKG_RETURN_IF_ERROR(SaveKgToTsv(task.kg1, dir + "/kg1_triples.tsv"));
  DAAKG_RETURN_IF_ERROR(SaveKgToTsv(task.kg2, dir + "/kg2_triples.tsv"));

  std::ostringstream ents;
  for (const auto& [e1, e2] : task.gold_entities) {
    ents << task.kg1.entity_name(e1) << '\t' << task.kg2.entity_name(e2)
         << '\n';
  }
  DAAKG_RETURN_IF_ERROR(
      WriteStringToFile(dir + "/ent_matches.tsv", ents.str()));

  std::ostringstream rels;
  for (const auto& [r1, r2] : task.gold_relations) {
    rels << task.kg1.relation_name(r1) << '\t' << task.kg2.relation_name(r2)
         << '\n';
  }
  DAAKG_RETURN_IF_ERROR(
      WriteStringToFile(dir + "/rel_matches.tsv", rels.str()));

  std::ostringstream clss;
  for (const auto& [c1, c2] : task.gold_classes) {
    clss << task.kg1.class_name(c1) << '\t' << task.kg2.class_name(c2) << '\n';
  }
  return WriteStringToFile(dir + "/cls_matches.tsv", clss.str());
}

}  // namespace daakg
