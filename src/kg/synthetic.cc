#include "kg/synthetic.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"

namespace daakg {
namespace {

// Small word banks so generated names look like real KG labels and lexical
// baselines have n-grams to chew on.
constexpr const char* kNouns[] = {
    "city",   "person",  "album",   "river",  "company", "film",
    "team",   "species", "award",   "event",  "building", "planet",
    "book",   "song",    "island",  "league", "village",  "museum",
    "bridge", "school",  "journal", "engine", "castle",   "region"};
constexpr const char* kVerbs[] = {
    "locatedIn",  "bornIn",     "memberOf",  "authorOf",   "partOf",
    "worksFor",   "marriedTo",  "capitalOf", "flowsInto",  "playsFor",
    "directedBy", "producedBy", "ownedBy",   "foundedBy",  "succeeds",
    "precedes",   "influenced", "educatedAt", "diedIn",    "composedBy",
    "starsIn",    "basedOn",    "namedAfter", "affiliatedWith"};

std::string NounFor(size_t i) {
  return kNouns[i % (sizeof(kNouns) / sizeof(kNouns[0]))];
}
std::string VerbFor(size_t i) {
  return kVerbs[i % (sizeof(kVerbs) / sizeof(kVerbs[0]))];
}

Status ValidateSpec(const SyntheticKgSpec& s) {
  if (s.num_entities1 == 0 || s.num_entities2 == 0) {
    return InvalidArgumentError("entity counts must be positive");
  }
  if (s.num_entities2 > s.num_entities1) {
    return InvalidArgumentError(
        "num_entities2 must not exceed num_entities1 (KG2 is the subset "
        "side)");
  }
  if (s.num_relations1 == 0 || s.num_relations2 == 0 || s.num_classes1 == 0 ||
      s.num_classes2 == 0) {
    return InvalidArgumentError("relation/class counts must be positive");
  }
  if (s.num_relation_matches > std::min(s.num_relations1, s.num_relations2)) {
    return InvalidArgumentError("too many relation matches");
  }
  if (s.num_class_matches > std::min(s.num_classes1, s.num_classes2)) {
    return InvalidArgumentError("too many class matches");
  }
  if (s.avg_degree <= 0.0) {
    return InvalidArgumentError("avg_degree must be positive");
  }
  return Status::Ok();
}

}  // namespace

std::string ObfuscateName(const std::string& name) {
  // Fixed letter substitution (a keyed Caesar-like permutation) plus a
  // suffix; deterministic so re-generation is reproducible, and destroys
  // almost all shared n-grams with the source name.
  static constexpr char kLowerMap[] = "qwertzuiopasdfghjklyxcvbnm";
  std::string out;
  out.reserve(name.size() + 3);
  for (char ch : name) {
    if (ch >= 'a' && ch <= 'z') {
      out.push_back(kLowerMap[ch - 'a']);
    } else if (ch >= 'A' && ch <= 'Z') {
      out.push_back(
          static_cast<char>(kLowerMap[ch - 'A'] - 'a' + 'A'));
    } else if (ch >= '0' && ch <= '9') {
      // Digits carry entity/class indexes; leaving them intact would hand
      // lexical baselines a perfect identifier across "languages".
      out.push_back(static_cast<char>('a' + (ch - '0')));
    } else {
      out.push_back(ch);
    }
  }
  out += "_xx";
  return out;
}

const char* BenchmarkDatasetName(BenchmarkDataset dataset) {
  switch (dataset) {
    case BenchmarkDataset::kDW:
      return "D-W";
    case BenchmarkDataset::kDY:
      return "D-Y";
    case BenchmarkDataset::kEnDe:
      return "EN-DE";
    case BenchmarkDataset::kEnFr:
      return "EN-FR";
  }
  return "?";
}

SyntheticKgSpec BenchmarkSpec(BenchmarkDataset dataset, double scale,
                              uint64_t seed) {
  SyntheticKgSpec spec;
  spec.name = BenchmarkDatasetName(dataset);
  spec.seed = seed;
  spec.num_entities1 = static_cast<size_t>(2000 * scale);
  spec.num_entities2 = static_cast<size_t>(1400 * scale);
  switch (dataset) {
    case BenchmarkDataset::kDW:
      // 413 vs 261 relations, 167 vs 116 classes in the paper; ~1/10 here.
      spec.num_relations1 = 40;
      spec.num_relations2 = 26;
      spec.num_relation_matches = 20;
      spec.num_classes1 = 17;
      spec.num_classes2 = 12;
      spec.num_class_matches = 10;
      spec.name_policy = NamePolicy::kOpaqueIds;
      break;
    case BenchmarkDataset::kDY:
      // 287 vs 32 relations, 13 vs 9 classes: schema-poor second side, few
      // schema matches — the regime where pool recall degrades (Fig. 6).
      spec.num_relations1 = 29;
      spec.num_relations2 = 6;
      spec.num_relation_matches = 4;
      spec.num_classes1 = 13;
      spec.num_classes2 = 9;
      spec.num_class_matches = 6;
      spec.name_policy = NamePolicy::kSharedNames;
      break;
    case BenchmarkDataset::kEnDe:
      spec.num_relations1 = 38;
      spec.num_relations2 = 20;
      spec.num_relation_matches = 16;
      spec.num_classes1 = 15;
      spec.num_classes2 = 10;
      spec.num_class_matches = 8;
      spec.name_policy = NamePolicy::kObfuscated;
      break;
    case BenchmarkDataset::kEnFr:
      spec.num_relations1 = 40;
      spec.num_relations2 = 30;
      spec.num_relation_matches = 24;
      spec.num_classes1 = 17;
      spec.num_classes2 = 12;
      spec.num_class_matches = 10;
      spec.name_policy = NamePolicy::kObfuscated;
      break;
  }
  return spec;
}

StatusOr<AlignmentTask> MakeBenchmarkTask(BenchmarkDataset dataset,
                                          double scale, uint64_t seed) {
  return GenerateSyntheticTask(BenchmarkSpec(dataset, scale, seed));
}

StatusOr<AlignmentTask> GenerateSyntheticTask(const SyntheticKgSpec& spec) {
  DAAKG_RETURN_IF_ERROR(ValidateSpec(spec));
  Rng rng(spec.seed);

  AlignmentTask task;
  task.name = spec.name;
  KnowledgeGraph& kg1 = task.kg1;
  KnowledgeGraph& kg2 = task.kg2;

  // ---- KG1 schema ---------------------------------------------------------
  for (size_t c = 0; c < spec.num_classes1; ++c) {
    kg1.AddClass(StrFormat("Class_%s_%zu", NounFor(c).c_str(), c));
  }
  // Each relation gets a set of domain classes and one range class; edges
  // respect them. Several domain classes per relation (and, below,
  // per-entity relation subsets) give entities individually varied schema
  // fingerprints — without this, all entities of a class would share one
  // signature and the blocking of Sect. 6.1 could not discriminate.
  constexpr size_t kDomainsPerRelation = 3;
  std::vector<ClassId> rel_range(spec.num_relations1);
  std::vector<std::vector<RelationId>> class_relations(spec.num_classes1);
  // Most real KG relations are (near-)functional — birthPlace, capitalOf —
  // and those are precisely the relations whose edges let one match infer
  // another (Example 1.1). 70% of relations allow one edge per head; the
  // rest up to three.
  std::vector<size_t> rel_max_out(spec.num_relations1);
  for (size_t r = 0; r < spec.num_relations1; ++r) {
    kg1.AddRelation(StrFormat("rel_%s_%zu", VerbFor(r).c_str(), r));
    rel_range[r] = static_cast<ClassId>(rng.NextZipf(spec.num_classes1, 1.0));
    rel_max_out[r] = rng.NextBernoulli(0.7) ? 1 : 3;
    for (size_t k = 0; k < kDomainsPerRelation; ++k) {
      ClassId domain =
          static_cast<ClassId>(rng.NextZipf(spec.num_classes1, 0.8));
      class_relations[domain].push_back(static_cast<RelationId>(r));
    }
  }
  for (auto& rels : class_relations) {
    std::sort(rels.begin(), rels.end());
    rels.erase(std::unique(rels.begin(), rels.end()), rels.end());
  }

  // ---- KG1 entities -------------------------------------------------------
  // primary_class[e] drives which relations e may emit and which names it
  // gets; each entity then keeps only a random subset of its class's
  // relations, so two entities of one class still differ in schema.
  std::vector<ClassId> primary_class(spec.num_entities1);
  std::vector<std::vector<EntityId>> class_members(spec.num_classes1);
  std::vector<std::vector<RelationId>> entity_relations(spec.num_entities1);
  for (size_t e = 0; e < spec.num_entities1; ++e) {
    ClassId c = static_cast<ClassId>(rng.NextZipf(spec.num_classes1, 1.0));
    primary_class[e] = c;
    std::string cname = NounFor(c);
    EntityId id = kg1.AddEntity(
        StrFormat("%s_%zu_%04llx", cname.c_str(), e,
                  static_cast<unsigned long long>(rng.NextUint64() & 0xFFFF)));
    class_members[c].push_back(id);
    kg1.AddTypeTriplet(id, c);
    if (rng.NextBernoulli(spec.second_class_prob)) {
      ClassId c2 = static_cast<ClassId>(rng.NextUint64(spec.num_classes1));
      if (c2 != c) kg1.AddTypeTriplet(id, c2);
    }
    const std::vector<RelationId>& cand = class_relations[c];
    if (!cand.empty()) {
      // Between 2 and all of the class's relations, so entities of one
      // class differ in schema while keeping enough edge capacity under
      // the functionality caps.
      const size_t lo = std::min<size_t>(2, cand.size());
      const size_t take = lo + rng.NextUint64(cand.size() - lo + 1);
      std::vector<size_t> picks =
          rng.SampleWithoutReplacement(cand.size(), std::min(take, cand.size()));
      for (size_t p : picks) entity_relations[e].push_back(cand[p]);
    }
  }

  // ---- KG1 edges ----------------------------------------------------------
  // Every entity emits >= 1 edge; total edge count ~ avg_degree * |E1|.
  // Tail drawn by popularity (zipf over the range class members).
  std::vector<Triplet> forward_edges;  // remembered for KG2 derivation
  const size_t total_edges =
      static_cast<size_t>(spec.avg_degree * static_cast<double>(spec.num_entities1));
  size_t edges_made = 0;
  // Edges emitted so far per (head, relation): functionality enforcement.
  std::unordered_map<uint64_t, size_t> out_count;
  for (size_t e = 0; e < spec.num_entities1 || edges_made < total_edges; ++e) {
    if (e >= spec.num_entities1 * 64) break;  // capacity exhausted
    size_t ent = e % spec.num_entities1;
    // First sweep guarantees one edge per entity; subsequent sweeps fill up
    // to the target count with popularity-skewed heads.
    if (e >= spec.num_entities1) {
      ent = rng.NextZipf(spec.num_entities1, spec.popularity_zipf);
    }
    const std::vector<RelationId>& candidates = entity_relations[ent];
    RelationId r =
        candidates.empty()
            ? static_cast<RelationId>(rng.NextUint64(spec.num_relations1))
            : candidates[rng.NextUint64(candidates.size())];
    const uint64_t slot_key = (static_cast<uint64_t>(ent) << 32) | r;
    if (out_count[slot_key] >= rel_max_out[r]) continue;
    const std::vector<EntityId>& pool = class_members[rel_range[r]].empty()
                                            ? class_members[primary_class[ent]]
                                            : class_members[rel_range[r]];
    if (pool.empty()) continue;
    EntityId tail = pool[rng.NextZipf(pool.size(), spec.popularity_zipf)];
    if (tail == static_cast<EntityId>(ent)) continue;
    kg1.AddTriplet(static_cast<EntityId>(ent), r, tail);
    forward_edges.push_back(
        Triplet{static_cast<EntityId>(ent), r, tail});
    ++out_count[slot_key];
    ++edges_made;
  }

  // ---- choose matched elements -------------------------------------------
  // Matched entities: a random subset of E1 of size |E2|; every KG2 entity
  // is matched, KG1 keeps (|E1| - |E2|) dangling entities.
  std::vector<size_t> perm = rng.SampleWithoutReplacement(
      spec.num_entities1, spec.num_entities2);
  std::vector<EntityId> kg2_of_kg1(spec.num_entities1, kInvalidId);

  // Matched relations: the most frequent base relations keep counterparts so
  // KG2 stays connected; the rest of KG2's relation budget is dangling.
  std::vector<size_t> rel_freq(spec.num_relations1, 0);
  for (const Triplet& t : forward_edges) ++rel_freq[t.relation];
  std::vector<size_t> rel_order(spec.num_relations1);
  std::iota(rel_order.begin(), rel_order.end(), 0);
  std::sort(rel_order.begin(), rel_order.end(),
            [&rel_freq](size_t a, size_t b) { return rel_freq[a] > rel_freq[b]; });
  std::vector<RelationId> rel2_of_rel1(spec.num_relations1, kInvalidId);

  std::vector<size_t> cls_freq(spec.num_classes1, 0);
  for (size_t c = 0; c < spec.num_classes1; ++c) {
    cls_freq[c] = class_members[c].size();
  }
  std::vector<size_t> cls_order(spec.num_classes1);
  std::iota(cls_order.begin(), cls_order.end(), 0);
  std::sort(cls_order.begin(), cls_order.end(),
            [&cls_freq](size_t a, size_t b) { return cls_freq[a] > cls_freq[b]; });
  std::vector<ClassId> cls2_of_cls1(spec.num_classes1, kInvalidId);

  // ---- KG2 schema ---------------------------------------------------------
  // kOpaqueIds applies to *entities* only: in the real D-W dataset the
  // Wikidata entities are opaque Q-ids but classes and properties carry
  // English labels (which is why lexical class aligners still work there).
  auto make_name2 = [&spec, &rng](const std::string& name1,
                                  const char* opaque_prefix, size_t index,
                                  bool is_entity) -> std::string {
    NamePolicy policy = spec.name_policy;
    if (policy == NamePolicy::kOpaqueIds && !is_entity) {
      policy = NamePolicy::kSharedNames;
    }
    switch (policy) {
      case NamePolicy::kSharedNames:
        // Light perturbation: same stem, different suffix.
        return name1 + "_y";
      case NamePolicy::kOpaqueIds:
        return StrFormat("%s%zu_%06llu", opaque_prefix, index,
                         static_cast<unsigned long long>(
                             rng.NextUint64(1000000)));
      case NamePolicy::kObfuscated:
        return ObfuscateName(name1);
    }
    return name1;
  };

  for (size_t i = 0; i < spec.num_class_matches; ++i) {
    ClassId c1 = static_cast<ClassId>(cls_order[i]);
    ClassId c2 = kg2.AddClass(
        make_name2(kg1.class_name(c1), "QC", i, /*is_entity=*/false));
    cls2_of_cls1[c1] = c2;
    task.gold_classes.emplace_back(c1, c2);
  }
  for (size_t i = spec.num_class_matches; i < spec.num_classes2; ++i) {
    kg2.AddClass(StrFormat("Class2only_%s_%zu", NounFor(i + 7).c_str(), i));
  }

  for (size_t i = 0; i < spec.num_relation_matches; ++i) {
    RelationId r1 = static_cast<RelationId>(rel_order[i]);
    RelationId r2 = kg2.AddRelation(
        make_name2(kg1.relation_name(r1), "QP", i, /*is_entity=*/false));
    rel2_of_rel1[r1] = r2;
    task.gold_relations.emplace_back(r1, r2);
  }
  std::vector<RelationId> dangling_rels2;
  for (size_t i = spec.num_relation_matches; i < spec.num_relations2; ++i) {
    dangling_rels2.push_back(
        kg2.AddRelation(StrFormat("rel2only_%s_%zu", VerbFor(i + 5).c_str(), i)));
  }

  // ---- KG2 entities -------------------------------------------------------
  for (size_t i = 0; i < spec.num_entities2; ++i) {
    EntityId e1 = static_cast<EntityId>(perm[i]);
    EntityId e2 = kg2.AddEntity(
        make_name2(kg1.entity_name(e1), "Q", i, /*is_entity=*/true));
    kg2_of_kg1[e1] = e2;
    task.gold_entities.emplace_back(e1, e2);
    // Type edges: copy matched-class memberships with type_keep_prob.
    for (ClassId c1 = 0; c1 < spec.num_classes1; ++c1) {
      // Membership copy is driven off the KG1 type triplets below.
      (void)c1;
    }
  }
  // Copy type triplets.
  for (const TypeTriplet& t : kg1.type_triplets()) {
    EntityId e2 = kg2_of_kg1[t.entity];
    if (e2 == kInvalidId) continue;
    ClassId c2 = cls2_of_cls1[t.cls];
    if (c2 == kInvalidId) {
      // Occasionally re-home to a dangling KG2 class so those classes are
      // populated.
      if (spec.num_class_matches < spec.num_classes2 &&
          rng.NextBernoulli(0.5)) {
        ClassId dangling = static_cast<ClassId>(
            spec.num_class_matches +
            rng.NextUint64(spec.num_classes2 - spec.num_class_matches));
        kg2.AddTypeTriplet(e2, dangling);
      }
      continue;
    }
    if (rng.NextBernoulli(spec.type_keep_prob)) {
      kg2.AddTypeTriplet(e2, c2);
    }
  }

  // ---- KG2 edges ----------------------------------------------------------
  size_t copied = 0;
  for (const Triplet& t : forward_edges) {
    EntityId h2 = kg2_of_kg1[t.head];
    EntityId t2 = kg2_of_kg1[t.tail];
    if (h2 == kInvalidId || t2 == kInvalidId) continue;
    RelationId r2 = rel2_of_rel1[t.relation];
    if (r2 == kInvalidId) {
      // Edge of a dangling KG1 relation: sometimes re-label it with a
      // dangling KG2 relation so both sides have unmatched structure.
      if (!dangling_rels2.empty() && rng.NextBernoulli(0.5)) {
        kg2.AddTriplet(h2, dangling_rels2[rng.NextUint64(dangling_rels2.size())],
                       t2);
      }
      continue;
    }
    if (!rng.NextBernoulli(spec.edge_keep_prob)) continue;
    if (rng.NextBernoulli(spec.edge_rewire_prob)) {
      // Rewire the tail to a random KG2 entity (structure noise).
      t2 = static_cast<EntityId>(rng.NextUint64(spec.num_entities2));
    }
    kg2.AddTriplet(h2, r2, t2);
    ++copied;
  }
  // Extra KG2-only edges.
  const size_t extra =
      static_cast<size_t>(spec.extra_edge_frac * static_cast<double>(copied));
  const size_t num_rels2_total = spec.num_relations2;
  for (size_t i = 0; i < extra; ++i) {
    EntityId h = static_cast<EntityId>(rng.NextUint64(spec.num_entities2));
    EntityId t = static_cast<EntityId>(rng.NextUint64(spec.num_entities2));
    if (h == t) continue;
    RelationId r = static_cast<RelationId>(rng.NextUint64(num_rels2_total));
    kg2.AddTriplet(h, r, t);
  }

  DAAKG_RETURN_IF_ERROR(kg1.Finalize());
  DAAKG_RETURN_IF_ERROR(kg2.Finalize());
  task.BuildGoldIndex();
  return task;
}

}  // namespace daakg
