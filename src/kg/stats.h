#ifndef DAAKG_KG_STATS_H_
#define DAAKG_KG_STATS_H_

#include <string>

#include "kg/alignment_task.h"

namespace daakg {

// Summary statistics of one alignment task, mirroring the columns of the
// paper's Table 2.
struct TaskStats {
  std::string name;
  size_t entities1 = 0;
  size_t entities2 = 0;
  size_t relations1 = 0;  // base relations (reverse relations excluded)
  size_t relations2 = 0;
  size_t classes1 = 0;
  size_t classes2 = 0;
  size_t triplets1 = 0;  // forward relational triplets
  size_t triplets2 = 0;
  size_t type_triplets1 = 0;
  size_t type_triplets2 = 0;
  size_t entity_matches = 0;
  size_t relation_matches = 0;
  size_t class_matches = 0;
  double avg_degree1 = 0.0;
  double avg_degree2 = 0.0;
};

TaskStats ComputeTaskStats(const AlignmentTask& task);

// One formatted row (fixed-width) suitable for the Table 2 bench output.
std::string FormatStatsRow(const TaskStats& stats);
std::string StatsHeader();

}  // namespace daakg

#endif  // DAAKG_KG_STATS_H_
