#ifndef DAAKG_KG_IDS_H_
#define DAAKG_KG_IDS_H_

#include <cstdint>
#include <functional>
#include <utility>

namespace daakg {

// Dense integer handles for KG elements. Ids are indexes into per-graph
// arrays; they are only meaningful relative to one KnowledgeGraph.
using EntityId = uint32_t;
using RelationId = uint32_t;
using ClassId = uint32_t;

inline constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

// A relational edge (head, relation, tail) between two entities.
struct Triplet {
  EntityId head;
  RelationId relation;
  EntityId tail;

  bool operator==(const Triplet& o) const {
    return head == o.head && relation == o.relation && tail == o.tail;
  }
};

// A membership edge (entity, type, cls).
struct TypeTriplet {
  EntityId entity;
  ClassId cls;

  bool operator==(const TypeTriplet& o) const {
    return entity == o.entity && cls == o.cls;
  }
};

struct TripletHash {
  size_t operator()(const Triplet& t) const {
    size_t h = t.head;
    h = h * 0x9E3779B1u + t.relation;
    h = h * 0x9E3779B1u + t.tail;
    return h;
  }
};

// Kind of a KG element; element pairs in the active-learning pool carry one.
enum class ElementKind { kEntity = 0, kRelation = 1, kClass = 2 };

const char* ElementKindToString(ElementKind kind);

// A candidate correspondence between an element of KG1 (first) and an
// element of KG2 (second), tagged with its kind.
struct ElementPair {
  ElementKind kind;
  uint32_t first;
  uint32_t second;

  bool operator==(const ElementPair& o) const {
    return kind == o.kind && first == o.first && second == o.second;
  }
};

struct ElementPairHash {
  size_t operator()(const ElementPair& p) const {
    size_t h = static_cast<size_t>(p.kind);
    h = h * 0x9E3779B1u + p.first;
    h = h * 0x9E3779B1u + p.second;
    return h;
  }
};

}  // namespace daakg

#endif  // DAAKG_KG_IDS_H_
