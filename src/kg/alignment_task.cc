#include "kg/alignment_task.h"

#include <algorithm>

#include "common/logging.h"

namespace daakg {

void AlignmentTask::BuildGoldIndex() {
  gold_e1_to_e2_.clear();
  gold_e2_to_e1_.clear();
  gold_r1_to_r2_.clear();
  gold_c1_to_c2_.clear();
  for (const auto& [e1, e2] : gold_entities) {
    gold_e1_to_e2_[e1] = e2;
    gold_e2_to_e1_[e2] = e1;
  }
  for (const auto& [r1, r2] : gold_relations) gold_r1_to_r2_[r1] = r2;
  for (const auto& [c1, c2] : gold_classes) gold_c1_to_c2_[c1] = c2;
}

EntityId AlignmentTask::GoldEntityMatchOf1(EntityId e1) const {
  auto it = gold_e1_to_e2_.find(e1);
  return it == gold_e1_to_e2_.end() ? kInvalidId : it->second;
}

EntityId AlignmentTask::GoldEntityMatchOf2(EntityId e2) const {
  auto it = gold_e2_to_e1_.find(e2);
  return it == gold_e2_to_e1_.end() ? kInvalidId : it->second;
}

RelationId AlignmentTask::GoldRelationMatchOf1(RelationId r1) const {
  auto it = gold_r1_to_r2_.find(r1);
  return it == gold_r1_to_r2_.end() ? kInvalidId : it->second;
}

ClassId AlignmentTask::GoldClassMatchOf1(ClassId c1) const {
  auto it = gold_c1_to_c2_.find(c1);
  return it == gold_c1_to_c2_.end() ? kInvalidId : it->second;
}

bool AlignmentTask::IsGoldRelationMatch(RelationId r1, RelationId r2) const {
  auto it = gold_r1_to_r2_.find(r1);
  return it != gold_r1_to_r2_.end() && it->second == r2;
}

bool AlignmentTask::IsGoldClassMatch(ClassId c1, ClassId c2) const {
  auto it = gold_c1_to_c2_.find(c1);
  return it != gold_c1_to_c2_.end() && it->second == c2;
}

bool AlignmentTask::IsGoldMatch(const ElementPair& pair) const {
  switch (pair.kind) {
    case ElementKind::kEntity:
      return IsGoldEntityMatch(pair.first, pair.second);
    case ElementKind::kRelation:
      return IsGoldRelationMatch(pair.first, pair.second);
    case ElementKind::kClass:
      return IsGoldClassMatch(pair.first, pair.second);
  }
  return false;
}

namespace {

template <typename PairT>
std::vector<PairT> SampleFraction(const std::vector<PairT>& all,
                                  double fraction, Rng* rng) {
  if (all.empty()) return {};
  size_t k = static_cast<size_t>(fraction * static_cast<double>(all.size()));
  k = std::clamp<size_t>(k, 1, all.size());
  std::vector<size_t> idx = rng->SampleWithoutReplacement(all.size(), k);
  std::vector<PairT> out;
  out.reserve(k);
  for (size_t i : idx) out.push_back(all[i]);
  return out;
}

}  // namespace

SeedAlignment AlignmentTask::SampleSeed(double fraction, Rng* rng) const {
  DAAKG_CHECK_GT(fraction, 0.0);
  DAAKG_CHECK_LE(fraction, 1.0);
  SeedAlignment seed;
  seed.entities = SampleFraction(gold_entities, fraction, rng);
  seed.relations = SampleFraction(gold_relations, fraction, rng);
  seed.classes = SampleFraction(gold_classes, fraction, rng);
  return seed;
}

std::vector<std::pair<EntityId, EntityId>> AlignmentTask::TestEntityMatches(
    const SeedAlignment& seed) const {
  std::unordered_map<EntityId, EntityId> in_seed;
  for (const auto& [e1, e2] : seed.entities) in_seed[e1] = e2;
  std::vector<std::pair<EntityId, EntityId>> test;
  test.reserve(gold_entities.size() - seed.entities.size());
  for (const auto& [e1, e2] : gold_entities) {
    auto it = in_seed.find(e1);
    if (it == in_seed.end() || it->second != e2) test.emplace_back(e1, e2);
  }
  return test;
}

}  // namespace daakg
