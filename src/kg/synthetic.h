#ifndef DAAKG_KG_SYNTHETIC_H_
#define DAAKG_KG_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "kg/alignment_task.h"

namespace daakg {

// How KG2 element names relate to KG1 names. Controls how much signal
// lexical baselines (AttrE/MultiKE/BERTMap analogues) get, mirroring the
// real benchmark datasets:
//   kSharedNames — KG2 names are light perturbations of KG1 names
//                  (DBpedia-YAGO: high lexical overlap).
//   kOpaqueIds   — KG2 names are opaque identifiers
//                  (DBpedia-Wikidata: Q-ids carry no lexical signal).
//   kObfuscated  — deterministic character-level "translation" that destroys
//                  n-gram overlap (EN-DE / EN-FR cross-lingual analogues).
enum class NamePolicy { kSharedNames, kOpaqueIds, kObfuscated };

// Parameters of the synthetic KG-pair generator. The generator first builds
// KG1 with class-coherent relational structure (every relation has a domain
// and a range class; tails are drawn from the range class), then derives KG2
// from a subset of KG1's entities with edge noise, producing gold
// entity/relation/class matches as a by-product.
//
// Dangling elements (paper Sect. 4.2 / dataset protocol of [38]):
//   * entities: KG1 has num_entities1 - num_entities2 entities with no
//     counterpart (the paper removes 30% of the second KG);
//   * relations/classes: both sides keep elements without counterparts,
//     controlled by num_relation_matches / num_class_matches.
struct SyntheticKgSpec {
  std::string name = "synthetic";

  size_t num_entities1 = 1000;
  size_t num_entities2 = 700;  // every KG2 entity has a KG1 counterpart
  size_t num_relations1 = 40;
  size_t num_relations2 = 26;
  size_t num_relation_matches = 20;
  size_t num_classes1 = 17;
  size_t num_classes2 = 12;
  size_t num_class_matches = 10;

  double avg_degree = 8.0;      // forward relational edges per KG1 entity
  // Tail-popularity skew. Mild by default: heavily skewed tails make
  // neighborhoods non-discriminative (every entity points at the same few
  // hubs) and the alignment task degenerates.
  double popularity_zipf = 0.4;
  double second_class_prob = 0.3;  // chance an entity has a second class

  double edge_keep_prob = 0.85;   // prob. a copyable KG1 edge appears in KG2
  double edge_rewire_prob = 0.05; // prob. a copied edge's tail is rewired
  double extra_edge_frac = 0.10;  // extra KG2-only edges (fraction of copied)
  double type_keep_prob = 0.90;   // prob. a type edge is copied to KG2

  NamePolicy name_policy = NamePolicy::kSharedNames;
  uint64_t seed = 7;
};

// Generates a full alignment task from `spec`. Returns InvalidArgument on
// inconsistent parameters (e.g. more matches than elements).
StatusOr<AlignmentTask> GenerateSyntheticTask(const SyntheticKgSpec& spec);

// The four benchmark-dataset analogues of the paper's Table 2 (DBpedia-
// Wikidata, DBpedia-YAGO, EN-DE and EN-FR DBpedia). `scale` multiplies the
// entity counts (1.0 => 2000 vs 1400 entities); relation/class counts follow
// the paper's ratios and are only mildly affected by scale.
enum class BenchmarkDataset { kDW, kDY, kEnDe, kEnFr };

const char* BenchmarkDatasetName(BenchmarkDataset dataset);

SyntheticKgSpec BenchmarkSpec(BenchmarkDataset dataset, double scale,
                              uint64_t seed);

StatusOr<AlignmentTask> MakeBenchmarkTask(BenchmarkDataset dataset,
                                          double scale, uint64_t seed);

// Deterministic "translation" used by NamePolicy::kObfuscated; exposed for
// tests. Maps every letter through a fixed substitution and appends a
// language-like suffix, so n-gram similarity with the input collapses.
std::string ObfuscateName(const std::string& name);

}  // namespace daakg

#endif  // DAAKG_KG_SYNTHETIC_H_
