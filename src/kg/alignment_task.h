#ifndef DAAKG_KG_ALIGNMENT_TASK_H_
#define DAAKG_KG_ALIGNMENT_TASK_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "kg/ids.h"
#include "kg/knowledge_graph.h"

namespace daakg {

// A labeled subset of the gold alignment used to train (seed) a model; the
// complement of the entity part is the test set.
struct SeedAlignment {
  std::vector<std::pair<EntityId, EntityId>> entities;
  std::vector<std::pair<RelationId, RelationId>> relations;
  std::vector<std::pair<ClassId, ClassId>> classes;
};

// A KG alignment problem instance: two finalized KGs plus the gold
// entity/relation/class matches between them. This is the unit every model,
// baseline and bench in the repo consumes.
//
// Convention: gold matches always go (KG1 element, KG2 element). Relation
// matches refer to base relations (never synthetic reverse relations).
class AlignmentTask {
 public:
  AlignmentTask() = default;

  AlignmentTask(const AlignmentTask&) = delete;
  AlignmentTask& operator=(const AlignmentTask&) = delete;
  AlignmentTask(AlignmentTask&&) = default;
  AlignmentTask& operator=(AlignmentTask&&) = default;

  std::string name;
  KnowledgeGraph kg1;
  KnowledgeGraph kg2;
  std::vector<std::pair<EntityId, EntityId>> gold_entities;
  std::vector<std::pair<RelationId, RelationId>> gold_relations;
  std::vector<std::pair<ClassId, ClassId>> gold_classes;

  // Builds O(1) gold lookup maps. Call once after filling the gold vectors.
  void BuildGoldIndex();

  // Gold lookups (valid after BuildGoldIndex()). Return kInvalidId when the
  // element is dangling (has no counterpart).
  EntityId GoldEntityMatchOf1(EntityId e1) const;
  EntityId GoldEntityMatchOf2(EntityId e2) const;
  RelationId GoldRelationMatchOf1(RelationId r1) const;
  ClassId GoldClassMatchOf1(ClassId c1) const;

  bool IsGoldEntityMatch(EntityId e1, EntityId e2) const {
    return GoldEntityMatchOf1(e1) == e2 && e2 != kInvalidId;
  }
  bool IsGoldRelationMatch(RelationId r1, RelationId r2) const;
  bool IsGoldClassMatch(ClassId c1, ClassId c2) const;

  // True label of an arbitrary element pair.
  bool IsGoldMatch(const ElementPair& pair) const;

  // Randomly samples a seed alignment containing `fraction` of the gold
  // entity matches and `fraction` of the gold relation/class matches
  // (at least one of each when any exist). Deterministic given `rng`.
  SeedAlignment SampleSeed(double fraction, Rng* rng) const;

  // Gold entity matches not present in `seed` — the standard test set.
  std::vector<std::pair<EntityId, EntityId>> TestEntityMatches(
      const SeedAlignment& seed) const;

 private:
  std::unordered_map<EntityId, EntityId> gold_e1_to_e2_;
  std::unordered_map<EntityId, EntityId> gold_e2_to_e1_;
  std::unordered_map<RelationId, RelationId> gold_r1_to_r2_;
  std::unordered_map<ClassId, ClassId> gold_c1_to_c2_;
};

}  // namespace daakg

#endif  // DAAKG_KG_ALIGNMENT_TASK_H_
