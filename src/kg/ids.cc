#include "kg/ids.h"

namespace daakg {

const char* ElementKindToString(ElementKind kind) {
  switch (kind) {
    case ElementKind::kEntity:
      return "entity";
    case ElementKind::kRelation:
      return "relation";
    case ElementKind::kClass:
      return "class";
  }
  return "?";
}

}  // namespace daakg
