#include "kg/stats.h"

#include "common/string_util.h"

namespace daakg {

TaskStats ComputeTaskStats(const AlignmentTask& task) {
  TaskStats s;
  s.name = task.name;
  s.entities1 = task.kg1.num_entities();
  s.entities2 = task.kg2.num_entities();
  s.relations1 = task.kg1.num_base_relations();
  s.relations2 = task.kg2.num_base_relations();
  s.classes1 = task.kg1.num_classes();
  s.classes2 = task.kg2.num_classes();
  s.triplets1 = task.kg1.num_triplets() / 2;  // forward only
  s.triplets2 = task.kg2.num_triplets() / 2;
  s.type_triplets1 = task.kg1.num_type_triplets();
  s.type_triplets2 = task.kg2.num_type_triplets();
  s.entity_matches = task.gold_entities.size();
  s.relation_matches = task.gold_relations.size();
  s.class_matches = task.gold_classes.size();
  if (s.entities1 > 0) {
    s.avg_degree1 =
        static_cast<double>(s.triplets1) / static_cast<double>(s.entities1);
  }
  if (s.entities2 > 0) {
    s.avg_degree2 =
        static_cast<double>(s.triplets2) / static_cast<double>(s.entities2);
  }
  return s;
}

std::string StatsHeader() {
  return StrFormat("%-8s %18s %14s %12s %12s %10s", "Dataset", "Entities",
                   "Relations", "Classes", "Triplets", "Matches");
}

std::string FormatStatsRow(const TaskStats& s) {
  return StrFormat(
      "%-8s %8zu vs %6zu %6zu vs %4zu %5zu vs %3zu %5zu/%5zu %6zu/%zu/%zu",
      s.name.c_str(), s.entities1, s.entities2, s.relations1, s.relations2,
      s.classes1, s.classes2, s.triplets1, s.triplets2, s.entity_matches,
      s.relation_matches, s.class_matches);
}

}  // namespace daakg
