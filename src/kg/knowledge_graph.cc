#include "kg/knowledge_graph.h"

#include <algorithm>

#include "common/logging.h"

namespace daakg {

EntityId KnowledgeGraph::AddEntity(std::string_view name) {
  DAAKG_CHECK(!finalized_);
  auto it = entity_index_.find(std::string(name));
  if (it != entity_index_.end()) return it->second;
  EntityId id = static_cast<EntityId>(entity_names_.size());
  entity_names_.emplace_back(name);
  entity_index_.emplace(entity_names_.back(), id);
  return id;
}

RelationId KnowledgeGraph::AddRelation(std::string_view name) {
  DAAKG_CHECK(!finalized_);
  auto it = relation_index_.find(std::string(name));
  if (it != relation_index_.end()) return it->second;
  RelationId id = static_cast<RelationId>(relation_names_.size());
  relation_names_.emplace_back(name);
  relation_index_.emplace(relation_names_.back(), id);
  return id;
}

ClassId KnowledgeGraph::AddClass(std::string_view name) {
  DAAKG_CHECK(!finalized_);
  auto it = class_index_.find(std::string(name));
  if (it != class_index_.end()) return it->second;
  ClassId id = static_cast<ClassId>(class_names_.size());
  class_names_.emplace_back(name);
  class_index_.emplace(class_names_.back(), id);
  return id;
}

void KnowledgeGraph::AddTriplet(EntityId head, RelationId relation,
                                EntityId tail) {
  DAAKG_CHECK(!finalized_);
  DAAKG_CHECK_LT(head, entity_names_.size());
  DAAKG_CHECK_LT(relation, relation_names_.size());
  DAAKG_CHECK_LT(tail, entity_names_.size());
  triplets_.push_back(Triplet{head, relation, tail});
}

void KnowledgeGraph::AddTypeTriplet(EntityId entity, ClassId cls) {
  DAAKG_CHECK(!finalized_);
  DAAKG_CHECK_LT(entity, entity_names_.size());
  DAAKG_CHECK_LT(cls, class_names_.size());
  type_triplets_.push_back(TypeTriplet{entity, cls});
}

Status KnowledgeGraph::Finalize() {
  if (finalized_) return FailedPreconditionError("Finalize() called twice");

  num_base_relations_ = relation_names_.size();

  // Materialize a reverse relation r^-1 per base relation (Sect. 4.1) and a
  // reversed copy of every relational triplet.
  reverse_relation_.resize(2 * num_base_relations_);
  for (size_t r = 0; r < num_base_relations_; ++r) {
    RelationId rev = static_cast<RelationId>(relation_names_.size());
    relation_names_.push_back(relation_names_[r] + "^-1");
    relation_index_.emplace(relation_names_.back(), rev);
    reverse_relation_[r] = rev;
    reverse_relation_[rev] = static_cast<RelationId>(r);
  }
  const size_t num_forward = triplets_.size();
  triplets_.reserve(2 * num_forward);
  for (size_t i = 0; i < num_forward; ++i) {
    const Triplet& t = triplets_[i];
    triplets_.push_back(
        Triplet{t.tail, reverse_relation_[t.relation], t.head});
  }

  // Adjacency and relation->pairs indexes.
  adjacency_.assign(entity_names_.size(), {});
  relation_triplets_.assign(relation_names_.size(), {});
  triplet_set_.reserve(triplets_.size() * 2);
  for (const Triplet& t : triplets_) {
    adjacency_[t.head].push_back(Neighbor{t.relation, t.tail});
    relation_triplets_[t.relation].emplace_back(t.head, t.tail);
    triplet_set_[t] = true;
  }

  // Class membership indexes.
  entity_classes_.assign(entity_names_.size(), {});
  class_entities_.assign(class_names_.size(), {});
  for (const TypeTriplet& t : type_triplets_) {
    entity_classes_[t.entity].push_back(t.cls);
    class_entities_[t.cls].push_back(t.entity);
  }
  // Deduplicate memberships (loaders may emit duplicates).
  for (auto& cs : entity_classes_) {
    std::sort(cs.begin(), cs.end());
    cs.erase(std::unique(cs.begin(), cs.end()), cs.end());
  }
  for (auto& es : class_entities_) {
    std::sort(es.begin(), es.end());
    es.erase(std::unique(es.begin(), es.end()), es.end());
  }

  finalized_ = true;
  return Status::Ok();
}

EntityId KnowledgeGraph::FindEntity(std::string_view name) const {
  auto it = entity_index_.find(std::string(name));
  return it == entity_index_.end() ? kInvalidId : it->second;
}

RelationId KnowledgeGraph::FindRelation(std::string_view name) const {
  auto it = relation_index_.find(std::string(name));
  return it == relation_index_.end() ? kInvalidId : it->second;
}

ClassId KnowledgeGraph::FindClass(std::string_view name) const {
  auto it = class_index_.find(std::string(name));
  return it == class_index_.end() ? kInvalidId : it->second;
}

bool KnowledgeGraph::HasTriplet(EntityId head, RelationId relation,
                                EntityId tail) const {
  DAAKG_CHECK(finalized_);
  return triplet_set_.count(Triplet{head, relation, tail}) > 0;
}

bool KnowledgeGraph::HasType(EntityId e, ClassId c) const {
  DAAKG_CHECK(finalized_);
  const auto& cs = entity_classes_[e];
  return std::binary_search(cs.begin(), cs.end(), c);
}

}  // namespace daakg
