#ifndef DAAKG_KG_KNOWLEDGE_GRAPH_H_
#define DAAKG_KG_KNOWLEDGE_GRAPH_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "kg/ids.h"

namespace daakg {

// A knowledge graph G = (E, R, C, T) per Sect. 2.1 of the paper: entities,
// relations, classes, and triplets (relational edges between entities plus
// `type` edges from entities to classes).
//
// Usage: add elements and triplets, then call Finalize() once to build the
// adjacency / membership indexes. Finalize() also materializes a synthetic
// reverse relation r^-1 for every relation and the reversed copy of every
// relational triplet (Sect. 4.1), so downstream negative sampling only ever
// corrupts tails.
class KnowledgeGraph {
 public:
  // An outgoing relational edge as seen from a fixed head entity.
  struct Neighbor {
    RelationId relation;
    EntityId tail;
  };

  KnowledgeGraph() = default;

  // --- construction ------------------------------------------------------

  // Adds (or looks up) an element by unique name and returns its id.
  EntityId AddEntity(std::string_view name);
  RelationId AddRelation(std::string_view name);
  ClassId AddClass(std::string_view name);

  // Adds a relational triplet. Ids must already exist. Duplicate triplets
  // are kept (they are rare and harmless for training).
  void AddTriplet(EntityId head, RelationId relation, EntityId tail);
  // Adds an entity-class membership triplet.
  void AddTypeTriplet(EntityId entity, ClassId cls);

  // Builds adjacency and membership indexes and adds reverse relations /
  // triplets. Must be called exactly once, after all additions.
  Status Finalize();
  bool finalized() const { return finalized_; }

  // --- sizes --------------------------------------------------------------

  size_t num_entities() const { return entity_names_.size(); }
  // Number of relations incl. synthetic reverse relations (after Finalize()).
  size_t num_relations() const { return relation_names_.size(); }
  // Number of relations the user added (excludes reverse relations).
  size_t num_base_relations() const { return num_base_relations_; }
  size_t num_classes() const { return class_names_.size(); }
  // Relational triplets incl. reversed copies (after Finalize()).
  size_t num_triplets() const { return triplets_.size(); }
  size_t num_type_triplets() const { return type_triplets_.size(); }

  // --- lookups ------------------------------------------------------------

  const std::string& entity_name(EntityId e) const { return entity_names_[e]; }
  const std::string& relation_name(RelationId r) const {
    return relation_names_[r];
  }
  const std::string& class_name(ClassId c) const { return class_names_[c]; }

  // Returns kInvalidId if the name is unknown.
  EntityId FindEntity(std::string_view name) const;
  RelationId FindRelation(std::string_view name) const;
  ClassId FindClass(std::string_view name) const;

  // --- structure access (valid after Finalize()) --------------------------

  const std::vector<Triplet>& triplets() const { return triplets_; }
  const std::vector<TypeTriplet>& type_triplets() const {
    return type_triplets_;
  }

  // Outgoing relational edges of `e` (includes reverse edges, so this is
  // effectively the full neighborhood).
  const std::vector<Neighbor>& Neighbors(EntityId e) const {
    return adjacency_[e];
  }

  // Classes `e` belongs to / entities belonging to `c`.
  const std::vector<ClassId>& ClassesOf(EntityId e) const {
    return entity_classes_[e];
  }
  const std::vector<EntityId>& EntitiesOf(ClassId c) const {
    return class_entities_[c];
  }

  // All (head, tail) pairs connected by relation `r`.
  const std::vector<std::pair<EntityId, EntityId>>& TripletsOf(
      RelationId r) const {
    return relation_triplets_[r];
  }

  // Relational degree (in + out, since reverse edges are materialized).
  size_t Degree(EntityId e) const { return adjacency_[e].size(); }

  // For a relation id: its reverse (r <-> r^-1). Identity until Finalize().
  RelationId ReverseOf(RelationId r) const { return reverse_relation_[r]; }
  // True if `r` is a synthetic reverse relation.
  bool IsReverseRelation(RelationId r) const { return r >= num_base_relations_; }

  // True if the relational triplet exists (hash lookup; built in Finalize()).
  bool HasTriplet(EntityId head, RelationId relation, EntityId tail) const;
  // True if entity `e` has class `c`.
  bool HasType(EntityId e, ClassId c) const;

 private:
  std::vector<std::string> entity_names_;
  std::vector<std::string> relation_names_;
  std::vector<std::string> class_names_;
  std::unordered_map<std::string, EntityId> entity_index_;
  std::unordered_map<std::string, RelationId> relation_index_;
  std::unordered_map<std::string, ClassId> class_index_;

  std::vector<Triplet> triplets_;
  std::vector<TypeTriplet> type_triplets_;

  // Built by Finalize().
  std::vector<std::vector<Neighbor>> adjacency_;
  std::vector<std::vector<ClassId>> entity_classes_;
  std::vector<std::vector<EntityId>> class_entities_;
  std::vector<std::vector<std::pair<EntityId, EntityId>>> relation_triplets_;
  std::vector<RelationId> reverse_relation_;
  std::unordered_map<Triplet, bool, TripletHash> triplet_set_;

  size_t num_base_relations_ = 0;
  bool finalized_ = false;
};

}  // namespace daakg

#endif  // DAAKG_KG_KNOWLEDGE_GRAPH_H_
