#ifndef DAAKG_EMBEDDING_TRAINER_H_
#define DAAKG_EMBEDDING_TRAINER_H_

#include "common/rng.h"
#include "embedding/entity_class_model.h"
#include "embedding/kge_model.h"

namespace daakg {

struct KgeTrainStats {
  int epochs = 0;
  double final_er_loss = 0.0;  // mean margin loss over the last epoch
  double final_ec_loss = 0.0;
};

// Margin-ranking trainer for one KG's embedding model: optimizes
// O_er(T) (Eq. 1) over relational triplets and, when an EntityClassModel is
// attached, O_ec(T_type) (Eq. 3) over type triplets in the same epoch loop.
class KgeTrainer {
 public:
  // `ec_model` may be null (ablation "w/o class embeddings" trains only the
  // entity-relation structure).
  KgeTrainer(KgeModel* model, EntityClassModel* ec_model)
      : model_(model), ec_model_(ec_model) {}

  // Runs config().epochs epochs of SGD with per-epoch triplet shuffling,
  // entity renormalization and (for GNN models) aggregation refresh.
  KgeTrainStats Train(Rng* rng);

  // Runs a single epoch; exposed so callers interleaving alignment steps
  // (semi-supervised joint training) can drive the loop themselves.
  void TrainEpoch(Rng* rng, KgeTrainStats* stats);

 private:
  KgeModel* model_;
  EntityClassModel* ec_model_;
};

}  // namespace daakg

#endif  // DAAKG_EMBEDDING_TRAINER_H_
