#ifndef DAAKG_EMBEDDING_ROTATE_H_
#define DAAKG_EMBEDDING_ROTATE_H_

#include <string>

#include "embedding/kge_model.h"

namespace daakg {

// RotatE (Sun et al., 2019): entities are complex vectors (dim/2 complex
// coordinates stored interleaved [re0, im0, re1, im1, ...]); relations are
// element-wise rotations r_k = e^{i theta_k} parameterized by phases.
// f_er(h, r, t) = ||h o r - t||_2 where o is the element-wise complex
// (Hadamard) product.
//
// Phase storage: relations_ row r holds the dim/2 phases in its first dim/2
// slots; the rest is unused. RelationRepr() exposes (cos, sin) pairs so the
// alignment model compares rotations in a smooth space.
class RotatE : public KgeModel {
 public:
  RotatE(const KnowledgeGraph* kg, const KgeConfig& config);

  std::string name() const override { return "rotate"; }

  void Init(Rng* rng) override;

  // Wraps phases into [-pi, pi] (norm clipping is meaningless for angles).
  void NormalizeRelations() override;

  float Score(EntityId head, RelationId relation,
              EntityId tail) const override;

  float TrainPair(const Triplet& pos, EntityId negative_tail,
                  float lr) override;

  // (cos theta_k, sin theta_k) interleaved, dimension == dim.
  Vector RelationRepr(RelationId r) const override;

  // Routes a gradient on the (cos, sin) representation into the phases.
  void BackpropRelationRepr(RelationId r, const Vector& grad,
                            float lr) override;

  // t - h in the shared real space: the translation that the mean-embedding
  // machinery of Eq. (7) averages (it is mapped by A_ent, so it must live
  // in entity space for every model).
  Vector LocalOptimumRelation(EntityId head, EntityId tail) const override;

  // Gradient-solves min over tail embedding from `num_samples` random
  // starts (Eq. 14) and reports the spread as d.
  void EstimateEdgeBound(EntityId head, RelationId relation, EntityId tail,
                         int num_samples, Rng* rng, Vector* r_tilde,
                         float* d) const override;

 private:
  size_t half_dim_;
};

}  // namespace daakg

#endif  // DAAKG_EMBEDDING_ROTATE_H_
