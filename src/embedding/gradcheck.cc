#include "embedding/gradcheck.h"

#include <algorithm>
#include <cmath>

namespace daakg {

Vector NumericalGradient(const std::function<float(const Vector&)>& f,
                         const Vector& x, float eps) {
  Vector grad(x.dim());
  Vector probe = x;
  for (size_t i = 0; i < x.dim(); ++i) {
    const float orig = probe[i];
    probe[i] = orig + eps;
    const float f_plus = f(probe);
    probe[i] = orig - eps;
    const float f_minus = f(probe);
    probe[i] = orig;
    grad[i] = (f_plus - f_minus) / (2.0f * eps);
  }
  return grad;
}

float MaxRelativeError(const Vector& analytic, const Vector& numeric) {
  float max_err = 0.0f;
  float scale = 1.0f;
  for (size_t i = 0; i < analytic.dim(); ++i) {
    scale = std::max(scale, std::fabs(analytic[i]));
  }
  for (size_t i = 0; i < analytic.dim(); ++i) {
    max_err = std::max(max_err, std::fabs(analytic[i] - numeric[i]));
  }
  return max_err / scale;
}

}  // namespace daakg
