#include "embedding/rotate.h"

#include <cmath>

namespace daakg {
namespace {
constexpr float kEps = 1e-8f;
constexpr int kBoundSgdSteps = 25;
constexpr float kBoundSgdLr = 0.3f;
}  // namespace

RotatE::RotatE(const KnowledgeGraph* kg, const KgeConfig& config)
    : KgeModel(kg, config), half_dim_(config.dim / 2) {
  DAAKG_CHECK_EQ(config.dim % 2, 0u);
}

void RotatE::Init(Rng* rng) {
  entities_.InitXavier(rng);
  NormalizeEntities();
  // Phases uniform in [-pi, pi).
  for (size_t r = 0; r < relations_.rows(); ++r) {
    float* row = relations_.RowData(r);
    for (size_t k = 0; k < half_dim_; ++k) {
      row[k] = static_cast<float>(rng->NextDouble(-M_PI, M_PI));
    }
    for (size_t k = half_dim_; k < config_.dim; ++k) row[k] = 0.0f;
  }
}

void RotatE::NormalizeRelations() {
  for (size_t r = 0; r < relations_.rows(); ++r) {
    float* ph = relations_.RowData(r);
    for (size_t k = 0; k < half_dim_; ++k) {
      ph[k] = std::remainder(ph[k], static_cast<float>(2.0 * M_PI));
    }
  }
}

float RotatE::Score(EntityId head, RelationId relation, EntityId tail) const {
  const float* h = entities_.RowData(head);
  const float* ph = relations_.RowData(relation);
  const float* t = entities_.RowData(tail);
  double sq = 0.0;
  for (size_t k = 0; k < half_dim_; ++k) {
    const float c = std::cos(ph[k]);
    const float s = std::sin(ph[k]);
    const float hr_re = h[2 * k] * c - h[2 * k + 1] * s;
    const float hr_im = h[2 * k] * s + h[2 * k + 1] * c;
    const double dre = static_cast<double>(hr_re) - t[2 * k];
    const double dim_ = static_cast<double>(hr_im) - t[2 * k + 1];
    sq += dre * dre + dim_ * dim_;
  }
  return static_cast<float>(std::sqrt(sq));
}

float RotatE::TrainPair(const Triplet& pos, EntityId negative_tail, float lr) {
  const float f_pos = Score(pos.head, pos.relation, pos.tail);
  const float f_neg = Score(pos.head, pos.relation, negative_tail);
  const float loss = config_.margin_er + f_pos - f_neg;
  if (loss <= 0.0f) return 0.0f;

  float* h = entities_.RowData(pos.head);
  float* ph = relations_.RowData(pos.relation);
  float* t = entities_.RowData(pos.tail);
  float* tn = entities_.RowData(negative_tail);
  const float inv_pos = 1.0f / (f_pos + kEps);
  const float inv_neg = 1.0f / (f_neg + kEps);

  for (size_t k = 0; k < half_dim_; ++k) {
    const float c = std::cos(ph[k]);
    const float s = std::sin(ph[k]);
    const float h_re = h[2 * k];
    const float h_im = h[2 * k + 1];
    const float hr_re = h_re * c - h_im * s;
    const float hr_im = h_re * s + h_im * c;

    // Positive-term residuals (towards true tail) and negative-term
    // residuals (away from corrupted tail).
    const float pre = (hr_re - t[2 * k]) * inv_pos;
    const float pim = (hr_im - t[2 * k + 1]) * inv_pos;
    const float nre = (hr_re - tn[2 * k]) * inv_neg;
    const float nim = (hr_im - tn[2 * k + 1]) * inv_neg;
    const float dre = pre - nre;  // d loss / d hr_re
    const float dim_ = pim - nim;

    // Chain rule through the rotation.
    const float gh_re = dre * c + dim_ * s;
    const float gh_im = -dre * s + dim_ * c;
    // d hr / d theta = (-h_re s - h_im c, h_re c - h_im s).
    const float gtheta = dre * (-h_re * s - h_im * c) + dim_ * (h_re * c - h_im * s);

    h[2 * k] -= lr * gh_re;
    h[2 * k + 1] -= lr * gh_im;
    ph[k] -= lr * gtheta;
    t[2 * k] -= lr * (-pre);
    t[2 * k + 1] -= lr * (-pim);
    tn[2 * k] -= lr * nre;
    tn[2 * k + 1] -= lr * nim;
  }
  return loss;
}

Vector RotatE::RelationRepr(RelationId r) const {
  Vector out(config_.dim);
  const float* ph = relations_.RowData(r);
  for (size_t k = 0; k < half_dim_; ++k) {
    out[2 * k] = std::cos(ph[k]);
    out[2 * k + 1] = std::sin(ph[k]);
  }
  return out;
}

void RotatE::BackpropRelationRepr(RelationId r, const Vector& grad,
                                  float lr) {
  // repr_k = (cos theta_k, sin theta_k); d repr / d theta = (-sin, cos).
  float* ph = relations_.RowData(r);
  for (size_t k = 0; k < half_dim_; ++k) {
    const float c = std::cos(ph[k]);
    const float s = std::sin(ph[k]);
    const float g = grad[2 * k] * (-s) + grad[2 * k + 1] * c;
    ph[k] -= lr * g;
  }
}

Vector RotatE::LocalOptimumRelation(EntityId head, EntityId tail) const {
  Vector out(config_.dim);
  const float* h = entities_.RowData(head);
  const float* t = entities_.RowData(tail);
  for (size_t i = 0; i < config_.dim; ++i) out[i] = t[i] - h[i];
  return out;
}

void RotatE::EstimateEdgeBound(EntityId head, RelationId relation,
                               EntityId /*tail*/, int num_samples, Rng* rng,
                               Vector* r_tilde, float* d) const {
  // SGD solutions of min over t of f_er(h, r, t) from random starts
  // (Eq. 14). The objective is convex in t (distance to h o r), so the
  // spread d reflects how far `kBoundSgdSteps` steps get from random
  // initializations — finite-step uncertainty, as in the paper.
  if (num_samples < 1) num_samples = 1;
  std::vector<Vector> solutions;
  solutions.reserve(static_cast<size_t>(num_samples));
  const float* h = entities_.RowData(head);
  const float* ph = relations_.RowData(relation);
  Vector hr(config_.dim);
  for (size_t k = 0; k < half_dim_; ++k) {
    const float c = std::cos(ph[k]);
    const float s = std::sin(ph[k]);
    hr[2 * k] = h[2 * k] * c - h[2 * k + 1] * s;
    hr[2 * k + 1] = h[2 * k] * s + h[2 * k + 1] * c;
  }
  for (int m = 0; m < num_samples; ++m) {
    Vector x(config_.dim);
    x.InitGaussian(rng, 0.5f);
    for (int step = 0; step < kBoundSgdSteps; ++step) {
      // grad of ||hr - x|| wrt x is -(hr - x)/f; descend.
      Vector diff = hr - x;
      float f = diff.Norm() + kEps;
      x.Axpy(kBoundSgdLr / f, diff);
    }
    solutions.push_back(std::move(x));
  }
  Vector mean(config_.dim);
  for (const Vector& s : solutions) mean += s;
  mean /= static_cast<float>(solutions.size());
  float max_dist = 0.0f;
  for (const Vector& s : solutions) {
    max_dist = std::max(max_dist, EuclideanDistance(s, mean));
  }
  Vector rt(config_.dim);
  for (size_t i = 0; i < config_.dim; ++i) rt[i] = mean[i] - h[i];
  *r_tilde = std::move(rt);
  *d = max_dist;
}

}  // namespace daakg
