#include "embedding/compgcn.h"

#include <algorithm>
#include <cmath>

namespace daakg {
namespace {
constexpr float kEps = 1e-8f;
constexpr int kBoundSgdSteps = 25;
constexpr float kBoundSgdLr = 0.2f;
// The weight matrices receive an outer-product update from every training
// pair (thousands per epoch), so their effective learning rate must be far
// below the per-row embedding rate or they drift and destabilize the
// encoded space.
constexpr float kMatrixLrScale = 0.02f;
}  // namespace

CompGcn::CompGcn(const KnowledgeGraph* kg, const KgeConfig& config)
    : KgeModel(kg, config),
      w_self_(config.dim, config.dim),
      w_nbr_(config.dim, config.dim),
      messages_(kg->num_entities(), config.dim),
      sample_rng_(config.seed ^ 0xC0FFEEULL) {}

void CompGcn::Init(Rng* rng) {
  KgeModel::Init(rng);
  // Start near the identity so early training behaves like TransE and the
  // GNN mixing is learned on top.
  w_self_.SetIdentity();
  Matrix noise(config_.dim, config_.dim);
  noise.InitGaussian(rng, 0.02f);
  w_self_ += noise;
  w_nbr_.InitGaussian(rng, 0.05f);
  RefreshAggregation();
}

void CompGcn::RefreshAggregation() {
  const size_t cap = config_.max_neighbors;
  for (size_t e = 0; e < kg_->num_entities(); ++e) {
    const auto& nbrs = kg_->Neighbors(static_cast<EntityId>(e));
    float* msg = messages_.RowData(e);
    std::fill(msg, msg + config_.dim, 0.0f);
    if (nbrs.empty()) continue;
    const size_t take = std::min(cap, nbrs.size());
    for (size_t k = 0; k < take; ++k) {
      // Sample without replacement when truncating; plain scan otherwise.
      const auto& nb = (take == nbrs.size())
                           ? nbrs[k]
                           : nbrs[sample_rng_.NextUint64(nbrs.size())];
      const float* t = entities_.RowData(nb.tail);
      const float* r = relations_.RowData(nb.relation);
      for (size_t i = 0; i < config_.dim; ++i) msg[i] += t[i] - r[i];
    }
    const float inv = 1.0f / static_cast<float>(take);
    for (size_t i = 0; i < config_.dim; ++i) msg[i] *= inv;
  }
}

Vector CompGcn::Encode(EntityId e) const {
  return EncodeBase(entities_.Row(e), e);
}

Vector CompGcn::EncodeBase(const Vector& base, EntityId e) const {
  Vector enc = w_self_.Multiply(base);
  Vector mixed = w_nbr_.Multiply(messages_.Row(e));
  enc += mixed;
  return enc;
}

float CompGcn::Score(EntityId head, RelationId relation, EntityId tail) const {
  Vector eh = Encode(head);
  Vector et = Encode(tail);
  const float* r = relations_.RowData(relation);
  double sq = 0.0;
  for (size_t i = 0; i < config_.dim; ++i) {
    double diff = static_cast<double>(eh[i]) + r[i] - et[i];
    sq += diff * diff;
  }
  return static_cast<float>(std::sqrt(sq));
}

float CompGcn::TrainPair(const Triplet& pos, EntityId negative_tail,
                         float lr) {
  Vector eh = Encode(pos.head);
  Vector et = Encode(pos.tail);
  Vector etn = Encode(negative_tail);
  const float* r = relations_.RowData(pos.relation);

  Vector diff_pos(config_.dim);
  Vector diff_neg(config_.dim);
  double sq_pos = 0.0;
  double sq_neg = 0.0;
  for (size_t i = 0; i < config_.dim; ++i) {
    diff_pos[i] = eh[i] + r[i] - et[i];
    diff_neg[i] = eh[i] + r[i] - etn[i];
    sq_pos += static_cast<double>(diff_pos[i]) * diff_pos[i];
    sq_neg += static_cast<double>(diff_neg[i]) * diff_neg[i];
  }
  const float f_pos = static_cast<float>(std::sqrt(sq_pos));
  const float f_neg = static_cast<float>(std::sqrt(sq_neg));
  const float loss = config_.margin_er + f_pos - f_neg;
  if (loss <= 0.0f) return 0.0f;

  // Unit residuals: g_pos = diff_pos / f_pos, g_neg = diff_neg / f_neg.
  diff_pos *= 1.0f / (f_pos + kEps);
  diff_neg *= 1.0f / (f_neg + kEps);

  // d loss / d enc(h) = g_pos - g_neg; d loss / d enc(t) = -g_pos;
  // d loss / d enc(tn) = +g_neg; d loss / d r = g_pos - g_neg.
  Vector g_h = diff_pos - diff_neg;

  // Relation update.
  float* r_mut = relations_.RowData(pos.relation);
  for (size_t i = 0; i < config_.dim; ++i) r_mut[i] -= lr * g_h[i];

  // Snapshot bases before any update so all gradients are taken at the
  // same point.
  Vector base_h = entities_.Row(pos.head);
  Vector base_t = entities_.Row(pos.tail);
  Vector base_tn = entities_.Row(negative_tail);
  const float wlr = lr * kMatrixLrScale;

  // Base entity updates through the linear encoder: d enc / d base = W_self.
  Vector gb_h = w_self_.TransposeMultiply(g_h);
  Vector gb_t = w_self_.TransposeMultiply(diff_pos);   // note: -g_pos => +
  Vector gb_tn = w_self_.TransposeMultiply(diff_neg);  // +g_neg => -
  entities_.RowAxpy(pos.head, -lr, gb_h);
  entities_.RowAxpy(pos.tail, lr, gb_t);
  entities_.RowAxpy(negative_tail, -lr, gb_tn);

  // Weight matrix updates. d loss / d W_self = g_h h^T - g_pos t^T + g_neg tn^T
  // (with base embeddings); d loss / d W_nbr analogous with messages.
  w_self_.AddOuter(-wlr, g_h, base_h);
  w_self_.AddOuter(wlr, diff_pos, base_t);
  w_self_.AddOuter(-wlr, diff_neg, base_tn);

  Vector msg_h = messages_.Row(pos.head);
  Vector msg_t = messages_.Row(pos.tail);
  Vector msg_tn = messages_.Row(negative_tail);
  w_nbr_.AddOuter(-wlr, g_h, msg_h);
  w_nbr_.AddOuter(wlr, diff_pos, msg_t);
  w_nbr_.AddOuter(-wlr, diff_neg, msg_tn);

  return loss;
}

Vector CompGcn::EntityRepr(EntityId e) const { return Encode(e); }

void CompGcn::BackpropEntityRepr(EntityId e, const Vector& grad, float lr) {
  Vector base_grad = w_self_.TransposeMultiply(grad);
  entities_.RowAxpy(e, -lr, base_grad);
}

Vector CompGcn::LocalOptimumRelation(EntityId head, EntityId tail) const {
  Vector eh = Encode(head);
  Vector et = Encode(tail);
  return et - eh;
}

void CompGcn::EstimateEdgeBound(EntityId head, RelationId relation,
                                EntityId tail, int num_samples, Rng* rng,
                                Vector* r_tilde, float* d) const {
  if (num_samples < 1) num_samples = 1;
  // Solve min over base(t) of ||enc(h) + r - EncodeBase(base, t)|| from
  // random starts (Eq. 14). Gradient wrt base is -W_self^T diff / f.
  Vector eh = Encode(head);
  Vector target = eh + relations_.Row(relation);  // desired enc(t)
  std::vector<Vector> encoded_solutions;
  encoded_solutions.reserve(static_cast<size_t>(num_samples));
  for (int m = 0; m < num_samples; ++m) {
    Vector base(config_.dim);
    base.InitGaussian(rng, 0.5f);
    for (int step = 0; step < kBoundSgdSteps; ++step) {
      Vector enc = EncodeBase(base, tail);
      Vector diff = target - enc;  // = -(enc - target)
      float f = diff.Norm() + kEps;
      Vector grad = w_self_.TransposeMultiply(diff);
      base.Axpy(kBoundSgdLr / f, grad);
    }
    encoded_solutions.push_back(EncodeBase(base, tail));
  }
  Vector mean(config_.dim);
  for (const Vector& s : encoded_solutions) mean += s;
  mean /= static_cast<float>(encoded_solutions.size());
  float max_dist = 0.0f;
  for (const Vector& s : encoded_solutions) {
    max_dist = std::max(max_dist, EuclideanDistance(s, mean));
  }
  // r~ lives in the encoded space, consistent with EntityRepr().
  *r_tilde = mean - eh;
  *d = max_dist;
}

}  // namespace daakg
