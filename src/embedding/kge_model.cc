#include "embedding/kge_model.h"

#include "embedding/compgcn.h"
#include "embedding/rotate.h"
#include "embedding/transe.h"

namespace daakg {

KgeModel::KgeModel(const KnowledgeGraph* kg, const KgeConfig& config)
    : kg_(kg), config_(config) {
  DAAKG_CHECK(kg->finalized());
  entities_ = Matrix(kg->num_entities(), config.dim);
  relations_ = Matrix(kg->num_relations(), config.dim);
}

void KgeModel::Init(Rng* rng) {
  entities_.InitXavier(rng);
  relations_.InitXavier(rng);
  NormalizeEntities();
}

Vector KgeModel::EntityRepr(EntityId e) const { return entities_.Row(e); }

Vector KgeModel::RelationRepr(RelationId r) const { return relations_.Row(r); }

void KgeModel::BackpropEntityRepr(EntityId e, const Vector& grad, float lr) {
  entities_.RowAxpy(e, -lr, grad);
}

void KgeModel::BackpropRelationRepr(RelationId r, const Vector& grad,
                                    float lr) {
  relations_.RowAxpy(r, -lr, grad);
}

void KgeModel::NormalizeEntities() {
  for (size_t e = 0; e < entities_.rows(); ++e) {
    float* row = entities_.RowData(e);
    double sq = 0.0;
    for (size_t i = 0; i < entities_.cols(); ++i) {
      sq += static_cast<double>(row[i]) * row[i];
    }
    double n = std::sqrt(sq);
    if (n > 1.0) {
      float inv = static_cast<float>(1.0 / n);
      for (size_t i = 0; i < entities_.cols(); ++i) row[i] *= inv;
    }
  }
}

void KgeModel::NormalizeRelations() {
  for (size_t r = 0; r < relations_.rows(); ++r) {
    float* row = relations_.RowData(r);
    double sq = 0.0;
    for (size_t i = 0; i < relations_.cols(); ++i) {
      sq += static_cast<double>(row[i]) * row[i];
    }
    const double n = std::sqrt(sq);
    if (n > 2.0) {
      const float inv = static_cast<float>(2.0 / n);
      for (size_t i = 0; i < relations_.cols(); ++i) row[i] *= inv;
    }
  }
}

std::unique_ptr<KgeModel> MakeKgeModel(const std::string& model_name,
                                       const KnowledgeGraph* kg,
                                       const KgeConfig& config) {
  if (model_name == "transe") {
    return std::make_unique<TransE>(kg, config);
  }
  if (model_name == "rotate") {
    return std::make_unique<RotatE>(kg, config);
  }
  if (model_name == "compgcn") {
    return std::make_unique<CompGcn>(kg, config);
  }
  LOG_FATAL << "unknown KGE model: " << model_name;
  return nullptr;
}

}  // namespace daakg
