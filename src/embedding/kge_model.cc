#include "embedding/kge_model.h"

#include "embedding/compgcn.h"
#include "embedding/rotate.h"
#include "embedding/transe.h"

namespace daakg {

KgeModel::KgeModel(const KnowledgeGraph* kg, const KgeConfig& config)
    : kg_(kg), config_(config) {
  DAAKG_CHECK(kg->finalized());
  entities_ = Matrix(kg->num_entities(), config.dim);
  relations_ = Matrix(kg->num_relations(), config.dim);
}

void KgeModel::Init(Rng* rng) {
  entities_.InitXavier(rng);
  relations_.InitXavier(rng);
  NormalizeEntities();
}

Vector KgeModel::EntityRepr(EntityId e) const { return entities_.Row(e); }

Vector KgeModel::RelationRepr(RelationId r) const { return relations_.Row(r); }

void KgeModel::BackpropEntityRepr(EntityId e, const Vector& grad, float lr) {
  entities_.RowAxpy(e, -lr, grad);
}

void KgeModel::BackpropRelationRepr(RelationId r, const Vector& grad,
                                    float lr) {
  relations_.RowAxpy(r, -lr, grad);
}

void KgeModel::NormalizeEntities() {
  for (size_t e = 0; e < entities_.rows(); ++e) {
    float* row = entities_.RowData(e);
    double sq = 0.0;
    for (size_t i = 0; i < entities_.cols(); ++i) {
      sq += static_cast<double>(row[i]) * row[i];
    }
    double n = std::sqrt(sq);
    if (n > 1.0) {
      float inv = static_cast<float>(1.0 / n);
      for (size_t i = 0; i < entities_.cols(); ++i) row[i] *= inv;
    }
  }
}

void KgeModel::NormalizeRelations() {
  for (size_t r = 0; r < relations_.rows(); ++r) {
    float* row = relations_.RowData(r);
    double sq = 0.0;
    for (size_t i = 0; i < relations_.cols(); ++i) {
      sq += static_cast<double>(row[i]) * row[i];
    }
    const double n = std::sqrt(sq);
    if (n > 2.0) {
      const float inv = static_cast<float>(2.0 / n);
      for (size_t i = 0; i < relations_.cols(); ++i) row[i] *= inv;
    }
  }
}

StatusOr<KgeModelKind> ParseKgeModelKind(std::string_view name) {
  if (name == "transe") return KgeModelKind::kTransE;
  if (name == "rotate") return KgeModelKind::kRotatE;
  if (name == "compgcn") return KgeModelKind::kCompGcn;
  return InvalidArgumentError("unknown KGE model: \"" + std::string(name) +
                              "\" (expected transe, rotate, or compgcn)");
}

std::string_view KgeModelKindToString(KgeModelKind kind) {
  switch (kind) {
    case KgeModelKind::kTransE:
      return "transe";
    case KgeModelKind::kRotatE:
      return "rotate";
    case KgeModelKind::kCompGcn:
      return "compgcn";
  }
  return "<invalid>";
}

std::unique_ptr<KgeModel> MakeKgeModel(KgeModelKind kind,
                                       const KnowledgeGraph* kg,
                                       const KgeConfig& config) {
  switch (kind) {
    case KgeModelKind::kTransE:
      return std::make_unique<TransE>(kg, config);
    case KgeModelKind::kRotatE:
      return std::make_unique<RotatE>(kg, config);
    case KgeModelKind::kCompGcn:
      return std::make_unique<CompGcn>(kg, config);
  }
  return nullptr;
}

StatusOr<std::unique_ptr<KgeModel>> MakeKgeModel(const std::string& model_name,
                                                 const KnowledgeGraph* kg,
                                                 const KgeConfig& config) {
  DAAKG_ASSIGN_OR_RETURN(const KgeModelKind kind,
                         ParseKgeModelKind(model_name));
  return MakeKgeModel(kind, kg, config);
}

}  // namespace daakg
