#include "embedding/entity_class_model.h"

#include <cmath>

namespace daakg {
namespace {
constexpr float kEps = 1e-8f;
}  // namespace

EntityClassModel::EntityClassModel(KgeModel* kge, const KgeConfig& config)
    : kge_(kge),
      config_(config),
      projection_(config.class_dim, config.dim),
      scales_(kge->kg().num_classes(), config.class_dim),
      centers_(kge->kg().num_classes(), config.class_dim) {}

void EntityClassModel::Init(Rng* rng) {
  projection_.InitXavier(rng);
  scales_.Fill(1.0f);
  // Small noise so classes start distinguishable.
  Matrix noise(scales_.rows(), scales_.cols());
  noise.InitGaussian(rng, 0.1f);
  scales_ += noise;
  centers_.InitGaussian(rng, 0.1f);
}

Vector EntityClassModel::Project(EntityId e) const {
  return projection_.Multiply(kge_->EntityVec(e));
}

float EntityClassModel::Score(EntityId e, ClassId c) const {
  Vector p = Project(e);
  const float* w = scales_.RowData(c);
  const float* b = centers_.RowData(c);
  double sq = 0.0;
  for (size_t i = 0; i < config_.class_dim; ++i) {
    double z = static_cast<double>(w[i]) * p[i] - b[i];
    sq += z * z;
  }
  return static_cast<float>(std::sqrt(sq));
}

float EntityClassModel::TrainPair(EntityId pos_entity, EntityId neg_entity,
                                  ClassId c, float lr) {
  Vector p_pos = Project(pos_entity);
  Vector p_neg = Project(neg_entity);
  float* w = scales_.RowData(c);
  float* b = centers_.RowData(c);

  Vector z_pos(config_.class_dim);
  Vector z_neg(config_.class_dim);
  double sq_pos = 0.0;
  double sq_neg = 0.0;
  for (size_t i = 0; i < config_.class_dim; ++i) {
    z_pos[i] = w[i] * p_pos[i] - b[i];
    z_neg[i] = w[i] * p_neg[i] - b[i];
    sq_pos += static_cast<double>(z_pos[i]) * z_pos[i];
    sq_neg += static_cast<double>(z_neg[i]) * z_neg[i];
  }
  const float f_pos = static_cast<float>(std::sqrt(sq_pos));
  const float f_neg = static_cast<float>(std::sqrt(sq_neg));
  const float loss = config_.margin_ec + f_pos - f_neg;
  if (loss <= 0.0f) return 0.0f;

  // Unit residuals u = z / f.
  Vector u_pos = z_pos * (1.0f / (f_pos + kEps));
  Vector u_neg = z_neg * (1.0f / (f_neg + kEps));

  // Gradients of loss = f_pos - f_neg (+ margin).
  //   d/d w_i = u_pos_i p_pos_i - u_neg_i p_neg_i
  //   d/d b_i = -u_pos_i + u_neg_i
  //   d/d p   = u (.) w       (then chain into projection and entity)
  Vector gp_pos(config_.class_dim);
  Vector gp_neg(config_.class_dim);
  for (size_t i = 0; i < config_.class_dim; ++i) {
    const float gw = u_pos[i] * p_pos[i] - u_neg[i] * p_neg[i];
    const float gb = -u_pos[i] + u_neg[i];
    gp_pos[i] = u_pos[i] * w[i];
    gp_neg[i] = -u_neg[i] * w[i];
    w[i] -= lr * gw;
    b[i] -= lr * gb;
  }

  // Entity embeddings: d p / d e = P, so g_e = P^T g_p.
  Vector ge_pos = projection_.TransposeMultiply(gp_pos);
  Vector ge_neg = projection_.TransposeMultiply(gp_neg);
  Vector base_pos = kge_->EntityVec(pos_entity);
  Vector base_neg = kge_->EntityVec(neg_entity);
  kge_->mutable_entities()->RowAxpy(pos_entity, -lr, ge_pos);
  kge_->mutable_entities()->RowAxpy(neg_entity, -lr, ge_neg);

  // Projection: d loss / d P = g_p e^T summed over both terms (bases
  // snapshotted above).
  projection_.AddOuter(-lr, gp_pos, base_pos);
  projection_.AddOuter(-lr, gp_neg, base_neg);

  return loss;
}

}  // namespace daakg
