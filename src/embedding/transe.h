#ifndef DAAKG_EMBEDDING_TRANSE_H_
#define DAAKG_EMBEDDING_TRANSE_H_

#include <string>

#include "embedding/kge_model.h"

namespace daakg {

// TransE (Bordes et al., 2013): f_er(h, r, t) = ||h + r - t||_2.
// The geometric workhorse of the paper; also the model whose inference-power
// bounds are exact (Sect. 5.2), since the local-optimum relation vector is
// the relation embedding itself.
class TransE : public KgeModel {
 public:
  TransE(const KnowledgeGraph* kg, const KgeConfig& config)
      : KgeModel(kg, config) {}

  std::string name() const override { return "transe"; }

  float Score(EntityId head, RelationId relation,
              EntityId tail) const override;

  float TrainPair(const Triplet& pos, EntityId negative_tail,
                  float lr) override;

  Vector LocalOptimumRelation(EntityId head, EntityId tail) const override;

  // r~ = r and d = f_er(h, r, t): the residual makes the bound
  // ||t - (h + r~)|| <= d hold exactly (the paper uses d = 0 for TransE;
  // keeping the true residual preserves the inequality and the Table 6
  // ordering).
  void EstimateEdgeBound(EntityId head, RelationId relation, EntityId tail,
                         int num_samples, Rng* rng, Vector* r_tilde,
                         float* d) const override;
};

}  // namespace daakg

#endif  // DAAKG_EMBEDDING_TRANSE_H_
