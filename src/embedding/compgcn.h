#ifndef DAAKG_EMBEDDING_COMPGCN_H_
#define DAAKG_EMBEDDING_COMPGCN_H_

#include <string>
#include <vector>

#include "embedding/kge_model.h"

namespace daakg {

// A single-layer composition-based GNN in the spirit of CompGCN (Vashishth
// et al., 2020), with the subtraction composition operator:
//
//   enc(e) = W_self * e  +  W_nbr * m_e,
//   m_e    = mean over sampled neighbors (r, t) of (t - r),
//   f_er(h, r, t) = || enc(h) + r - enc(t) ||_2.
//
// Two deliberate simplifications versus the full model, both documented in
// DESIGN.md: the encoder is linear (no activation), and the neighborhood
// aggregation m_e is refreshed once per epoch and treated as a constant
// during backpropagation ("stale aggregation"), so gradients flow to the
// entity's own embedding, the relation embeddings and the two weight
// matrices but not through neighbors. This keeps CPU training tractable
// while preserving what the paper exploits: entity representations that mix
// in neighborhood structure.
class CompGcn : public KgeModel {
 public:
  CompGcn(const KnowledgeGraph* kg, const KgeConfig& config);

  std::string name() const override { return "compgcn"; }

  void Init(Rng* rng) override;
  void OnEpochStart() override { RefreshAggregation(); }

  float Score(EntityId head, RelationId relation,
              EntityId tail) const override;

  float TrainPair(const Triplet& pos, EntityId negative_tail,
                  float lr) override;

  // The GNN-encoded representation (what the alignment model compares).
  Vector EntityRepr(EntityId e) const override;

  // Routes a gradient on the encoded representation into the base
  // embedding via W_self^T (stale aggregation: no neighbor gradients).
  void BackpropEntityRepr(EntityId e, const Vector& grad, float lr) override;

  Vector LocalOptimumRelation(EntityId head, EntityId tail) const override;

  void EstimateEdgeBound(EntityId head, RelationId relation, EntityId tail,
                         int num_samples, Rng* rng, Vector* r_tilde,
                         float* d) const override;

  // Recomputes every entity's neighborhood message m_e by sampling up to
  // config().max_neighbors neighbors. Called per epoch; also needed after
  // external edits to the embedding tables.
  void RefreshAggregation();

  const Matrix& w_self() const { return w_self_; }
  const Matrix& w_nbr() const { return w_nbr_; }

 private:
  Vector Encode(EntityId e) const;
  // Encoded vector for an arbitrary base embedding at entity slot `e`
  // (uses e's cached message); used by the bound estimator.
  Vector EncodeBase(const Vector& base, EntityId e) const;

  Matrix w_self_;
  Matrix w_nbr_;
  Matrix messages_;  // num_entities x dim, refreshed per epoch
  Rng sample_rng_;   // used only for neighbor sampling in RefreshAggregation
};

}  // namespace daakg

#endif  // DAAKG_EMBEDDING_COMPGCN_H_
