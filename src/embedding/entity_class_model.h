#ifndef DAAKG_EMBEDDING_ENTITY_CLASS_MODEL_H_
#define DAAKG_EMBEDDING_ENTITY_CLASS_MODEL_H_

#include "embedding/kge_model.h"
#include "kg/knowledge_graph.h"
#include "tensor/matrix.h"
#include "tensor/vector.h"

namespace daakg {

// The entity-class scoring function of Eq. (2):
//
//   f_ec(e, c) = || W_c FFNN(e) - b_c ||,
//
// instantiated with a shared linear projection FFNN(e) = P e (d_e -> d_c)
// and a *diagonal* per-class W_c (a scale vector w_c), matching the paper's
// stated parameter complexity of O(|C| d_c) per class plus d_e d_c for the
// projection. The zero entries of w_c span a free subspace, which is what
// lets many entities satisfy f_ec(e, c) ~ 0 simultaneously (the
// "many-to-one" resolution of Sect. 4.1).
//
// The model reads and writes the entity table of the KgeModel it is
// attached to, so entity-class training shapes the same embeddings the
// entity-relation model trains (joint embedding).
class EntityClassModel {
 public:
  // `kge` must outlive this model.
  EntityClassModel(KgeModel* kge, const KgeConfig& config);

  void Init(Rng* rng);

  const KnowledgeGraph& kg() const { return kge_->kg(); }
  size_t class_dim() const { return config_.class_dim; }

  // f_ec(e, c) >= 0; ~0 when e plausibly belongs to c.
  float Score(EntityId e, ClassId c) const;

  // One SGD step on |margin_ec + f_ec(pos_entity, c) - f_ec(neg_entity, c)|_+
  // (Eq. 3). Returns the pre-step loss.
  float TrainPair(EntityId pos_entity, EntityId neg_entity, ClassId c,
                  float lr);

  // The class representation compared by the alignment model: the subspace
  // center b_c.
  Vector ClassRepr(ClassId c) const { return centers_.Row(c); }

  // One SGD step on a gradient arriving at ClassRepr(c) from the alignment
  // loss.
  void BackpropClassRepr(ClassId c, const Vector& grad, float lr) {
    centers_.RowAxpy(c, -lr, grad);
  }

  const Matrix& projection() const { return projection_; }
  const Matrix& scales() const { return scales_; }
  const Matrix& centers() const { return centers_; }

 private:
  // FFNN(e): projects the (current) base embedding of e.
  Vector Project(EntityId e) const;

  KgeModel* kge_;
  KgeConfig config_;
  Matrix projection_;  // class_dim x dim
  Matrix scales_;      // num_classes x class_dim   (w_c, diagonal of W_c)
  Matrix centers_;     // num_classes x class_dim   (b_c)
};

}  // namespace daakg

#endif  // DAAKG_EMBEDDING_ENTITY_CLASS_MODEL_H_
