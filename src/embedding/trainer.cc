#include "embedding/trainer.h"

#include <numeric>
#include <vector>

#include "embedding/negative_sampler.h"
#include "obs/trace.h"

namespace daakg {

void KgeTrainer::TrainEpoch(Rng* rng, KgeTrainStats* stats) {
  static obs::Histogram* epoch_timing =
      obs::GlobalMetrics().GetHistogram("daakg.embedding.kge_epoch_seconds");
  static obs::Counter* train_steps =
      obs::GlobalMetrics().GetCounter("daakg.embedding.kge_train_steps");
  obs::TraceSpan span("embedding.kge_epoch", "embedding", epoch_timing);
  const KnowledgeGraph& kg = model_->kg();
  const KgeConfig& cfg = model_->config();
  NegativeSampler sampler(&kg);

  model_->OnEpochStart();

  // --- entity-relation pass (Eq. 1) --------------------------------------
  std::vector<size_t> order(kg.triplets().size());
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  double er_loss = 0.0;
  size_t er_steps = 0;
  {
    obs::TraceSpan er_span("embedding.er_pass", "embedding");
    for (size_t idx : order) {
      const Triplet& pos = kg.triplets()[idx];
      for (int k = 0; k < cfg.num_negatives; ++k) {
        EntityId neg = sampler.CorruptTail(pos, rng);
        er_loss += model_->TrainPair(pos, neg, cfg.learning_rate);
        ++er_steps;
      }
    }
    er_span.AddArg("steps", static_cast<double>(er_steps));
  }

  // --- entity-class pass (Eq. 3) ------------------------------------------
  double ec_loss = 0.0;
  size_t ec_steps = 0;
  if (ec_model_ != nullptr) {
    obs::TraceSpan ec_span("embedding.ec_pass", "embedding");
    std::vector<size_t> type_order(kg.type_triplets().size());
    std::iota(type_order.begin(), type_order.end(), 0);
    rng->Shuffle(&type_order);
    for (size_t idx : type_order) {
      const TypeTriplet& tt = kg.type_triplets()[idx];
      for (int k = 0; k < cfg.num_negatives; ++k) {
        EntityId neg = sampler.CorruptEntityOfClass(tt.cls, rng);
        ec_loss +=
            ec_model_->TrainPair(tt.entity, neg, tt.cls, cfg.learning_rate);
        ++ec_steps;
      }
    }
    ec_span.AddArg("steps", static_cast<double>(ec_steps));
  }

  model_->NormalizeEntities();
  model_->NormalizeRelations();

  train_steps->Increment(er_steps + ec_steps);
  ++stats->epochs;
  stats->final_er_loss = er_steps > 0 ? er_loss / static_cast<double>(er_steps) : 0.0;
  stats->final_ec_loss = ec_steps > 0 ? ec_loss / static_cast<double>(ec_steps) : 0.0;
}

KgeTrainStats KgeTrainer::Train(Rng* rng) {
  KgeTrainStats stats;
  for (int epoch = 0; epoch < model_->config().epochs; ++epoch) {
    TrainEpoch(rng, &stats);
  }
  return stats;
}

}  // namespace daakg
