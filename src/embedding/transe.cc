#include "embedding/transe.h"

#include <cmath>

namespace daakg {
namespace {
constexpr float kEps = 1e-8f;
}  // namespace

float TransE::Score(EntityId head, RelationId relation, EntityId tail) const {
  const float* h = entities_.RowData(head);
  const float* r = relations_.RowData(relation);
  const float* t = entities_.RowData(tail);
  double sq = 0.0;
  for (size_t i = 0; i < config_.dim; ++i) {
    double diff = static_cast<double>(h[i]) + r[i] - t[i];
    sq += diff * diff;
  }
  return static_cast<float>(std::sqrt(sq));
}

float TransE::TrainPair(const Triplet& pos, EntityId negative_tail, float lr) {
  const float f_pos = Score(pos.head, pos.relation, pos.tail);
  const float f_neg = Score(pos.head, pos.relation, negative_tail);
  const float loss = config_.margin_er + f_pos - f_neg;
  if (loss <= 0.0f) return 0.0f;

  float* h = entities_.RowData(pos.head);
  float* r = relations_.RowData(pos.relation);
  float* t = entities_.RowData(pos.tail);
  float* tn = entities_.RowData(negative_tail);

  const float inv_pos = 1.0f / (f_pos + kEps);
  const float inv_neg = 1.0f / (f_neg + kEps);
  for (size_t i = 0; i < config_.dim; ++i) {
    // d f_pos/d(h,r) = g_pos, d f_pos/d t = -g_pos; the negative term enters
    // with opposite sign.
    const float g_pos = (h[i] + r[i] - t[i]) * inv_pos;
    const float g_neg = (h[i] + r[i] - tn[i]) * inv_neg;
    const float gh = g_pos - g_neg;
    h[i] -= lr * gh;
    r[i] -= lr * gh;
    t[i] -= lr * (-g_pos);
    tn[i] -= lr * g_neg;
  }
  return loss;
}

Vector TransE::LocalOptimumRelation(EntityId head, EntityId tail) const {
  Vector out(config_.dim);
  const float* h = entities_.RowData(head);
  const float* t = entities_.RowData(tail);
  for (size_t i = 0; i < config_.dim; ++i) out[i] = t[i] - h[i];
  return out;
}

void TransE::EstimateEdgeBound(EntityId head, RelationId relation,
                               EntityId tail, int /*num_samples*/,
                               Rng* /*rng*/, Vector* r_tilde,
                               float* d) const {
  *r_tilde = relations_.Row(relation);
  *d = Score(head, relation, tail);
}

}  // namespace daakg
