#include "embedding/negative_sampler.h"

namespace daakg {
namespace {
constexpr int kMaxRejections = 16;
}  // namespace

EntityId NegativeSampler::CorruptTail(const Triplet& triplet, Rng* rng) const {
  const size_t n = kg_->num_entities();
  for (int attempt = 0; attempt < kMaxRejections; ++attempt) {
    EntityId cand = static_cast<EntityId>(rng->NextUint64(n));
    if (cand == triplet.tail) continue;
    if (!kg_->HasTriplet(triplet.head, triplet.relation, cand)) return cand;
  }
  // Dense tiny graph: accept any different entity.
  EntityId cand = static_cast<EntityId>(rng->NextUint64(n));
  if (cand == triplet.tail) cand = static_cast<EntityId>((cand + 1) % n);
  return cand;
}

EntityId NegativeSampler::CorruptEntityOfClass(ClassId c, Rng* rng) const {
  const size_t n = kg_->num_entities();
  for (int attempt = 0; attempt < kMaxRejections; ++attempt) {
    EntityId cand = static_cast<EntityId>(rng->NextUint64(n));
    if (!kg_->HasType(cand, c)) return cand;
  }
  return static_cast<EntityId>(rng->NextUint64(n));
}

}  // namespace daakg
