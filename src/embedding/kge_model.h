#ifndef DAAKG_EMBEDDING_KGE_MODEL_H_
#define DAAKG_EMBEDDING_KGE_MODEL_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/rng.h"
#include "common/status.h"
#include "kg/knowledge_graph.h"
#include "tensor/matrix.h"
#include "tensor/vector.h"

namespace daakg {

// The entity-relation embedding geometries this library implements
// (paper Sect. 4.1).
enum class KgeModelKind {
  kTransE,
  kRotatE,
  kCompGcn,
};

// Parses a config-file model name ("transe", "rotate", "compgcn";
// case-sensitive). Unknown names yield InvalidArgumentError.
StatusOr<KgeModelKind> ParseKgeModelKind(std::string_view name);

// Canonical config-file spelling of `kind`.
std::string_view KgeModelKindToString(KgeModelKind kind);

// Hyper-parameters shared by the entity-relation embedding models. Paper
// defaults (Sect. 7.1), scaled-down dimensions for CPU training.
struct KgeConfig {
  size_t dim = 64;        // entity & relation embedding dimension
  size_t class_dim = 16;  // entity-class subspace dimension (paper: 50)
  float margin_er = 1.0f;  // lambda_er in Eq. (1)
  float margin_ec = 1.0f;  // lambda_ec in Eq. (3)
  float learning_rate = 0.05f;
  int num_negatives = 4;   // corrupted tails per positive
  int epochs = 20;  // warm-start epochs before joint training
  uint64_t seed = 13;
  // CompGCN only: neighbors sampled into the aggregation per entity.
  size_t max_neighbors = 12;
};

// Base class of the entity-relation embedding models (TransE, RotatE,
// CompGCN). Implements shared parameter storage (one row per entity /
// relation); subclasses define the scoring geometry f_er and its analytic
// gradients.
//
// Contract (paper Sect. 4.1): for a triplet (h, r, t) in the KG,
// Score(h,r,t) ~ 0; for corrupted triplets, Score > 0. Scores are
// non-negative distances.
class KgeModel {
 public:
  KgeModel(const KnowledgeGraph* kg, const KgeConfig& config);
  virtual ~KgeModel() = default;

  KgeModel(const KgeModel&) = delete;
  KgeModel& operator=(const KgeModel&) = delete;

  virtual std::string name() const = 0;

  const KnowledgeGraph& kg() const { return *kg_; }
  const KgeConfig& config() const { return config_; }
  size_t dim() const { return config_.dim; }

  // Randomly initializes all parameters.
  virtual void Init(Rng* rng);

  // Distance-style score f_er(h, r, t) >= 0.
  virtual float Score(EntityId head, RelationId relation,
                      EntityId tail) const = 0;

  // One SGD step on the margin-ranking pair: descends
  //   |margin + f(pos) - f(pos with corrupted tail)|_+        (Eq. 1)
  // and returns the pre-step loss value.
  virtual float TrainPair(const Triplet& pos, EntityId negative_tail,
                          float lr) = 0;

  // Hook called by the trainer at every epoch start (CompGCN refreshes its
  // neighborhood aggregation here).
  virtual void OnEpochStart() {}

  // Representation of an entity used by the alignment model. For geometric
  // models this is the base embedding; CompGCN returns the GNN-encoded
  // vector.
  virtual Vector EntityRepr(EntityId e) const;

  // Representation of a relation used by the alignment model.
  virtual Vector RelationRepr(RelationId r) const;

  // Chain-rule hooks for gradients arriving at the alignment-facing
  // representations (EntityRepr / RelationRepr): apply one SGD step to the
  // underlying parameters. Defaults update the base embedding rows
  // directly; CompGCN routes entity gradients through W_self, RotatE routes
  // relation gradients through the (cos, sin) parameterization.
  virtual void BackpropEntityRepr(EntityId e, const Vector& grad, float lr);
  virtual void BackpropRelationRepr(RelationId r, const Vector& grad,
                                    float lr);

  // The local-optimum relation vector for an edge (h, ?, t): the r~
  // minimizing f_er(h, r, t) over r, expressed in entity space (Eq. 7 uses
  // a weighted mean of these).
  virtual Vector LocalOptimumRelation(EntityId head, EntityId tail) const = 0;

  // Estimates the difference vector r~ and error bound d of Eqs. (13)-(14)
  // for the edge (head, relation, tail): the tail embedding satisfies
  // ||t - (h + r~)|| <= d. For exact-geometry models (TransE) d == 0; deep
  // models sample `num_samples` SGD solutions (Eq. 14).
  virtual void EstimateEdgeBound(EntityId head, RelationId relation,
                                 EntityId tail, int num_samples, Rng* rng,
                                 Vector* r_tilde, float* d) const = 0;

  // --- raw parameter access (used by the entity-class model and the
  // --- alignment model, which co-train entity embeddings) ---------------
  const Matrix& entities() const { return entities_; }
  Matrix* mutable_entities() { return &entities_; }
  const Matrix& relations() const { return relations_; }
  Matrix* mutable_relations() { return &relations_; }

  Vector EntityVec(EntityId e) const { return entities_.Row(e); }
  Vector RelationVec(RelationId r) const { return relations_.Row(r); }

  // Renormalizes entity embeddings onto the unit ball (called by the
  // trainer between epochs; standard for translational models).
  void NormalizeEntities();

  // Bounds relation parameters between epochs. Margin-ranking losses
  // otherwise inflate relation norms (a larger ||r|| widens the pos/neg
  // score gap for free), which wrecks the geometric bounds of Sect. 5.
  // Default: clip relation rows to norm <= 2 (the diameter of the entity
  // ball); RotatE instead wraps its phases into [-pi, pi].
  virtual void NormalizeRelations();

 protected:
  const KnowledgeGraph* kg_;
  KgeConfig config_;
  Matrix entities_;   // num_entities x dim
  Matrix relations_;  // num_relations x dim (incl. reverse relations)
};

// Factory by model kind. Never fails for a valid enumerator; an
// out-of-range value (e.g. from a blind cast) returns nullptr rather than
// aborting.
std::unique_ptr<KgeModel> MakeKgeModel(KgeModelKind kind,
                                       const KnowledgeGraph* kg,
                                       const KgeConfig& config);

// Factory by config-file model name: "transe", "rotate", "compgcn".
// Unknown names flow back as InvalidArgumentError instead of LOG_FATAL.
StatusOr<std::unique_ptr<KgeModel>> MakeKgeModel(const std::string& model_name,
                                                 const KnowledgeGraph* kg,
                                                 const KgeConfig& config);

}  // namespace daakg

#endif  // DAAKG_EMBEDDING_KGE_MODEL_H_
