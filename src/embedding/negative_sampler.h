#ifndef DAAKG_EMBEDDING_NEGATIVE_SAMPLER_H_
#define DAAKG_EMBEDDING_NEGATIVE_SAMPLER_H_

#include "common/rng.h"
#include "kg/knowledge_graph.h"

namespace daakg {

// Draws corrupted tails for margin-ranking training (the fake triplet sets
// T~ and T~_type of Eqs. 1 and 3). Because reverse triplets are
// materialized, corrupting tails suffices (Sect. 4.1).
class NegativeSampler {
 public:
  explicit NegativeSampler(const KnowledgeGraph* kg) : kg_(kg) {}

  // A random entity t' such that (h, r, t') is not in the KG. Falls back to
  // an arbitrary different entity after a bounded number of rejections
  // (relevant only for tiny graphs).
  EntityId CorruptTail(const Triplet& triplet, Rng* rng) const;

  // A random entity e' that does not belong to class c.
  EntityId CorruptEntityOfClass(ClassId c, Rng* rng) const;

 private:
  const KnowledgeGraph* kg_;
};

}  // namespace daakg

#endif  // DAAKG_EMBEDDING_NEGATIVE_SAMPLER_H_
