#ifndef DAAKG_EMBEDDING_GRADCHECK_H_
#define DAAKG_EMBEDDING_GRADCHECK_H_

#include <functional>

#include "tensor/vector.h"

namespace daakg {

// Finite-difference gradient checking utilities used by the property tests
// to validate every analytic gradient in the embedding stack.

// Central-difference numerical gradient of `f` at `x`.
Vector NumericalGradient(const std::function<float(const Vector&)>& f,
                         const Vector& x, float eps = 1e-3f);

// Max absolute elementwise difference, normalized by max(1, |a|_inf).
float MaxRelativeError(const Vector& analytic, const Vector& numeric);

}  // namespace daakg

#endif  // DAAKG_EMBEDDING_GRADCHECK_H_
