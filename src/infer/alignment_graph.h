#ifndef DAAKG_INFER_ALIGNMENT_GRAPH_H_
#define DAAKG_INFER_ALIGNMENT_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kg/alignment_task.h"
#include "kg/ids.h"

namespace daakg {

// The alignment graph G x_P G' of Sect. 5.1: nodes are the element pairs of
// the pool P; a directed edge connects entity pair (x, x') to pair
// (x'', x''') labeled by relation pair (r, r') whenever (x, r, x'') is a
// triplet of KG1, (x', r', x''') is a triplet of KG2, and all three pairs
// are in the pool. Type edges (entity pair -> class pair) carry the special
// label kTypeLabel.
//
// Reverse relations are materialized in the KGs, so the graph is naturally
// "bidirectional": the reverse edge appears with the reverse relation pair.
class AlignmentGraph {
 public:
  static constexpr uint32_t kTypeLabel = 0xFFFFFFFFu;

  struct Edge {
    uint32_t target;      // pool index of the target pair
    uint32_t rel_pair;    // pool index of the relation pair label, or kTypeLabel
  };

  // Builds the graph over `pool`. Relation pairs in the pool may refer to
  // base or reverse relations of KG1/KG2; edges are created for both
  // directions when the corresponding reverse pair is present (a relation
  // pair (r1, r2) implicitly licenses (r1^-1, r2^-1) edges).
  AlignmentGraph(const AlignmentTask* task,
                 const std::vector<ElementPair>& pool);

  const std::vector<ElementPair>& pool() const { return pool_; }
  size_t num_nodes() const { return pool_.size(); }
  size_t num_edges() const { return num_edges_; }

  // Pool index of `pair`, or kInvalidId.
  uint32_t IndexOf(const ElementPair& pair) const;

  // Outgoing edges of pool node `node`.
  const std::vector<Edge>& Out(uint32_t node) const { return out_[node]; }

  // All (source, target) node pairs labeled by relation-pair node
  // `rel_pair_node` (used by Eqs. 20 and 22).
  const std::vector<std::pair<uint32_t, uint32_t>>& EdgesOfRelationPair(
      uint32_t rel_pair_node) const;

  // Original KG ids behind an edge label: maps a pool relation-pair index
  // to (r1, r2).
  const AlignmentTask& task() const { return *task_; }

 private:
  const AlignmentTask* task_;
  std::vector<ElementPair> pool_;
  std::unordered_map<ElementPair, uint32_t, ElementPairHash> index_;
  std::vector<std::vector<Edge>> out_;
  std::unordered_map<uint32_t, std::vector<std::pair<uint32_t, uint32_t>>>
      rel_pair_edges_;
  size_t num_edges_ = 0;
};

}  // namespace daakg

#endif  // DAAKG_INFER_ALIGNMENT_GRAPH_H_
