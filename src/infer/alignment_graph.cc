#include "infer/alignment_graph.h"

#include "common/logging.h"

namespace daakg {

AlignmentGraph::AlignmentGraph(const AlignmentTask* task,
                               const std::vector<ElementPair>& pool)
    : task_(task), pool_(pool) {
  index_.reserve(pool_.size() * 2);
  for (uint32_t i = 0; i < pool_.size(); ++i) {
    index_.emplace(pool_[i], i);
  }
  out_.assign(pool_.size(), {});

  const KnowledgeGraph& kg1 = task_->kg1;
  const KnowledgeGraph& kg2 = task_->kg2;

  // Maps a (possibly reverse) relation id to the base id its pool pair is
  // stored under.
  auto base1 = [&kg1](RelationId r) {
    return kg1.IsReverseRelation(r) ? kg1.ReverseOf(r) : r;
  };
  auto base2 = [&kg2](RelationId r) {
    return kg2.IsReverseRelation(r) ? kg2.ReverseOf(r) : r;
  };

  for (uint32_t node = 0; node < pool_.size(); ++node) {
    const ElementPair& pair = pool_[node];
    if (pair.kind != ElementKind::kEntity) continue;
    const EntityId e1 = pair.first;
    const EntityId e2 = pair.second;

    // Relational edges: matching outgoing edges on both sides whose
    // relation pair and target pair are in the pool. Both edges must be of
    // the same direction (forward-forward or reverse-reverse) for the
    // labeled relation pair to make sense.
    for (const auto& n1 : kg1.Neighbors(e1)) {
      const bool rev1 = kg1.IsReverseRelation(n1.relation);
      const ElementPair rel_key{ElementKind::kRelation, base1(n1.relation), 0};
      for (const auto& n2 : kg2.Neighbors(e2)) {
        if (kg2.IsReverseRelation(n2.relation) != rev1) continue;
        auto rel_it = index_.find(ElementPair{ElementKind::kRelation,
                                              rel_key.first,
                                              base2(n2.relation)});
        if (rel_it == index_.end()) continue;
        auto tgt_it = index_.find(
            ElementPair{ElementKind::kEntity, n1.tail, n2.tail});
        if (tgt_it == index_.end()) continue;
        out_[node].push_back(Edge{tgt_it->second, rel_it->second});
        rel_pair_edges_[rel_it->second].emplace_back(node, tgt_it->second);
        ++num_edges_;
      }
    }

    // Type edges to class pairs.
    for (ClassId c1 : kg1.ClassesOf(e1)) {
      for (ClassId c2 : kg2.ClassesOf(e2)) {
        auto it = index_.find(ElementPair{ElementKind::kClass, c1, c2});
        if (it == index_.end()) continue;
        out_[node].push_back(Edge{it->second, kTypeLabel});
        ++num_edges_;
      }
    }
  }
}

uint32_t AlignmentGraph::IndexOf(const ElementPair& pair) const {
  auto it = index_.find(pair);
  return it == index_.end() ? kInvalidId : it->second;
}

const std::vector<std::pair<uint32_t, uint32_t>>&
AlignmentGraph::EdgesOfRelationPair(uint32_t rel_pair_node) const {
  static const std::vector<std::pair<uint32_t, uint32_t>>* empty =
      new std::vector<std::pair<uint32_t, uint32_t>>();
  auto it = rel_pair_edges_.find(rel_pair_node);
  return it == rel_pair_edges_.end() ? *empty : it->second;
}

}  // namespace daakg
