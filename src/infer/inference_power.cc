#include "infer/inference_power.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_set>

#include "common/thread_pool.h"
#include "obs/trace.h"

namespace daakg {
namespace {
constexpr float kInfCost = std::numeric_limits<float>::infinity();
}  // namespace

InferenceEngine::InferenceEngine(const AlignmentGraph* graph,
                                 const JointAlignmentModel* model,
                                 const InferenceConfig& config)
    : graph_(graph), model_(model), config_(config), rng_(config.seed) {
  DAAKG_CHECK(model->caches_ready());
  obs::MetricsRegistry& metrics = obs::GlobalMetrics();
  power_from_calls_ = metrics.GetCounter("daakg.infer.power_from_calls");
  power_entries_ = metrics.GetCounter("daakg.infer.power_entries");
  precompute_timing_ =
      metrics.GetHistogram("daakg.infer.precompute_edge_costs_seconds");
}

float AlternativeEntitySlack(size_t parallel_edges1, size_t parallel_edges2) {
  // Signed arithmetic, clamped per side: a count of zero (the resolved
  // relation has no parallel edge at this head) must contribute no slack,
  // not wrap a size_t to ~1.8e19 and blow up the edge cost.
  const int64_t alt1 =
      std::max<int64_t>(0, static_cast<int64_t>(parallel_edges1) - 1);
  const int64_t alt2 =
      std::max<int64_t>(0, static_cast<int64_t>(parallel_edges2) - 1);
  return static_cast<float>(alt1 + alt2);
}

void InferenceEngine::ResolveEdgeRelations(const ElementPair& src,
                                           const ElementPair& dst,
                                           const ElementPair& rel,
                                           RelationId* r1,
                                           RelationId* r2) const {
  // Resolve the actual (possibly reverse) relations behind the labeled pair.
  const KnowledgeGraph& kg1 = graph_->task().kg1;
  const KnowledgeGraph& kg2 = graph_->task().kg2;
  *r1 = rel.first;
  if (!kg1.HasTriplet(src.first, *r1, dst.first)) *r1 = kg1.ReverseOf(*r1);
  *r2 = rel.second;
  if (!kg2.HasTriplet(src.second, *r2, dst.second)) *r2 = kg2.ReverseOf(*r2);
}

void InferenceEngine::EnsureBound(int side, EntityId head, RelationId rel,
                                  EntityId tail) {
  auto& cache = side == 1 ? bounds1_ : bounds2_;
  const Triplet key{head, rel, tail};
  if (cache.find(key) != cache.end()) return;
  const KgeModel& model =
      side == 1 ? *model_->kg1_model() : *model_->kg2_model();
  EdgeBound bound;
  model.EstimateEdgeBound(head, rel, tail, config_.bound_samples, &rng_,
                          &bound.r_tilde, &bound.d);
  cache.emplace(key, std::move(bound));
}

const InferenceEngine::EdgeBound& InferenceEngine::BoundFor(
    int side, EntityId head, RelationId rel, EntityId tail) const {
  const auto& cache = side == 1 ? bounds1_ : bounds2_;
  auto it = cache.find(Triplet{head, rel, tail});
  // Every reachable bound is populated by PrecomputeEdgeCosts; a miss here
  // would be a concurrent cache mutation under ParallelFor, which is
  // exactly the race this lookup-only design rules out.
  DAAKG_CHECK(it != cache.end());
  return it->second;
}

float InferenceEngine::ComputeEdgeCost(uint32_t node,
                                       const AlignmentGraph::Edge& edge) const {
  if (edge.rel_pair == AlignmentGraph::kTypeLabel) return kInfCost;
  const ElementPair& src = graph_->pool()[node];
  const ElementPair& dst = graph_->pool()[edge.target];
  const ElementPair& rel = graph_->pool()[edge.rel_pair];
  const KnowledgeGraph& kg1 = graph_->task().kg1;
  const KnowledgeGraph& kg2 = graph_->task().kg2;

  RelationId r1, r2;
  ResolveEdgeRelations(src, dst, rel, &r1, &r2);

  const EdgeBound& b1 = BoundFor(1, src.first, r1, dst.first);
  const EdgeBound& b2 = BoundFor(2, src.second, r2, dst.second);

  // The relation-difference term of Eq. (15). Raw Euclidean distance
  // between r~ vectors mixes magnitude effects that the cosine-trained
  // mapping never controls; the joint model's calibrated relation
  // similarity is the same quantity on a clean [0, 2] scale (angle of
  // A_rel r~ vs r~'), so we use 1 - S(r, r') and keep the sampled bound
  // direction only through the d terms.
  const RelationId r1b = kg1.IsReverseRelation(r1) ? kg1.ReverseOf(r1) : r1;
  const RelationId r2b = kg2.IsReverseRelation(r2) ? kg2.ReverseOf(r2) : r2;
  const float rel_diff =
      config_.rel_diff_weight * (1.0f - model_->relation_sim()(r1b, r2b)) +
      config_.residual_weight * (b1.d + b2.d);

  // The d terms of Eq. (15) must cover "the size of the space of possible
  // entities" (Sect. 5.2): when the head emits several edges with the same
  // relation, the bound cannot single out the tail. Score residuals alone
  // do not see this, so each parallel edge beyond the first adds a unit of
  // slack (the alternative-entity condition made explicit).
  auto parallel_edges = [](const KnowledgeGraph& kg, EntityId h,
                           RelationId r) {
    size_t n = 0;
    for (const auto& nb : kg.Neighbors(h)) n += (nb.relation == r);
    return n;
  };
  const float alternatives =
      AlternativeEntitySlack(parallel_edges(kg1, src.first, r1),
                             parallel_edges(kg2, src.second, r2));
  return rel_diff + config_.alt_penalty * alternatives;
}

void InferenceEngine::PrecomputeEdgeCosts() {
  obs::TraceSpan span("infer.precompute_edge_costs", "infer",
                      precompute_timing_);
  const size_t n = graph_->num_nodes();
  span.AddArg("nodes", static_cast<double>(n));

  // Phase 1: populate the bound caches for every triplet any later cost or
  // power computation resolves to. Graph edges and the per-relation-pair
  // edge lists resolve to the same triplets, but both are walked so the
  // "read-only after precompute" invariant is explicit rather than
  // incidental. Sequential: EstimateEdgeBound consumes rng_.
  auto ensure_edge_bounds = [this](const ElementPair& src,
                                   const ElementPair& dst,
                                   const ElementPair& rel) {
    RelationId r1, r2;
    ResolveEdgeRelations(src, dst, rel, &r1, &r2);
    EnsureBound(1, src.first, r1, dst.first);
    EnsureBound(2, src.second, r2, dst.second);
  };
  {
    obs::TraceSpan bounds_span("infer.edge_bounds", "infer");
    for (uint32_t node = 0; node < n; ++node) {
      for (const AlignmentGraph::Edge& edge : graph_->Out(node)) {
        if (edge.rel_pair == AlignmentGraph::kTypeLabel) continue;
        ensure_edge_bounds(graph_->pool()[node], graph_->pool()[edge.target],
                           graph_->pool()[edge.rel_pair]);
      }
    }
    for (uint32_t node = 0; node < n; ++node) {
      if (graph_->pool()[node].kind != ElementKind::kRelation) continue;
      for (const auto& [from, to] : graph_->EdgesOfRelationPair(node)) {
        ensure_edge_bounds(graph_->pool()[from], graph_->pool()[to],
                           graph_->pool()[node]);
      }
    }
  }

  // Phase 2: per-edge costs against the now read-only caches (parallel).
  {
    obs::TraceSpan costs_span("infer.edge_costs", "infer");
    costs_.assign(n, {});
    GlobalThreadPool().ParallelFor(n, [this](size_t node) {
      const auto& out = graph_->Out(static_cast<uint32_t>(node));
      auto& row = costs_[node];
      row.resize(out.size());
      for (size_t k = 0; k < out.size(); ++k) {
        row[k] = ComputeEdgeCost(static_cast<uint32_t>(node), out[k]);
      }
    });
  }

  cost_scale_ = 1.0f;
  if (config_.auto_calibrate_costs) {
    std::vector<float> finite;
    for (const auto& row : costs_) {
      for (float c : row) {
        if (std::isfinite(c)) finite.push_back(c);
      }
    }
    if (!finite.empty()) {
      const size_t idx = static_cast<size_t>(
          config_.calibration_percentile *
          static_cast<double>(finite.size() - 1));
      std::nth_element(finite.begin(),
                       finite.begin() + static_cast<ptrdiff_t>(idx),
                       finite.end());
      const float reference = std::max(finite[idx], 1e-4f);
      // Map the reference cost to power ~0.9 (cost 1/9).
      cost_scale_ = std::clamp((1.0f / 9.0f) / reference, 1e-3f, 1e3f);
      for (auto& row : costs_) {
        for (float& c : row) {
          if (std::isfinite(c)) c *= cost_scale_;
        }
      }
    }
  }
  costs_ready_ = true;
}

float InferenceEngine::EdgeCost(uint32_t node, size_t edge_index) const {
  DAAKG_CHECK(costs_ready_);
  return costs_[node][edge_index];
}

PowerRow InferenceEngine::PowerFrom(uint32_t src) const {
  DAAKG_CHECK(costs_ready_);
  power_from_calls_->Increment();
  PowerRow out;
  const ElementPair& src_pair = graph_->pool()[src];
  const float max_cost =
      static_cast<float>(1.0 / config_.power_floor - 1.0) + 1e-6f;

  if (src_pair.kind == ElementKind::kEntity) {
    // --- path powers to entity pairs (Eq. 19), mu-hop bounded -------------
    std::unordered_map<uint32_t, float> best;
    std::unordered_map<uint32_t, float> frontier{{src, 0.0f}};
    best[src] = 0.0f;
    for (int hop = 0; hop < config_.max_hops && !frontier.empty(); ++hop) {
      std::unordered_map<uint32_t, float> next;
      for (const auto& [node, cost] : frontier) {
        const auto& edges = graph_->Out(node);
        for (size_t k = 0; k < edges.size(); ++k) {
          const float c = costs_[node][k];
          if (!std::isfinite(c)) continue;
          const float nc = cost + c;
          if (nc > max_cost) continue;
          const uint32_t tgt = edges[k].target;
          auto it = best.find(tgt);
          if (it == best.end() || nc < it->second) {
            best[tgt] = nc;
            next[tgt] = nc;
          }
        }
      }
      frontier = std::move(next);
    }
    for (const auto& [node, cost] : best) {
      if (node == src) continue;
      const float power = 1.0f / (1.0f + cost);
      if (power > config_.power_floor) out.emplace_back(node, power);
    }

    // --- 1-hop gradient powers (Eqs. 21-22) --------------------------------
    std::unordered_map<uint32_t, float> schema_power;
    const auto& edges = graph_->Out(src);
    for (size_t k = 0; k < edges.size(); ++k) {
      const AlignmentGraph::Edge& e = edges[k];
      if (e.rel_pair == AlignmentGraph::kTypeLabel) {
        const float p =
            PowerEntityToClass(src_pair, graph_->pool()[e.target]);
        auto& slot = schema_power[e.target];
        slot = std::max(slot, p);
      } else {
        const float p = PowerEntityToRelation(
            src_pair, graph_->pool()[e.rel_pair], graph_->pool()[e.target]);
        auto& slot = schema_power[e.rel_pair];
        slot = std::max(slot, p);
      }
    }
    for (const auto& [node, power] : schema_power) {
      if (power > config_.power_floor) out.emplace_back(node, power);
    }
    power_entries_->Increment(out.size());
    return out;
  }

  if (src_pair.kind == ElementKind::kRelation) {
    // Eq. (20): with (r, r') labeled a match, the relation-difference term
    // vanishes; inference reaches targets of edges labeled (r, r') whose
    // source entity pair is a likely match.
    std::unordered_map<uint32_t, float> target_power;
    for (const auto& [from, to] : graph_->EdgesOfRelationPair(src)) {
      if (model_->MatchProbability(graph_->pool()[from]) <
          config_.likely_match_prob) {
        continue;
      }
      // Locate the edge to read its d-components: recompute cost without
      // the relation term by subtracting it is not possible from the cached
      // scalar, so recompute the d-only cost directly.
      const ElementPair& sp = graph_->pool()[from];
      const ElementPair& tp = graph_->pool()[to];
      RelationId r1, r2;
      ResolveEdgeRelations(sp, tp, src_pair, &r1, &r2);
      const EdgeBound& b1 = BoundFor(1, sp.first, r1, tp.first);
      const EdgeBound& b2 = BoundFor(2, sp.second, r2, tp.second);
      // Same units as the path costs: the labeled relation match zeroes
      // the relation-difference term, leaving the weighted residuals.
      const float power =
          1.0f / (1.0f + cost_scale_ * config_.residual_weight *
                             (b1.d + b2.d));
      auto& slot = target_power[to];
      slot = std::max(slot, power);
    }
    for (const auto& [node, power] : target_power) {
      if (power > config_.power_floor) out.emplace_back(node, power);
    }
    power_entries_->Increment(out.size());
    return out;
  }

  // Class-pair sources: no outgoing inference defined (Sect. 5.2).
  return out;
}

std::vector<InferenceEngine::OneHopPower> InferenceEngine::OneHopPowers(
    uint32_t node) const {
  DAAKG_CHECK(costs_ready_);
  std::vector<OneHopPower> out;
  const ElementPair& src = graph_->pool()[node];
  if (src.kind != ElementKind::kEntity) return out;
  const auto& edges = graph_->Out(node);
  out.reserve(edges.size());
  for (size_t k = 0; k < edges.size(); ++k) {
    const AlignmentGraph::Edge& e = edges[k];
    float power;
    if (e.rel_pair == AlignmentGraph::kTypeLabel) {
      power = PowerEntityToClass(src, graph_->pool()[e.target]);
    } else {
      power = 1.0f / (1.0f + costs_[node][k]);
    }
    if (power > 0.0f) {
      out.push_back(OneHopPower{e.target, e.rel_pair, power});
    }
  }
  return out;
}

float InferenceEngine::PowerEntityToClass(const ElementPair& entity_pair,
                                          const ElementPair& class_pair) const {
  // Eq. (21): || grad_{e, e'} S(c, c') ||, which is non-zero only through
  // the mean-embedding branch of S(c, c').
  const KnowledgeGraph& kg1 = graph_->task().kg1;
  const KnowledgeGraph& kg2 = graph_->task().kg2;
  const EntityId e1 = entity_pair.first;
  const EntityId e2 = entity_pair.second;
  const ClassId c1 = class_pair.first;
  const ClassId c2 = class_pair.second;
  const bool member1 = kg1.HasType(e1, c1);
  const bool member2 = kg2.HasType(e2, c2);
  if (!member1 && !member2) return 0.0f;

  Vector u = model_->a_ent().Multiply(model_->ClassMean1(c1));
  const Vector& v = model_->ClassMean2(c2);
  Vector du;
  Vector dv;
  const float s_mean = CosineWithGradients(u, v, &du, &dv);
  // Subgradient through max(): if the class-embedding branch wins, the
  // entity gradient is zero.
  const float s_full = model_->class_sim()(c1, c2);
  if (s_full > s_mean + 1e-6f) return 0.0f;

  double sq = 0.0;
  if (member1 && model_->ClassMeanWeightSum1(c1) > 0.0) {
    const float coef = model_->EntityWeight1(e1) /
                       static_cast<float>(model_->ClassMeanWeightSum1(c1));
    Vector g = model_->a_ent().TransposeMultiply(du);
    g *= coef;
    sq += static_cast<double>(g.SquaredNorm());
  }
  if (member2 && model_->ClassMeanWeightSum2(c2) > 0.0) {
    const float coef = model_->EntityWeight2(e2) /
                       static_cast<float>(model_->ClassMeanWeightSum2(c2));
    Vector g = dv * coef;
    sq += static_cast<double>(g.SquaredNorm());
  }
  return std::min(1.0f, static_cast<float>(std::sqrt(sq)));
}

float InferenceEngine::PowerEntityToRelation(
    const ElementPair& entity_pair, const ElementPair& rel_pair,
    const ElementPair& target_pair) const {
  // Eq. (22): || grad_{e''-e, e'''-e'} S(r, r') || through the
  // mean-embedding branch of S(r, r').
  const RelationId r1 = rel_pair.first;
  const RelationId r2 = rel_pair.second;
  Vector u = model_->a_ent().Multiply(model_->RelationMean1(r1));
  const Vector& v = model_->RelationMean2(r2);
  Vector du;
  Vector dv;
  const float s_mean = CosineWithGradients(u, v, &du, &dv);
  const float s_full = model_->relation_sim()(r1, r2);
  if (s_full > s_mean + 1e-6f) return 0.0f;

  double sq = 0.0;
  if (model_->RelationMeanWeightSum1(r1) > 0.0) {
    const float w = std::min(model_->EntityWeight1(entity_pair.first),
                             model_->EntityWeight1(target_pair.first));
    const float coef =
        w / static_cast<float>(model_->RelationMeanWeightSum1(r1));
    Vector g = model_->a_ent().TransposeMultiply(du);
    g *= coef;
    sq += static_cast<double>(g.SquaredNorm());
  }
  if (model_->RelationMeanWeightSum2(r2) > 0.0) {
    const float w = std::min(model_->EntityWeight2(entity_pair.second),
                             model_->EntityWeight2(target_pair.second));
    const float coef =
        w / static_cast<float>(model_->RelationMeanWeightSum2(r2));
    Vector g = dv * coef;
    sq += static_cast<double>(g.SquaredNorm());
  }
  return std::min(1.0f, static_cast<float>(std::sqrt(sq)));
}

}  // namespace daakg
