#ifndef DAAKG_INFER_INFERENCE_POWER_H_
#define DAAKG_INFER_INFERENCE_POWER_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "align/joint_model.h"
#include "infer/alignment_graph.h"
#include "obs/metrics.h"

namespace daakg {

struct InferenceConfig {
  int max_hops = 5;        // mu: path length cap (Sect. 5.2)
  double kappa = 0.8;      // inference-power threshold of Eq. (23)
  double power_floor = 0.5;  // powers below this are not recorded
  int bound_samples = 3;   // m: SGD restarts in Eq. (14)
  // Probability above which a pool entity pair counts as a likely match
  // when evaluating Eq. (20) (relation-pair sources).
  double likely_match_prob = 0.5;
  // When true (default), path costs are rescaled after precomputation so
  // the 20th-percentile edge reaches power ~0.9. The paper's absolute
  // kappa = 0.8 presumes fully converged GPU-scale embeddings whose score
  // residuals approach 0; CPU-scale training leaves a constant residual
  // floor, so the *ranking* of bounds is meaningful but the absolute scale
  // must be calibrated (see DESIGN.md).
  bool auto_calibrate_costs = true;
  double calibration_percentile = 0.02;
  // Edge-cost composition (see InferenceEngine::ComputeEdgeCost): weights
  // of the relation-difference term, the sampled residual bounds, and the
  // per-parallel-edge alternative-entity penalty.
  float rel_diff_weight = 2.0f;
  float residual_weight = 0.2f;
  float alt_penalty = 1.0f;
  uint64_t seed = 41;
};

// A sparse row of inference powers: (pool node index, I(q'|q)).
using PowerRow = std::vector<std::pair<uint32_t, float>>;

// The alternative-entity slack term of Eq. (15): each parallel edge beyond
// the first adds one unit of slack. Counts are clamped per side, so a
// resolved (possibly reverse) relation with zero parallel edges contributes
// nothing instead of wrapping the unsigned subtraction to ~1.8e19.
float AlternativeEntitySlack(size_t parallel_edges1, size_t parallel_edges2);

// Computes the structure-based and gradient-based inference powers of
// Sect. 5.2 on top of an alignment graph and a trained joint model.
//
// Path-based powers (entity pair -> entity pair, Eqs. 13-19) use per-edge
// costs c = ||A_rel r~ - r~'|| + d + d' and a mu-hop bounded shortest-path
// search. Summing per-edge costs upper-bounds the paper's path difference
// (which norms the summed difference vectors), so the reported power is a
// conservative lower bound — see DESIGN.md.
class InferenceEngine {
 public:
  // All pointees must outlive the engine; `model` must have fresh caches.
  InferenceEngine(const AlignmentGraph* graph, const JointAlignmentModel* model,
                  const InferenceConfig& config);

  const AlignmentGraph& graph() const { return *graph_; }
  const InferenceConfig& config() const { return config_; }

  // Precomputes every relational edge's cost. First populates the per-side
  // edge-bound caches for every triplet any cost or power computation can
  // reach (sequentially — bound estimation consumes the engine's RNG), then
  // computes costs in parallel against the now read-only caches. Must be
  // called before any power query.
  void PrecomputeEdgeCosts();

  // Cost of the k-th outgoing edge of `node` (kTypeLabel edges have no
  // path cost and return +inf).
  float EdgeCost(uint32_t node, size_t edge_index) const;

  // I(q'|q) for all pool pairs q' with power > power_floor, for a
  // hypothetical newly-labeled match at pool node `src`:
  //  * entity-pair source: mu-hop path powers to entity pairs (Eq. 19)
  //    plus 1-hop gradient powers to class pairs (Eq. 21) and to incident
  //    relation pairs (Eq. 22);
  //  * relation-pair source: Eq. (20) over edges labeled by it whose
  //    source entity pair is a likely match;
  //  * class-pair source: none (the paper defines no outgoing inference
  //    from class pairs).
  PowerRow PowerFrom(uint32_t src) const;

  // A labeled one-hop power entry: one outgoing alignment-graph edge of a
  // node, with its relation-pair label (kTypeLabel for type edges) and the
  // 1-hop inference power along it.
  struct OneHopPower {
    uint32_t target;
    uint32_t label;
    float power;
  };

  // All 1-hop powers from `node`: path power 1/(1+cost) along relational
  // edges, gradient power (Eq. 21) along type edges. Used by the
  // graph-partitioning selection (Algorithm 2).
  std::vector<OneHopPower> OneHopPowers(uint32_t node) const;

  // Gradient-based powers, exposed for tests and the Table 6 bench.
  float PowerEntityToClass(const ElementPair& entity_pair,
                           const ElementPair& class_pair) const;  // Eq. 21
  float PowerEntityToRelation(const ElementPair& entity_pair,
                              const ElementPair& rel_pair,
                              const ElementPair& target_pair) const;  // Eq. 22

 private:
  // (r~, d) of Eqs. (13)-(14) for one KG edge, cached per side.
  struct EdgeBound {
    Vector r_tilde;
    float d;
  };
  // Resolves the actual (possibly reverse) relations behind the labeled
  // relation pair `rel` of an edge src -> dst.
  void ResolveEdgeRelations(const ElementPair& src, const ElementPair& dst,
                            const ElementPair& rel, RelationId* r1,
                            RelationId* r2) const;
  // Estimates and caches the bound for one KG edge if absent. Only called
  // from PrecomputeEdgeCosts (single-threaded): estimation consumes rng_.
  void EnsureBound(int side, EntityId head, RelationId rel, EntityId tail);
  // Read-only cache lookup; DAAKG_CHECK-fails on a miss. PowerFrom and
  // ComputeEdgeCost run under ParallelFor, so this must never mutate —
  // PrecomputeEdgeCosts pre-populates every reachable key.
  const EdgeBound& BoundFor(int side, EntityId head, RelationId rel,
                            EntityId tail) const;
  float ComputeEdgeCost(uint32_t node, const AlignmentGraph::Edge& edge) const;

  const AlignmentGraph* graph_;
  const JointAlignmentModel* model_;
  InferenceConfig config_;
  Rng rng_;

  // Metric handles hoisted at construction: PowerFrom() runs inside
  // ParallelFor, so the registry's registration mutex must stay off the
  // per-call path.
  obs::Counter* power_from_calls_;
  obs::Counter* power_entries_;
  obs::Histogram* precompute_timing_;

  // costs_[node][k] parallels graph_->Out(node).
  std::vector<std::vector<float>> costs_;
  float cost_scale_ = 1.0f;  // see auto_calibrate_costs
  bool costs_ready_ = false;

  // Written only by PrecomputeEdgeCosts; read-only afterwards (BoundFor).
  std::unordered_map<Triplet, EdgeBound, TripletHash> bounds1_;
  std::unordered_map<Triplet, EdgeBound, TripletHash> bounds2_;
};

}  // namespace daakg

#endif  // DAAKG_INFER_INFERENCE_POWER_H_
