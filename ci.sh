#!/usr/bin/env bash
# Tier-1 verification, three times over: a plain release build, an
# ASan+UBSan build, and a TSan build focused on the concurrent paths
# (thread pool, blocked kernels, pool generation, selection, IVF k-means).
# A SIMD backend matrix leg then re-runs the kernel-sensitive subset under
# DAAKG_SIMD=scalar and the dispatched default to pin down cross-backend
# determinism of pool, matching and selection outputs, and a candidate-index
# matrix leg re-runs the index subset under DAAKG_INDEX=exact and =ivf.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

# Opt-in bench regression gate: `./ci.sh bench-diff` rebuilds the two
# machine-readable benches, re-runs them into a scratch dir, and fails if
# throughput / recall regress >15% against the committed baselines
# (BENCH_kernels.json, BENCH_index.json). Kept out of the default legs
# because bench runs are minutes-long and noisy on loaded machines.
if [ "${1:-}" = "bench-diff" ]; then
  echo "== bench regression gate =="
  cmake -B build -S .
  cmake --build build -j "$JOBS" --target micro_kernels fig6_pool_recall
  FRESH="$(mktemp -d)"
  trap 'rm -rf "$FRESH"' EXIT
  ./build/bench/micro_kernels \
    --benchmark_out="$FRESH/kernels.json" --benchmark_out_format=json
  ./build/bench/fig6_pool_recall --index_json="$FRESH/index.json"
  python3 tools/bench_diff.py kernels BENCH_kernels.json "$FRESH/kernels.json"
  python3 tools/bench_diff.py index BENCH_index.json "$FRESH/index.json"
  echo "ci.sh bench-diff: all green"
  exit 0
fi

echo "== release build =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== SIMD backend matrix (scalar vs dispatched) =="
KERNEL_FILTER='KernelTest.*:TopKAccumulatorTest.*:SimdTest.*'
POOL_FILTER='ActiveTest.GeneratedPoolMatchesBruteForceMutualTopN:ActiveTest.RepeatedSelectionIsDeterministic'
ALIGN_FILTER='MetricsTest.*:JointModelTest.Incremental*'
for backend in scalar ""; do
  if [ -n "$backend" ]; then
    echo "-- DAAKG_SIMD=$backend --"
  else
    echo "-- dispatched default --"
  fi
  DAAKG_SIMD="$backend" ./build/tests/tensor_test --gtest_filter="$KERNEL_FILTER"
  DAAKG_SIMD="$backend" ./build/tests/active_test --gtest_filter="$POOL_FILTER"
  DAAKG_SIMD="$backend" ./build/tests/align_test --gtest_filter="$ALIGN_FILTER"
done

echo "== candidate-index backend matrix (exact vs ivf) =="
# The process-wide DAAKG_INDEX override only steers kAuto call sites; the
# index tests pin explicit backends where bit-parity is asserted, so the
# whole suite must hold under either override (plus pool parity, whose
# default-config generator follows the override).
for index_backend in exact ivf; do
  echo "-- DAAKG_INDEX=$index_backend --"
  DAAKG_INDEX="$index_backend" ./build/tests/index_test
  DAAKG_INDEX="$index_backend" ./build/tests/active_test \
    --gtest_filter='ActiveTest.GeneratedPoolMatchesBruteForceMutualTopN:ActiveTest.RepeatedGenerateReusesCachedIndex:ActiveTest.IvfPool*'
done

echo "== sanitizer build (ASan+UBSan) =="
cmake -B build-asan -S . -DDAAKG_SANITIZE=ON
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== sanitizer build (TSan, concurrency-heavy tests) =="
cmake -B build-tsan -S . -DDAAKG_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target common_test tensor_test active_test infer_test align_test index_test obs_test
./build-tsan/tests/common_test --gtest_filter='ThreadPoolTest.*'
# Concurrent span emission across ParallelFor fan-out, session start/stop
# races against in-flight writers, and the pool telemetry counters.
./build-tsan/tests/obs_test --gtest_filter='TraceTest.*:PoolTelemetryTest.*'
./build-tsan/tests/tensor_test --gtest_filter='KernelTest.*:TopKAccumulatorTest.*:SimdTest.*'
./build-tsan/tests/active_test --gtest_filter='ActiveTest.GeneratedPoolMatchesBruteForceMutualTopN:ActiveTest.RepeatedSelectionIsDeterministic'
./build-tsan/tests/infer_test --gtest_filter='InferTest.PowerFromEveryNodeConcurrently'
./build-tsan/tests/align_test --gtest_filter='JointModelTest.Incremental*:MetricsTest.Streaming*'
# Parallel k-means assignment + sharded IVF queries (row-parallel writers).
./build-tsan/tests/index_test --gtest_filter='IvfIndexTest.*:ExactIndexTest.QueryTopKMatchesBlockedSimTopK:ExactIndexTest.GreedyMatchingParity'

echo "ci.sh: all green"
