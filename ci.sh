#!/usr/bin/env bash
# Tier-1 verification, three times over: a plain release build, an
# ASan+UBSan build, and a TSan build focused on the concurrent paths
# (thread pool, blocked kernels, pool generation, selection).
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

echo "== release build =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== sanitizer build (ASan+UBSan) =="
cmake -B build-asan -S . -DDAAKG_SANITIZE=ON
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== sanitizer build (TSan, concurrency-heavy tests) =="
cmake -B build-tsan -S . -DDAAKG_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target common_test tensor_test active_test infer_test
./build-tsan/tests/common_test --gtest_filter='ThreadPoolTest.*'
./build-tsan/tests/tensor_test --gtest_filter='KernelTest.*:TopKAccumulatorTest.*'
./build-tsan/tests/active_test --gtest_filter='ActiveTest.GeneratedPoolMatchesBruteForceMutualTopN:ActiveTest.RepeatedSelectionIsDeterministic'
./build-tsan/tests/infer_test --gtest_filter='InferTest.PowerFromEveryNodeConcurrently'

echo "ci.sh: all green"
