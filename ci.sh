#!/usr/bin/env bash
# Tier-1 verification, twice: a plain release build and an ASan+UBSan build.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

echo "== release build =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== sanitizer build (ASan+UBSan) =="
cmake -B build-asan -S . -DDAAKG_SANITIZE=ON
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "ci.sh: all green"
