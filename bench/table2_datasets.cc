// Reproduces Table 2: statistics of the four benchmark dataset analogues.
// The paper samples 100k vs 70k entities from DBpedia/Wikidata/YAGO; this
// harness generates structurally analogous synthetic pairs at
// DAAKG_BENCH_SCALE (see DESIGN.md for the substitution rationale).

#include <cstdio>

#include "bench/bench_util.h"
#include "kg/stats.h"

int main(int argc, char** argv) {
  const daakg::bench::BenchArgs args = daakg::bench::ParseBenchArgs(argc, argv);
  using namespace daakg;
  using namespace daakg::bench;
  BenchEnv env = BenchEnv::FromEnv();
  std::printf("=== Table 2: dataset statistics (scale %.2f) ===\n", env.scale);
  std::printf("%-8s %10s %10s %9s %9s %8s %8s %9s %9s %8s %7s %7s\n",
              "Dataset", "Ents1", "Ents2", "Rels1", "Rels2", "Cls1", "Cls2",
              "Trips1", "Trips2", "EntM", "RelM", "ClsM");
  for (BenchmarkDataset dataset : AllDatasets()) {
    AlignmentTask task = MakeTask(dataset, env);
    TaskStats s = ComputeTaskStats(task);
    std::printf("%-8s %10zu %10zu %9zu %9zu %8zu %8zu %9zu %9zu %8zu %7zu %7zu\n",
                s.name.c_str(), s.entities1, s.entities2, s.relations1,
                s.relations2, s.classes1, s.classes2, s.triplets1, s.triplets2,
                s.entity_matches, s.relation_matches, s.class_matches);
  }
  std::printf("\nPaper (full scale): 100,000 vs 70,000 entities per dataset; "
              "70k entity matches;\nD-W 413/261 relations 167/116 classes; "
              "D-Y 287/32 relations 13/9 classes;\nEN-DE 381/196 relations "
              "109/76 classes; EN-FR 400/300 relations 174/121 classes.\n");
  daakg::bench::MaybeDumpMetrics(args);
  return 0;
}
