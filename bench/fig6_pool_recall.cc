// Reproduces Figure 6: recall of gold entity matches inside the candidate
// pool as a function of the top-N cut-off of the schema-signature blocking
// (Sect. 6.1). The paper sweeps N = 100..1000 on 100k-entity KGs; this
// harness sweeps the proportional range at bench scale.
//
// Expected shape: recall grows with N and saturates; the D-Y analogue lags
// the other datasets because its schema-poor second side makes signatures
// less discriminating.
//
// On top of the paper figure, this bench measures the candidate-index
// backend tradeoff (--index_json writes it machine-readable):
//   * per dataset, the IVF pool's recall of the exact pool's entity pairs
//     and its query speedup over the exact blocked pass, per
//     (nlist, nprobe) point;
//   * a synthetic scale sweep on clustered unit signatures, where the
//     crossover to IVF being faster in wall-clock is visible (bench-scale
//     KGs are small enough that the exact pass usually wins there).

#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "active/pool.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "index/candidate_index.h"

namespace {

using namespace daakg;
using namespace daakg::bench;

// One measured (nlist, nprobe) point of the per-dataset backend sweep.
struct DatasetPoint {
  size_t nlist = 0;   // configured (0 = auto)
  size_t nprobe = 0;
  bool is_default = false;
  size_t nlist_effective = 0;
  double recall_vs_exact = 0.0;  // entity-pair overlap with the exact pool
  double gold_recall = 0.0;      // Fig. 6 measurement through this backend
  double build_seconds = 0.0;
  double query_seconds = 0.0;
  double speedup_query = 0.0;    // exact_query_seconds / query_seconds
};

struct DatasetSweep {
  std::string name;
  double exact_query_seconds = 0.0;
  double gold_recall_exact = 0.0;
  std::vector<DatasetPoint> points;
};

struct SyntheticPoint {
  size_t rows = 0;
  size_t queries = 0;
  size_t dim = 0;
  size_t nlist_effective = 0;
  double recall_vs_exact = 0.0;  // top-K overlap, K = 25
  double exact_seconds = 0.0;
  double ivf_build_seconds = 0.0;
  double ivf_query_seconds = 0.0;
  double speedup_query = 0.0;
  double speedup_total = 0.0;    // exact / (ivf build + query)
};

std::set<std::pair<uint32_t, uint32_t>> EntityPairs(
    const std::vector<ElementPair>& pool) {
  std::set<std::pair<uint32_t, uint32_t>> pairs;
  for (const auto& p : pool) {
    if (p.kind == ElementKind::kEntity) pairs.emplace(p.first, p.second);
  }
  return pairs;
}

// Clustered unit rows — the shape schema signatures take (see the matching
// generator in tests/index_test.cc).
Matrix ClusteredUnitMatrix(size_t rows, size_t cols, size_t clusters,
                           double noise, uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, cols);
  for (size_t k = 0; k < clusters; ++k) {
    float* row = centers.RowData(k);
    for (size_t c = 0; c < cols; ++c) {
      row[c] = static_cast<float>(rng.NextGaussian());
    }
    UnitNormalizeRow(row, cols);
  }
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    const float* center = centers.RowData(rng.NextUint64(clusters));
    float* row = m.RowData(r);
    for (size_t c = 0; c < cols; ++c) {
      row[c] = center[c] + static_cast<float>(rng.NextGaussian() * noise);
    }
    UnitNormalizeRow(row, cols);
  }
  return m;
}

DatasetSweep SweepDatasetBackends(const AlignmentTask& task,
                                  const JointAlignmentModel* joint) {
  DatasetSweep sweep;
  sweep.name = task.name;

  // Exact reference: warm the generator once (signatures + index build),
  // then time a pure query pass.
  PoolConfig exact_cfg;
  exact_cfg.index.backend = IndexChoice::kExact;
  PoolGenerator exact_gen(&task, joint, exact_cfg);
  std::vector<ElementPair> exact_pool = exact_gen.Generate();
  WallTimer exact_timer;
  exact_pool = exact_gen.Generate();
  sweep.exact_query_seconds = exact_timer.ElapsedSeconds();
  sweep.gold_recall_exact = exact_gen.EntityPairRecall(exact_pool);
  const auto exact_pairs = EntityPairs(exact_pool);

  const struct {
    size_t nlist, nprobe;
    bool is_default;
  } kGrid[] = {{0, 2, false}, {0, 4, false}, {0, 8, true}, {32, 8, false}};
  for (const auto& g : kGrid) {
    PoolConfig cfg;
    cfg.index.backend = IndexChoice::kIvf;
    cfg.index.min_rows_for_ann = 0;  // force IVF at bench scale
    cfg.index.nlist = g.nlist;
    cfg.index.nprobe = g.nprobe;
    PoolGenerator gen(&task, joint, cfg);
    WallTimer build_timer;
    std::vector<ElementPair> pool = gen.Generate();  // signatures + build
    const double warm_seconds = build_timer.ElapsedSeconds();
    WallTimer query_timer;
    pool = gen.Generate();
    DatasetPoint point;
    point.nlist = g.nlist;
    point.nprobe = g.nprobe;
    point.is_default = g.is_default;
    point.nlist_effective = gen.index().build_stats().nlist;
    point.query_seconds = query_timer.ElapsedSeconds();
    point.build_seconds = gen.index().build_stats().build_seconds;
    (void)warm_seconds;
    point.gold_recall = gen.EntityPairRecall(pool);
    const auto ivf_pairs = EntityPairs(pool);
    size_t hit = 0;
    for (const auto& p : exact_pairs) hit += ivf_pairs.count(p);
    point.recall_vs_exact =
        exact_pairs.empty()
            ? 1.0
            : static_cast<double>(hit) / static_cast<double>(exact_pairs.size());
    point.speedup_query = point.query_seconds > 0.0
                              ? sweep.exact_query_seconds / point.query_seconds
                              : 0.0;
    sweep.points.push_back(point);
  }
  return sweep;
}

SyntheticPoint SweepSyntheticSize(size_t rows, size_t dim, uint64_t seed) {
  SyntheticPoint point;
  point.rows = rows;
  point.queries = rows;
  point.dim = dim;
  const size_t kTopK = 25;
  // ~125 rows per cluster: the top-25 neighborhood stays inside a cluster,
  // and the auto nlist (~sqrt(rows)) subdivides rather than merges clusters
  // — the regime the IVF probe is designed for.
  const size_t clusters = rows / 125 + 8;
  Matrix base = ClusteredUnitMatrix(rows, dim, clusters, 0.05, seed);
  Matrix queries = ClusteredUnitMatrix(rows, dim, clusters, 0.05, seed ^ 0xA5);

  CandidateIndexConfig exact_cfg;
  exact_cfg.backend = IndexChoice::kExact;
  auto exact = CandidateIndex::Build(base, exact_cfg);
  DAAKG_CHECK(exact.ok()) << exact.status();
  WallTimer exact_timer;
  const SimTopK exact_topk = (*exact)->QueryTopK(queries, kTopK, 0);
  point.exact_seconds = exact_timer.ElapsedSeconds();

  CandidateIndexConfig ivf_cfg;  // defaults: nlist auto, nprobe 8
  ivf_cfg.backend = IndexChoice::kIvf;
  ivf_cfg.min_rows_for_ann = 0;
  auto ivf = CandidateIndex::Build(std::move(base), ivf_cfg);
  DAAKG_CHECK(ivf.ok()) << ivf.status();
  point.nlist_effective = (*ivf)->build_stats().nlist;
  point.ivf_build_seconds = (*ivf)->build_stats().build_seconds;
  WallTimer ivf_timer;
  const SimTopK ivf_topk = (*ivf)->QueryTopK(queries, kTopK, 0);
  point.ivf_query_seconds = ivf_timer.ElapsedSeconds();

  size_t hit = 0, total = 0;
  for (size_t r = 0; r < queries.rows(); ++r) {
    std::set<uint32_t> ivf_set;
    for (const ScoredIndex& e : ivf_topk.row_topk[r]) ivf_set.insert(e.index);
    for (const ScoredIndex& e : exact_topk.row_topk[r]) {
      ++total;
      hit += ivf_set.count(e.index);
    }
  }
  point.recall_vs_exact =
      total == 0 ? 1.0
                 : static_cast<double>(hit) / static_cast<double>(total);
  point.speedup_query = point.ivf_query_seconds > 0.0
                            ? point.exact_seconds / point.ivf_query_seconds
                            : 0.0;
  const double ivf_total = point.ivf_build_seconds + point.ivf_query_seconds;
  point.speedup_total =
      ivf_total > 0.0 ? point.exact_seconds / ivf_total : 0.0;
  return point;
}

void WriteIndexJson(const std::string& path,
                    const std::vector<DatasetSweep>& sweeps,
                    const std::vector<SyntheticPoint>& synthetic) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    LOG_FATAL << "cannot open " << path;
  }
  std::fprintf(f, "{\n  \"datasets\": [\n");
  for (size_t i = 0; i < sweeps.size(); ++i) {
    const DatasetSweep& s = sweeps[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"exact_query_seconds\": %.6f, "
                 "\"gold_recall_exact\": %.4f, \"points\": [\n",
                 s.name.c_str(), s.exact_query_seconds, s.gold_recall_exact);
    for (size_t j = 0; j < s.points.size(); ++j) {
      const DatasetPoint& p = s.points[j];
      std::fprintf(
          f,
          "      {\"nlist\": %zu, \"nprobe\": %zu, \"default\": %s, "
          "\"nlist_effective\": %zu, \"recall_vs_exact\": %.4f, "
          "\"gold_recall\": %.4f, \"build_seconds\": %.6f, "
          "\"query_seconds\": %.6f, \"speedup_query\": %.3f}%s\n",
          p.nlist, p.nprobe, p.is_default ? "true" : "false",
          p.nlist_effective, p.recall_vs_exact, p.gold_recall,
          p.build_seconds, p.query_seconds, p.speedup_query,
          j + 1 < s.points.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", i + 1 < sweeps.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"synthetic\": [\n");
  for (size_t i = 0; i < synthetic.size(); ++i) {
    const SyntheticPoint& p = synthetic[i];
    std::fprintf(
        f,
        "    {\"rows\": %zu, \"queries\": %zu, \"dim\": %zu, "
        "\"nlist_effective\": %zu, \"recall_vs_exact\": %.4f, "
        "\"exact_seconds\": %.6f, \"ivf_build_seconds\": %.6f, "
        "\"ivf_query_seconds\": %.6f, \"speedup_query\": %.3f, "
        "\"speedup_total\": %.3f}%s\n",
        p.rows, p.queries, p.dim, p.nlist_effective, p.recall_vs_exact,
        p.exact_seconds, p.ivf_build_seconds, p.ivf_query_seconds,
        p.speedup_query, p.speedup_total,
        i + 1 < synthetic.size() ? "," : "");
  }
  // Acceptance summary: the default-point recall floor across datasets and
  // the total-wall-clock speedup at the largest synthetic size.
  double min_default_recall = 1.0;
  for (const DatasetSweep& s : sweeps) {
    for (const DatasetPoint& p : s.points) {
      if (p.is_default && p.recall_vs_exact < min_default_recall) {
        min_default_recall = p.recall_vs_exact;
      }
    }
  }
  const double largest_speedup =
      synthetic.empty() ? 0.0 : synthetic.back().speedup_total;
  std::fprintf(f,
               "  ],\n  \"acceptance\": {\"default_point_min_recall\": %.4f, "
               "\"largest_synthetic_speedup_total\": %.3f}\n}\n",
               min_default_recall, largest_speedup);
  std::fclose(f);
  std::printf("index sweep written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  BenchEnv env = BenchEnv::FromEnv();
  std::printf("=== Figure 6: pool recall vs N (scale %.2f) ===\n", env.scale);

  // Paper sweeps N = 100..1000 at 70k candidate entities (0.14%..1.4% of
  // the candidate set). Small graphs need a slightly larger floor for the
  // blocking to function at all, so sweep 1%..10% of the scaled candidate
  // count — still far below exhaustive comparison.
  std::vector<size_t> ns;
  std::printf("%-8s", "Dataset");
  for (int i = 1; i <= 10; ++i) {
    ns.push_back(static_cast<size_t>(1400 * env.scale * i / 100) + 1);
    std::printf(" N=%-5zu", ns.back());
  }
  std::printf("\n");

  std::vector<DatasetSweep> sweeps;
  for (BenchmarkDataset dataset : AllDatasets()) {
    AlignmentTask task = MakeTask(dataset, env);
    DaakgConfig cfg = DaakgBenchConfig("transe", env);
    DaakgAligner aligner(&task, cfg);
    Rng rng(env.seed ^ 0x5EEDULL);
    aligner.Train(task.SampleSeed(env.seed_fraction, &rng));
    aligner.RefreshCaches();

    // One generator per dataset: the N sweep reuses the cached signature
    // index instead of recomputing signatures per point.
    PoolConfig pool_cfg;
    PoolGenerator gen(&task, aligner.joint(), pool_cfg);
    std::printf("%-8s", task.name.c_str());
    for (size_t n : ns) {
      double recall = gen.EntityPairRecall(gen.Generate(n));
      std::printf(" %7.3f", recall);
      std::fflush(stdout);
    }
    std::printf("\n");

    sweeps.push_back(SweepDatasetBackends(task, aligner.joint()));
  }
  std::printf("\nPaper: >= 0.806 recall at N=1000 on D-W/EN-DE/EN-FR; "
              "0.652-0.688 on D-Y.\n");

  std::printf("\n=== Candidate-index backends (pool top_n default) ===\n");
  std::printf("%-8s %-14s %10s %10s %10s %10s\n", "Dataset", "backend",
              "recall", "gold", "query(s)", "speedup");
  for (const DatasetSweep& s : sweeps) {
    std::printf("%-8s %-14s %10.3f %10.3f %10.6f %10s\n", s.name.c_str(),
                "exact", 1.0, s.gold_recall_exact, s.exact_query_seconds, "-");
    for (const DatasetPoint& p : s.points) {
      char label[64];
      std::snprintf(label, sizeof(label), "ivf %zu/%zu%s", p.nlist_effective,
                    p.nprobe, p.is_default ? "*" : "");
      std::printf("%-8s %-14s %10.3f %10.3f %10.6f %9.2fx\n", s.name.c_str(),
                  label, p.recall_vs_exact, p.gold_recall, p.query_seconds,
                  p.speedup_query);
    }
  }
  std::printf("(* = default config; nlist shown as effective/auto value)\n");

  std::printf("\n=== Synthetic scale sweep (clustered unit signatures, "
              "dim 64, IVF defaults) ===\n");
  std::printf("%8s %8s %10s %10s %10s %10s %10s\n", "rows", "nlist", "recall",
              "exact(s)", "build(s)", "query(s)", "speedup");
  std::vector<SyntheticPoint> synthetic;
  for (size_t rows : {2000u, 6000u, 16000u}) {
    SyntheticPoint p = SweepSyntheticSize(rows, 64, env.seed ^ rows);
    std::printf("%8zu %8zu %10.3f %10.4f %10.4f %10.4f %9.2fx\n", p.rows,
                p.nlist_effective, p.recall_vs_exact, p.exact_seconds,
                p.ivf_build_seconds, p.ivf_query_seconds, p.speedup_total);
    std::fflush(stdout);
    synthetic.push_back(p);
  }
  std::printf("(speedup = exact / (IVF build + query) wall-clock)\n");

  if (!args.index_json.empty()) {
    WriteIndexJson(args.index_json, sweeps, synthetic);
  }
  daakg::bench::MaybeDumpMetrics(args);
  return 0;
}
