// Reproduces Figure 6: recall of gold entity matches inside the candidate
// pool as a function of the top-N cut-off of the schema-signature blocking
// (Sect. 6.1). The paper sweeps N = 100..1000 on 100k-entity KGs; this
// harness sweeps the proportional range at bench scale.
//
// Expected shape: recall grows with N and saturates; the D-Y analogue lags
// the other datasets because its schema-poor second side makes signatures
// less discriminating.

#include <cstdio>

#include "active/pool.h"
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const daakg::bench::BenchArgs args = daakg::bench::ParseBenchArgs(argc, argv);
  using namespace daakg;
  using namespace daakg::bench;
  BenchEnv env = BenchEnv::FromEnv();
  std::printf("=== Figure 6: pool recall vs N (scale %.2f) ===\n", env.scale);

  // Paper sweeps N = 100..1000 at 70k candidate entities (0.14%..1.4% of
  // the candidate set). Small graphs need a slightly larger floor for the
  // blocking to function at all, so sweep 1%..10% of the scaled candidate
  // count — still far below exhaustive comparison.
  std::vector<size_t> ns;
  std::printf("%-8s", "Dataset");
  for (int i = 1; i <= 10; ++i) {
    ns.push_back(static_cast<size_t>(1400 * env.scale * i / 100) + 1);
    std::printf(" N=%-5zu", ns.back());
  }
  std::printf("\n");

  for (BenchmarkDataset dataset : AllDatasets()) {
    AlignmentTask task = MakeTask(dataset, env);
    DaakgConfig cfg = DaakgBenchConfig("transe", env);
    DaakgAligner aligner(&task, cfg);
    Rng rng(env.seed ^ 0x5EEDULL);
    aligner.Train(task.SampleSeed(env.seed_fraction, &rng));
    aligner.RefreshCaches();

    std::printf("%-8s", task.name.c_str());
    for (size_t n : ns) {
      PoolConfig pool_cfg;
      pool_cfg.top_n = n;
      PoolGenerator gen(&task, aligner.joint(), pool_cfg);
      double recall = gen.EntityPairRecall(gen.Generate());
      std::printf(" %7.3f", recall);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\nPaper: >= 0.806 recall at N=1000 on D-W/EN-DE/EN-FR; "
              "0.652-0.688 on D-Y.\n");
  daakg::bench::MaybeDumpMetrics(args);
  return 0;
}
