// Reproduces Figure 7: run-time and relative inference power of the graph
// partitioning-based selection (Algorithm 2) versus greedy selection
// (Algorithm 1) as the partition-quality threshold rho decreases.
//
// Expected shape: smaller rho => faster selection at the cost of some
// inference power; at rho = 0.80 the paper reports ~2.5x speed-up while
// preserving >= 88% of the inference power.

#include <cstdio>

#include "active/pool.h"
#include "active/selection.h"
#include "bench/bench_util.h"
#include "infer/alignment_graph.h"

int main(int argc, char** argv) {
  const daakg::bench::BenchArgs args = daakg::bench::ParseBenchArgs(argc, argv);
  using namespace daakg;
  using namespace daakg::bench;
  BenchEnv env = BenchEnv::FromEnv();
  std::printf("=== Figure 7: partitioning-based selection vs rho "
              "(D-W analogue, scale %.2f) ===\n", env.scale);

  AlignmentTask task = MakeTask(BenchmarkDataset::kDW, env);
  DaakgConfig cfg = DaakgBenchConfig("transe", env);
  DaakgAligner aligner(&task, cfg);
  Rng rng(env.seed ^ 0x5EEDULL);
  aligner.Train(task.SampleSeed(env.seed_fraction, &rng));
  aligner.RefreshCaches();

  PoolConfig pool_cfg;
  pool_cfg.top_n = 30;
  PoolGenerator gen(&task, aligner.joint(), pool_cfg);
  std::vector<ElementPair> pool = gen.Generate();
  AlignmentGraph graph(&task, pool);
  InferenceConfig icfg = cfg.infer;
  // Deeper path enumeration, as in the paper's brute-force Line 2; this is
  // the regime where Algorithm 2's estimate pays off.
  icfg.power_floor = 0.3;
  InferenceEngine engine(&graph, aligner.joint(), icfg);
  engine.PrecomputeEdgeCosts();
  std::printf("pool: %zu pairs, alignment graph: %zu edges\n",
              pool.size(), graph.num_edges());

  std::vector<bool> labeled(pool.size(), false);
  SelectionContext ctx{&engine, aligner.joint(), &labeled};
  SelectionConfig sel;
  sel.batch_size = 50;

  SelectionResult greedy = GreedySelect(ctx, sel);
  const double greedy_power = EvaluateSelectionObjective(ctx, greedy.selected);
  std::printf("%-8s %10s %12s %10s\n", "rho", "time(s)", "rel. power",
              "speed-up");
  std::printf("%-8s %10.3f %12.3f %10.2f   (greedy, Algorithm 1)\n", "1.00",
              greedy.seconds, 1.0, 1.0);

  for (double rho : {0.95, 0.90, 0.85, 0.80}) {
    sel.rho = rho;
    SelectionResult part = PartitionSelect(ctx, sel);
    const double power = EvaluateSelectionObjective(ctx, part.selected);
    std::printf("%-8.2f %10.3f %12.3f %10.2f\n", rho, part.seconds,
                greedy_power > 0 ? power / greedy_power : 0.0,
                part.seconds > 0 ? greedy.seconds / part.seconds : 0.0);
    std::fflush(stdout);
  }
  daakg::bench::MaybeDumpMetrics(args);
  return 0;
}
