// Reproduces Table 3 (performance comparison of deep alignment methods)
// and the competitor columns of Table 4 (run-time): PARIS, the eight
// embedding baselines, BERTMap-lite and DAAKG on all four datasets, with a
// 20% seed alignment.
//
// Expected shape (not absolute numbers — see EXPERIMENTS.md):
//  * only DAAKG achieves strong relation AND class alignment;
//  * entity-only baselines collapse on schema alignment;
//  * literal baselines (AttrE/MultiKE) depend on the dataset's name policy
//    (good on D-Y, poor on D-W);
//  * BERTMap is good on monolingual class names (D-W/D-Y), poor on the
//    cross-lingual analogues;
//  * PARIS is training-free and much faster than the deep methods.

#include <cstdio>

#include "baselines/bertmap_lite.h"
#include "baselines/embedding_baseline.h"
#include "baselines/paris.h"
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const daakg::bench::BenchArgs args = daakg::bench::ParseBenchArgs(argc, argv);
  using namespace daakg;
  using namespace daakg::bench;
  BenchEnv env = BenchEnv::FromEnv();
  std::printf("=== Table 3 + Table 4 (competitors): deep alignment, "
              "%.0f%% seeds, scale %.2f ===\n",
              env.seed_fraction * 100, env.scale);

  for (BenchmarkDataset dataset : AllDatasets()) {
    AlignmentTask task = MakeTask(dataset, env);
    Rng rng(env.seed ^ 0x5EEDULL);
    SeedAlignment seed = task.SampleSeed(env.seed_fraction, &rng);

    std::printf("\n--- dataset %s ---\n%s\n", task.name.c_str(),
                ResultHeader().c_str());

    {
      Paris paris(&task, ParisConfig());
      std::printf("%s\n", FormatResultRow(paris.Run(seed)).c_str());
    }

    KgeConfig kge;
    kge.dim = 32;  // competitors embed classes as extra entities; keep cheap
    JointAlignConfig align;
    align.align_epochs = 50;
    for (const EmbeddingBaselineConfig& cfg :
         StandardBaselineRoster(kge, align)) {
      EmbeddingBaseline baseline(&task, cfg);
      std::printf("%s\n", FormatResultRow(baseline.Run(seed)).c_str());
      std::fflush(stdout);
    }

    {
      BertMapLite bertmap(&task, BertMapLiteConfig());
      std::printf("%s\n", FormatResultRow(bertmap.Run(seed)).c_str());
    }

    {
      DaakgConfig cfg = DaakgBenchConfig(env.model, env);
      BaselineResult daakg =
          RunDaakg(task, cfg, env, "DAAKG (" + env.model + ")");
      std::printf("%s\n", FormatResultRow(daakg).c_str());
    }
    std::fflush(stdout);
  }
  daakg::bench::MaybeDumpMetrics(args);
  return 0;
}
