// Reproduces Table 4 (run-time comparison) as a standalone summary. The
// full per-method timings also appear as the last column of the Table 3 and
// Table 5 benches; this binary reruns a representative subset so the
// run-time table can be regenerated in isolation.
//
// Expected shape: PARIS and BERTMap run in (milli)seconds because they need
// no embedding training; deep methods cost orders of magnitude more; within
// DAAKG, semi-supervision dominates the cost (w/o semi-supervision is the
// by-far fastest variant, as in the paper's Table 4).

#include <cstdio>

#include "active/oracle.h"
#include "active/strategies.h"
#include "baselines/bertmap_lite.h"
#include "baselines/embedding_baseline.h"
#include "baselines/paris.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/active_loop.h"

int main(int argc, char** argv) {
  using namespace daakg;
  using namespace daakg::bench;
  BenchArgs args = ParseBenchArgs(argc, argv);
  BenchEnv env = BenchEnv::FromEnv();
  std::printf("=== Table 4: run-time comparison (seconds), scale %.2f ===\n",
              env.scale);
  std::printf("%-26s %8s %8s %8s %8s\n", "Method", "D-W", "D-Y", "EN-DE",
              "EN-FR");

  struct Row {
    std::string name;
    double secs[4];
  };
  std::vector<Row> rows;
  auto row_of = [&rows](const std::string& name) -> Row& {
    for (auto& r : rows) {
      if (r.name == name) return r;
    }
    rows.push_back(Row{name, {0, 0, 0, 0}});
    return rows.back();
  };

  int col = 0;
  for (BenchmarkDataset dataset : AllDatasets()) {
    AlignmentTask task = MakeTask(dataset, env);
    Rng rng(env.seed ^ 0x5EEDULL);
    SeedAlignment seed = task.SampleSeed(env.seed_fraction, &rng);

    {
      Paris paris(&task, ParisConfig());
      row_of("PARIS").secs[col] = paris.Run(seed).train_seconds;
    }
    {
      KgeConfig kge;
      kge.dim = 32;
      JointAlignConfig align;
      align.align_epochs = 60;
      EmbeddingBaselineConfig cfg;
      cfg.name = "MTransE";
      cfg.kge = kge;
      cfg.align = align;
      EmbeddingBaseline baseline(&task, cfg);
      row_of("MTransE").secs[col] = baseline.Run(seed).train_seconds;
    }
    {
      BertMapLite bertmap(&task, BertMapLiteConfig());
      row_of("BERTMap").secs[col] = bertmap.Run(seed).train_seconds;
    }
    for (const char* model : {"transe", "rotate", "compgcn"}) {
      DaakgConfig cfg = DaakgBenchConfig(model, env);
      row_of(std::string("DAAKG (") + model + ")").secs[col] =
          RunDaakg(task, cfg, env, model).train_seconds;
      cfg.align.semi_rounds = 0;
      row_of(std::string("  w/o semi (") + model + ")").secs[col] =
          RunDaakg(task, cfg, env, model).train_seconds;
    }
    ++col;
    std::fflush(stdout);
  }

  for (const Row& r : rows) {
    std::printf("%-26s %8.2f %8.2f %8.2f %8.2f\n", r.name.c_str(), r.secs[0],
                r.secs[1], r.secs[2], r.secs[3]);
  }

  // --- active-loop phase breakdown (the per-phase half of Table 4) --------
  // One small DAAKG active run on D-W; this is what populates the pool /
  // selection / oracle metrics in --metrics_json dumps.
  {
    std::printf("\n=== Active-loop phase breakdown (D-W, transe) ===\n");
    AlignmentTask task = MakeTask(BenchmarkDataset::kDW, env);
    DaakgConfig cfg = DaakgBenchConfig("transe", env);
    auto aligner = DaakgAligner::Create(&task, cfg);
    DAAKG_CHECK(aligner.ok());
    GoldOracle oracle(&task);
    DaakgStrategy strategy(/*use_partitioning=*/true);
    ActiveLoopConfig loop_cfg;
    loop_cfg.batch_size = 40;
    loop_cfg.initial_seed_fraction = env.seed_fraction;
    loop_cfg.report_fractions = {0.3};
    loop_cfg.pool.top_n = 10;
    loop_cfg.seed = env.seed;
    auto loop = ActiveAlignmentLoop::Create(&task, aligner->get(), &strategy,
                                            &oracle, loop_cfg);
    DAAKG_CHECK(loop.ok());
    std::printf("%8s %8s %8s %8s %8s %8s %8s\n", "frac", "labels", "matches",
                "refresh", "pool", "select", "finetune");
    for (const ActiveRoundReport& r : (*loop)->Run()) {
      std::printf("%8.2f %8zu %8zu %8.2f %8.2f %8.2f %8.2f\n", r.fraction,
                  r.labels_used, r.matches_found, r.telemetry.refresh_seconds,
                  r.telemetry.pool_build_seconds,
                  r.telemetry.selection_seconds,
                  r.telemetry.fine_tune_seconds);
    }
  }

  MaybeDumpMetrics(args);
  return 0;
}
