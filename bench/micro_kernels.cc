// google-benchmark micro suites for the hot kernels of the library:
// dense math, KG index lookups, similarity cache refresh and inference
// power queries.

#include <benchmark/benchmark.h>

#include <map>
#include <utility>
#include <vector>

#include "align/joint_model.h"
#include "embedding/trainer.h"
#include "infer/alignment_graph.h"
#include "infer/inference_power.h"
#include "kg/synthetic.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/simd/simd.h"
#include "tensor/topk.h"

namespace daakg {
namespace {

void BM_VectorDot(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Vector a(dim), b(dim);
  a.InitGaussian(&rng, 1.0f);
  b.InitGaussian(&rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Dot(b));
  }
}
BENCHMARK(BM_VectorDot)->Arg(32)->Arg(64)->Arg(256);

void BM_MatrixVectorMultiply(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(2);
  Matrix m(dim, dim);
  m.InitGaussian(&rng, 1.0f);
  Vector x(dim);
  x.InitGaussian(&rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Multiply(x));
  }
}
BENCHMARK(BM_MatrixVectorMultiply)->Arg(32)->Arg(64)->Arg(128);

void BM_Cosine(benchmark::State& state) {
  Rng rng(3);
  Vector a(64), b(64);
  a.InitGaussian(&rng, 1.0f);
  b.InitGaussian(&rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Cosine(a, b));
  }
}
BENCHMARK(BM_Cosine);

// --------------------------------------------------------------------------
// Pool-build top-K: seed scalar algorithm vs the blocked streaming kernel.
// Both compute mutual top-K over the same random signature matrices; the
// acceptance bar for the kernel is >= 3x over the seed loop at 2k x 2k.
// --------------------------------------------------------------------------

struct SimBenchInput {
  Matrix a, b;
};

SimBenchInput& SimInput(size_t n, size_t dim) {
  static std::map<std::pair<size_t, size_t>, SimBenchInput*> cache;
  auto key = std::make_pair(n, dim);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto* input = new SimBenchInput{Matrix(n, dim), Matrix(n, dim)};
    Rng rng(7);
    input->a.InitGaussian(&rng, 1.0f);
    input->b.InitGaussian(&rng, 1.0f);
    it = cache.emplace(key, input).first;
  }
  return *it->second;
}

// The pre-kernel pool build: materialize every row of the full similarity
// matrix, then TopKIndices per row and per column.
void BM_PoolTopK_SeedScalar(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dim = static_cast<size_t>(state.range(1));
  const size_t k = 25;
  SimBenchInput& input = SimInput(n, dim);
  for (auto _ : state) {
    Matrix sim(n, n);
    for (size_t r = 0; r < n; ++r) {
      const float* ra = input.a.RowData(r);
      for (size_t c = 0; c < n; ++c) {
        const float* rb = input.b.RowData(c);
        float acc = 0.0f;
        for (size_t i = 0; i < dim; ++i) acc += ra[i] * rb[i];
        sim(r, c) = acc;
      }
    }
    size_t kept = 0;
    for (size_t r = 0; r < n; ++r) {
      std::vector<float> row(sim.RowData(r), sim.RowData(r) + n);
      kept += TopKIndices(row, k).size();
    }
    for (size_t c = 0; c < n; ++c) {
      std::vector<float> col(n);
      for (size_t r = 0; r < n; ++r) col[r] = sim(r, c);
      kept += TopKIndices(col, k).size();
    }
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * n);
}
BENCHMARK(BM_PoolTopK_SeedScalar)
    ->Args({512, 64})
    ->Args({2048, 64})
    ->Unit(benchmark::kMillisecond);

void BM_PoolTopK_Blocked(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dim = static_cast<size_t>(state.range(1));
  const size_t k = 25;
  SimBenchInput& input = SimInput(n, dim);
  for (auto _ : state) {
    SimTopK topk = BlockedSimTopK(input.a, input.b, k, k);
    benchmark::DoNotOptimize(topk.row_topk.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * n);
}
BENCHMARK(BM_PoolTopK_Blocked)
    ->Args({512, 64})
    ->Args({2048, 64})
    ->Unit(benchmark::kMillisecond);

void BM_BlockedMatMulNT(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SimBenchInput& input = SimInput(n, 64);
  Matrix out;
  for (auto _ : state) {
    BlockedMatMulNT(input.a, input.b, &out);
    benchmark::DoNotOptimize(out.RowData(0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * n);
}
BENCHMARK(BM_BlockedMatMulNT)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------------
// SIMD kernel backend: scalar reference vs the runtime-dispatched backend.
// GFLOPS counters let BENCH_kernels.json record the dispatched / scalar
// throughput ratio directly (acceptance bar: >= 1.8x for dot and matmul on
// AVX2+FMA hosts).
// --------------------------------------------------------------------------

const simd::Ops& BenchOps(bool dispatched) {
  return dispatched ? simd::ActiveOps() : simd::ScalarOps();
}

void KernelDotBench(benchmark::State& state, bool dispatched) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const simd::Ops& ops = BenchOps(dispatched);
  Rng rng(11);
  Vector a(dim), b(dim);
  a.InitGaussian(&rng, 1.0f);
  b.InitGaussian(&rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.dot(a.data(), b.data(), dim));
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(dim) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_KernelDot_Scalar(benchmark::State& state) {
  KernelDotBench(state, /*dispatched=*/false);
}
void BM_KernelDot_Dispatched(benchmark::State& state) {
  KernelDotBench(state, /*dispatched=*/true);
}
BENCHMARK(BM_KernelDot_Scalar)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_KernelDot_Dispatched)->Arg(64)->Arg(256)->Arg(1024);

void KernelDot4Bench(benchmark::State& state, bool dispatched) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const simd::Ops& ops = BenchOps(dispatched);
  Rng rng(12);
  Vector a(dim);
  a.InitGaussian(&rng, 1.0f);
  Matrix b(4, dim);
  b.InitGaussian(&rng, 1.0f);
  float out[4];
  for (auto _ : state) {
    ops.dot4(a.data(), b.RowData(0), b.RowData(1), b.RowData(2), b.RowData(3),
             dim, out);
    benchmark::DoNotOptimize(out[0]);
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      8.0 * static_cast<double>(dim) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_KernelDot4_Scalar(benchmark::State& state) {
  KernelDot4Bench(state, /*dispatched=*/false);
}
void BM_KernelDot4_Dispatched(benchmark::State& state) {
  KernelDot4Bench(state, /*dispatched=*/true);
}
BENCHMARK(BM_KernelDot4_Scalar)->Arg(64)->Arg(256);
BENCHMARK(BM_KernelDot4_Dispatched)->Arg(64)->Arg(256);

void KernelMatMulBench(benchmark::State& state, bool dispatched) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dim = 64;
  SimBenchInput& input = SimInput(n, dim);
  BlockedKernelOptions options;
  options.backend = dispatched ? simd::Choice::kAuto : simd::Choice::kScalar;
  Matrix out;
  for (auto _ : state) {
    BlockedMatMulNT(input.a, input.b, &out, options);
    benchmark::DoNotOptimize(out.RowData(0));
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * dim * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_KernelMatMulNT_Scalar(benchmark::State& state) {
  KernelMatMulBench(state, /*dispatched=*/false);
}
void BM_KernelMatMulNT_Dispatched(benchmark::State& state) {
  KernelMatMulBench(state, /*dispatched=*/true);
}
BENCHMARK(BM_KernelMatMulNT_Scalar)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KernelMatMulNT_Dispatched)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void KernelPoolTopKBench(benchmark::State& state, bool dispatched) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dim = 64;
  const size_t k = 25;
  SimBenchInput& input = SimInput(n, dim);
  BlockedKernelOptions options;
  options.backend = dispatched ? simd::Choice::kAuto : simd::Choice::kScalar;
  for (auto _ : state) {
    SimTopK topk = BlockedSimTopK(input.a, input.b, k, k, options);
    benchmark::DoNotOptimize(topk.row_topk.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * dim * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_KernelPoolTopK_Scalar(benchmark::State& state) {
  KernelPoolTopKBench(state, /*dispatched=*/false);
}
void BM_KernelPoolTopK_Dispatched(benchmark::State& state) {
  KernelPoolTopKBench(state, /*dispatched=*/true);
}
BENCHMARK(BM_KernelPoolTopK_Scalar)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KernelPoolTopK_Dispatched)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

AlignmentTask& BenchTask() {
  static AlignmentTask* task = [] {
    SyntheticKgSpec spec;
    spec.num_entities1 = 300;
    spec.num_entities2 = 210;
    spec.num_relations1 = 15;
    spec.num_relations2 = 11;
    spec.num_relation_matches = 8;
    spec.num_classes1 = 8;
    spec.num_classes2 = 6;
    spec.num_class_matches = 5;
    spec.seed = 3;
    return new AlignmentTask(std::move(GenerateSyntheticTask(spec)).value());
  }();
  return *task;
}

void BM_KgNeighborScan(benchmark::State& state) {
  const AlignmentTask& task = BenchTask();
  size_t e = 0;
  for (auto _ : state) {
    size_t degree_sum = 0;
    for (const auto& nb : task.kg1.Neighbors(
             static_cast<EntityId>(e % task.kg1.num_entities()))) {
      degree_sum += nb.tail;
    }
    benchmark::DoNotOptimize(degree_sum);
    ++e;
  }
}
BENCHMARK(BM_KgNeighborScan);

void BM_KgHasTriplet(benchmark::State& state) {
  const AlignmentTask& task = BenchTask();
  const auto& trips = task.kg1.triplets();
  size_t i = 0;
  for (auto _ : state) {
    const Triplet& t = trips[i % trips.size()];
    benchmark::DoNotOptimize(task.kg1.HasTriplet(t.head, t.relation, t.tail));
    ++i;
  }
}
BENCHMARK(BM_KgHasTriplet);

struct TrainedModels {
  std::unique_ptr<KgeModel> m1, m2;
  std::unique_ptr<JointAlignmentModel> joint;
};

TrainedModels& Models() {
  static TrainedModels* models = [] {
    auto* out = new TrainedModels();
    KgeConfig kge;
    kge.dim = 32;
    kge.epochs = 5;
    out->m1 = MakeKgeModel(KgeModelKind::kTransE, &BenchTask().kg1, kge);
    out->m2 = MakeKgeModel(KgeModelKind::kTransE, &BenchTask().kg2, kge);
    Rng rng(4);
    out->m1->Init(&rng);
    out->m2->Init(&rng);
    JointAlignConfig cfg;
    out->joint = std::make_unique<JointAlignmentModel>(
        out->m1.get(), out->m2.get(), nullptr, nullptr, cfg);
    out->joint->Init(&rng);
    KgeTrainer t1(out->m1.get(), nullptr);
    KgeTrainer t2(out->m2.get(), nullptr);
    Rng r1(5), r2(6);
    t1.Train(&r1);
    t2.Train(&r2);
    return out;
  }();
  return *models;
}

void BM_SimilarityCacheRefresh(benchmark::State& state) {
  TrainedModels& models = Models();
  for (auto _ : state) {
    models.joint->RefreshCaches();
  }
}
BENCHMARK(BM_SimilarityCacheRefresh)->Unit(benchmark::kMillisecond);

void BM_InferencePowerQuery(benchmark::State& state) {
  TrainedModels& models = Models();
  models.joint->RefreshCaches();
  // Pool: gold matches + schema pairs (small but realistic).
  std::vector<ElementPair> pool;
  for (const auto& [e1, e2] : BenchTask().gold_entities) {
    pool.push_back(ElementPair{ElementKind::kEntity, e1, e2});
  }
  for (uint32_t r1 = 0; r1 < BenchTask().kg1.num_base_relations(); ++r1) {
    for (uint32_t r2 = 0; r2 < BenchTask().kg2.num_base_relations(); ++r2) {
      pool.push_back(ElementPair{ElementKind::kRelation, r1, r2});
    }
  }
  static AlignmentGraph* graph = new AlignmentGraph(&BenchTask(), pool);
  InferenceConfig icfg;
  static InferenceEngine* engine =
      new InferenceEngine(graph, models.joint.get(), icfg);
  static bool precomputed = [] {
    engine->PrecomputeEdgeCosts();
    return true;
  }();
  (void)precomputed;
  uint32_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->PowerFrom(q % graph->num_nodes()));
    ++q;
  }
}
BENCHMARK(BM_InferencePowerQuery)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace daakg

// Custom main so the report (and BENCH_kernels.json) records which SIMD
// backend the dispatched benchmarks actually ran on.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("daakg_simd_backend",
                              daakg::simd::ActiveOps().name);
  benchmark::AddCustomContext(
      "daakg_avx2_available", daakg::simd::Avx2Available() ? "yes" : "no");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
