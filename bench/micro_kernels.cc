// google-benchmark micro suites for the hot kernels of the library:
// dense math, KG index lookups, similarity cache refresh and inference
// power queries.

#include <benchmark/benchmark.h>

#include "align/joint_model.h"
#include "embedding/trainer.h"
#include "infer/alignment_graph.h"
#include "infer/inference_power.h"
#include "kg/synthetic.h"
#include "tensor/matrix.h"

namespace daakg {
namespace {

void BM_VectorDot(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Vector a(dim), b(dim);
  a.InitGaussian(&rng, 1.0f);
  b.InitGaussian(&rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Dot(b));
  }
}
BENCHMARK(BM_VectorDot)->Arg(32)->Arg(64)->Arg(256);

void BM_MatrixVectorMultiply(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(2);
  Matrix m(dim, dim);
  m.InitGaussian(&rng, 1.0f);
  Vector x(dim);
  x.InitGaussian(&rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Multiply(x));
  }
}
BENCHMARK(BM_MatrixVectorMultiply)->Arg(32)->Arg(64)->Arg(128);

void BM_Cosine(benchmark::State& state) {
  Rng rng(3);
  Vector a(64), b(64);
  a.InitGaussian(&rng, 1.0f);
  b.InitGaussian(&rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Cosine(a, b));
  }
}
BENCHMARK(BM_Cosine);

AlignmentTask& BenchTask() {
  static AlignmentTask* task = [] {
    SyntheticKgSpec spec;
    spec.num_entities1 = 300;
    spec.num_entities2 = 210;
    spec.num_relations1 = 15;
    spec.num_relations2 = 11;
    spec.num_relation_matches = 8;
    spec.num_classes1 = 8;
    spec.num_classes2 = 6;
    spec.num_class_matches = 5;
    spec.seed = 3;
    return new AlignmentTask(std::move(GenerateSyntheticTask(spec)).value());
  }();
  return *task;
}

void BM_KgNeighborScan(benchmark::State& state) {
  const AlignmentTask& task = BenchTask();
  size_t e = 0;
  for (auto _ : state) {
    size_t degree_sum = 0;
    for (const auto& nb : task.kg1.Neighbors(
             static_cast<EntityId>(e % task.kg1.num_entities()))) {
      degree_sum += nb.tail;
    }
    benchmark::DoNotOptimize(degree_sum);
    ++e;
  }
}
BENCHMARK(BM_KgNeighborScan);

void BM_KgHasTriplet(benchmark::State& state) {
  const AlignmentTask& task = BenchTask();
  const auto& trips = task.kg1.triplets();
  size_t i = 0;
  for (auto _ : state) {
    const Triplet& t = trips[i % trips.size()];
    benchmark::DoNotOptimize(task.kg1.HasTriplet(t.head, t.relation, t.tail));
    ++i;
  }
}
BENCHMARK(BM_KgHasTriplet);

struct TrainedModels {
  std::unique_ptr<KgeModel> m1, m2;
  std::unique_ptr<JointAlignmentModel> joint;
};

TrainedModels& Models() {
  static TrainedModels* models = [] {
    auto* out = new TrainedModels();
    KgeConfig kge;
    kge.dim = 32;
    kge.epochs = 5;
    out->m1 = MakeKgeModel(KgeModelKind::kTransE, &BenchTask().kg1, kge);
    out->m2 = MakeKgeModel(KgeModelKind::kTransE, &BenchTask().kg2, kge);
    Rng rng(4);
    out->m1->Init(&rng);
    out->m2->Init(&rng);
    JointAlignConfig cfg;
    out->joint = std::make_unique<JointAlignmentModel>(
        out->m1.get(), out->m2.get(), nullptr, nullptr, cfg);
    out->joint->Init(&rng);
    KgeTrainer t1(out->m1.get(), nullptr);
    KgeTrainer t2(out->m2.get(), nullptr);
    Rng r1(5), r2(6);
    t1.Train(&r1);
    t2.Train(&r2);
    return out;
  }();
  return *models;
}

void BM_SimilarityCacheRefresh(benchmark::State& state) {
  TrainedModels& models = Models();
  for (auto _ : state) {
    models.joint->RefreshCaches();
  }
}
BENCHMARK(BM_SimilarityCacheRefresh)->Unit(benchmark::kMillisecond);

void BM_InferencePowerQuery(benchmark::State& state) {
  TrainedModels& models = Models();
  models.joint->RefreshCaches();
  // Pool: gold matches + schema pairs (small but realistic).
  std::vector<ElementPair> pool;
  for (const auto& [e1, e2] : BenchTask().gold_entities) {
    pool.push_back(ElementPair{ElementKind::kEntity, e1, e2});
  }
  for (uint32_t r1 = 0; r1 < BenchTask().kg1.num_base_relations(); ++r1) {
    for (uint32_t r2 = 0; r2 < BenchTask().kg2.num_base_relations(); ++r2) {
      pool.push_back(ElementPair{ElementKind::kRelation, r1, r2});
    }
  }
  static AlignmentGraph* graph = new AlignmentGraph(&BenchTask(), pool);
  InferenceConfig icfg;
  static InferenceEngine* engine =
      new InferenceEngine(graph, models.joint.get(), icfg);
  static bool precomputed = [] {
    engine->PrecomputeEdgeCosts();
    return true;
  }();
  (void)precomputed;
  uint32_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->PowerFrom(q % graph->num_nodes()));
    ++q;
  }
}
BENCHMARK(BM_InferencePowerQuery)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace daakg

BENCHMARK_MAIN();
