// Reproduces Table 5 (ablation study of the embedding-based joint
// alignment) and the DAAKG-variant half of Table 4 (run-time): DAAKG with
// TransE / RotatE / CompGCN, each in four configurations — full, w/o class
// embeddings, w/o mean embeddings, w/o semi-supervision — on all datasets.
//
// Expected shape: class embeddings help class alignment; mean embeddings
// are the most important component for schema alignment; semi-supervision
// is the most expensive component and helps everything.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  const daakg::bench::BenchArgs args = daakg::bench::ParseBenchArgs(argc, argv);
  using namespace daakg;
  using namespace daakg::bench;
  BenchEnv env = BenchEnv::FromEnv();
  std::printf("=== Table 5 + Table 4 (DAAKG variants): ablations, "
              "%.0f%% seeds, scale %.2f ===\n",
              env.seed_fraction * 100, env.scale);

  struct Variant {
    const char* name;
    void (*apply)(DaakgConfig*);
  };
  const Variant variants[] = {
      {"DAAKG", [](DaakgConfig*) {}},
      {"w/o class embeddings",
       [](DaakgConfig* c) { c->use_class_embeddings = false; }},
      {"w/o mean embeddings",
       [](DaakgConfig* c) { c->align.use_mean_embeddings = false; }},
      {"w/o semi-supervision",
       [](DaakgConfig* c) { c->align.semi_rounds = 0; }},
  };

  for (const char* model : {"transe", "rotate", "compgcn"}) {
    for (BenchmarkDataset dataset : AllDatasets()) {
      AlignmentTask task = MakeTask(dataset, env);
      std::printf("\n--- %s on %s ---\n%s\n", model, task.name.c_str(),
                  ResultHeader().c_str());
      for (const Variant& variant : variants) {
        DaakgConfig cfg = DaakgBenchConfig(model, env);
        variant.apply(&cfg);
        BaselineResult row = RunDaakg(
            task, cfg, env,
            std::string(model) + " " + variant.name);
        std::printf("%s\n", FormatResultRow(row).c_str());
        std::fflush(stdout);
      }
    }
  }
  daakg::bench::MaybeDumpMetrics(args);
  return 0;
}
