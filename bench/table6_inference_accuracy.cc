// Reproduces Table 6: accuracy of the inference power measurement — the
// fraction of element pairs inferred with power > kappa (from the labeled
// seed matches) that are true matches.
//
// Expected shape: accuracy is high for every model and highest for TransE,
// whose tail-entity bounds are exact; the sampled bounds of RotatE and
// CompGCN are looser (the paper reports TransE > RotatE > CompGCN).

#include <cstdio>
#include <unordered_map>

#include "active/pool.h"
#include "bench/bench_util.h"
#include "infer/alignment_graph.h"
#include "infer/inference_power.h"

int main(int argc, char** argv) {
  const daakg::bench::BenchArgs args = daakg::bench::ParseBenchArgs(argc, argv);
  using namespace daakg;
  using namespace daakg::bench;
  BenchEnv env = BenchEnv::FromEnv();
  std::printf("=== Table 6: inference power accuracy (kappa = 0.8), "
              "scale %.2f ===\n", env.scale);
  std::printf("%-10s %8s %8s %8s %8s\n", "Model", "D-W", "D-Y", "EN-DE",
              "EN-FR");

  for (const char* model : {"transe", "rotate", "compgcn"}) {
    std::printf("%-10s ", model);
    for (BenchmarkDataset dataset : AllDatasets()) {
      AlignmentTask task = MakeTask(dataset, env);
      DaakgConfig cfg = DaakgBenchConfig(model, env);
      DaakgAligner aligner(&task, cfg);
      Rng rng(env.seed ^ 0x5EEDULL);
      SeedAlignment seed = task.SampleSeed(env.seed_fraction, &rng);
      aligner.Train(seed);
      aligner.RefreshCaches();

      PoolConfig pool_cfg;
      pool_cfg.top_n = 15;
      PoolGenerator gen(&task, aligner.joint(), pool_cfg);
      std::vector<ElementPair> pool = gen.Generate();
      AlignmentGraph graph(&task, pool);
      InferenceConfig icfg = cfg.infer;
      icfg.power_floor = icfg.kappa;  // only record pairs above kappa
      InferenceEngine engine(&graph, aligner.joint(), icfg);
      engine.PrecomputeEdgeCosts();

      // Infer from every labeled seed match present in the pool; measure
      // the precision of the inferred (power > kappa) pairs.
      std::unordered_map<uint32_t, float> inferred;
      auto infer_from = [&](const ElementPair& pair) {
        uint32_t node = graph.IndexOf(pair);
        if (node == kInvalidId) return;
        for (const auto& [target, power] : engine.PowerFrom(node)) {
          auto& slot = inferred[target];
          slot = std::max(slot, power);
        }
      };
      for (const auto& [e1, e2] : seed.entities) {
        infer_from(ElementPair{ElementKind::kEntity, e1, e2});
      }
      for (const auto& [r1, r2] : seed.relations) {
        infer_from(ElementPair{ElementKind::kRelation, r1, r2});
      }

      size_t correct = 0;
      for (const auto& [node, power] : inferred) {
        if (task.IsGoldMatch(pool[node])) ++correct;
      }
      const double accuracy =
          inferred.empty()
              ? 0.0
              : static_cast<double>(correct) / static_cast<double>(inferred.size());
      std::printf("%8.3f ", accuracy);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\nPaper: TransE 0.933-0.977, RotatE 0.824-0.957, "
              "CompGCN 0.763-0.872.\n");
  daakg::bench::MaybeDumpMetrics(args);
  return 0;
}
