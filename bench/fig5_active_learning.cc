// Reproduces Figure 5: progressive entity-alignment H@1 and F1 of the six
// active alignment algorithms (Random, Degree, PageRank, Uncertainty,
// ActiveEA, DAAKG) at 10%..50% labeled-match fractions, on all datasets.
//
// Expected shape: all curves rise with more labels; DAAKG and ActiveEA
// (the structure-aware strategies) dominate the structure-blind ones.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/active_loop.h"

int main(int argc, char** argv) {
  const daakg::bench::BenchArgs args = daakg::bench::ParseBenchArgs(argc, argv);
  using namespace daakg;
  using namespace daakg::bench;
  BenchEnv env = BenchEnv::FromEnv();
  // The active loop retrains after every batch; TransE keeps the sweep
  // affordable (override with DAAKG_BENCH_MODEL to reproduce the CompGCN /
  // RotatE panels of the figure).
  const std::string model =
      std::getenv("DAAKG_BENCH_MODEL") ? std::getenv("DAAKG_BENCH_MODEL")
                                       : "transe";
  std::printf("=== Figure 5: active alignment (model %s, scale %.2f) ===\n",
              model.c_str(), env.scale);

  for (BenchmarkDataset dataset : AllDatasets()) {
    AlignmentTask task = MakeTask(dataset, env);
    std::printf("\n--- dataset %s ---\n", task.name.c_str());
    std::printf("%-12s %8s %8s %8s %8s %8s   (entity H@1 at 10/20/30/40/50%%)\n",
                "Strategy", "10%", "20%", "30%", "40%", "50%");

    auto strategies = MakeAllStrategies();
    for (auto& strategy : strategies) {
      DaakgConfig cfg = DaakgBenchConfig(model, env);
      // Fine-tuning re-runs per batch; trim the per-round work so the
      // 6-strategy x 4-dataset sweep stays tractable.
      cfg.align.align_epochs = std::max(30, cfg.align.align_epochs / 3);
      cfg.fine_tune_epochs = 4;
      DaakgAligner aligner(&task, cfg);
      GoldOracle oracle(&task);
      ActiveLoopConfig loop_cfg;
      loop_cfg.batch_size =
          std::max<size_t>(10, task.gold_entities.size() / 5);
      loop_cfg.initial_seed_fraction = 0.05;
      loop_cfg.report_fractions = {0.1, 0.2, 0.3, 0.4, 0.5};
      loop_cfg.pool.top_n = 15;
      loop_cfg.seed = env.seed;
      ActiveAlignmentLoop loop(&task, &aligner, strategy.get(), &oracle,
                               loop_cfg);
      auto reports = loop.Run();

      std::printf("%-12s", strategy->name().c_str());
      for (const auto& r : reports) {
        std::printf(" %8.3f", r.eval.ent_rank.hits_at_1);
      }
      std::printf("   F1:");
      for (const auto& r : reports) {
        std::printf(" %.3f", r.eval.ent_prf.f1);
      }
      std::printf("  (queries: %zu)\n", oracle.queries());
      std::fflush(stdout);
    }
  }
  daakg::bench::MaybeDumpMetrics(args);
  return 0;
}
