#ifndef DAAKG_BENCH_BENCH_UTIL_H_
#define DAAKG_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "baselines/baseline_result.h"
#include "core/daakg.h"
#include "kg/synthetic.h"

namespace daakg {
namespace bench {

// Shared configuration of the reproduction benches. Environment knobs:
//   DAAKG_BENCH_SCALE   dataset scale factor (default 0.2 => 400 vs 280
//                       entities; the paper's datasets are 100k vs 70k)
//   DAAKG_BENCH_SEED    RNG seed (default 17)
//   DAAKG_BENCH_MODEL   default KGE model for DAAKG rows ("compgcn")
struct BenchEnv {
  double scale = 0.2;
  uint64_t seed = 17;
  double seed_fraction = 0.2;  // seed alignment = 20% of gold matches
  std::string model = "compgcn";

  static BenchEnv FromEnv();
};

// All four Table 2 dataset analogues.
std::vector<BenchmarkDataset> AllDatasets();

// Generates one dataset at the bench scale.
AlignmentTask MakeTask(BenchmarkDataset dataset, const BenchEnv& env);

// DAAKG configuration tuned per base model so the CPU bench stays
// affordable (CompGCN's GNN encoder is ~8x the per-epoch cost of TransE).
// Aborts on an unknown model name (benches are not library code).
DaakgConfig DaakgBenchConfig(const std::string& model, const BenchEnv& env);

// Command-line flags shared by the bench mains:
//   --metrics_json=<path>   dump the global metrics registry as JSON on
//                           MaybeDumpMetrics()
//   --index_json=<path>     fig6_pool_recall only: write the candidate-index
//                           backend sweep (recall vs exact + speedup per
//                           (nlist, nprobe) point) as JSON
//   --trace_json=<path>     start a structured-trace session for the whole
//                           bench run and export Chrome trace-event JSON
//                           (Perfetto-loadable) at exit
struct BenchArgs {
  std::string metrics_json;
  std::string index_json;
  std::string trace_json;
};

// Parses the flags above; unknown arguments abort with a usage message.
BenchArgs ParseBenchArgs(int argc, char** argv);

// Writes the global metrics registry to `args.metrics_json` when set.
void MaybeDumpMetrics(const BenchArgs& args);

// Trains DAAKG on `task` from a fresh `seed_fraction` seed and returns the
// evaluation plus wall-clock (a Table 3/4/5 row).
BaselineResult RunDaakg(const AlignmentTask& task, const DaakgConfig& config,
                        const BenchEnv& env, const std::string& row_name);

// Formatting helpers: one row of "name | entity H@1/MRR/F1 | relation ... |
// class ..." plus a header.
std::string ResultHeader();
std::string FormatResultRow(const BaselineResult& result);

}  // namespace bench
}  // namespace daakg

#endif  // DAAKG_BENCH_BENCH_UTIL_H_
