#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "obs/json_exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace daakg {
namespace bench {

BenchEnv BenchEnv::FromEnv() {
  BenchEnv env;
  if (const char* s = std::getenv("DAAKG_BENCH_SCALE")) {
    env.scale = std::atof(s);
    DAAKG_CHECK_GT(env.scale, 0.0);
  }
  if (const char* s = std::getenv("DAAKG_BENCH_SEED")) {
    env.seed = static_cast<uint64_t>(std::atoll(s));
  }
  if (const char* s = std::getenv("DAAKG_BENCH_MODEL")) {
    env.model = s;
  }
  return env;
}

std::vector<BenchmarkDataset> AllDatasets() {
  return {BenchmarkDataset::kDW, BenchmarkDataset::kDY,
          BenchmarkDataset::kEnDe, BenchmarkDataset::kEnFr};
}

AlignmentTask MakeTask(BenchmarkDataset dataset, const BenchEnv& env) {
  auto task = MakeBenchmarkTask(dataset, env.scale, env.seed);
  DAAKG_CHECK(task.ok());
  return std::move(task).value();
}

DaakgConfig DaakgBenchConfig(const std::string& model, const BenchEnv& env) {
  DaakgConfig cfg;
  auto kind = ParseKgeModelKind(model);
  if (!kind.ok()) {
    LOG_FATAL << "DAAKG_BENCH_MODEL: " << kind.status();
  }
  cfg.kge_model = kind.value();
  cfg.seed = env.seed;
  if (model == "compgcn") {
    // The GNN encoder costs ~dim^2 per representation; trim dimension and
    // rounds so the 4-dataset sweeps stay CPU-affordable.
    cfg.kge.dim = 32;
    cfg.align.align_epochs = 60;
  }
  return cfg;
}

BaselineResult RunDaakg(const AlignmentTask& task, const DaakgConfig& config,
                        const BenchEnv& env, const std::string& row_name) {
  WallTimer timer;
  DaakgAligner aligner(&task, config);
  Rng rng(env.seed ^ 0x5EEDULL);
  SeedAlignment seed = task.SampleSeed(env.seed_fraction, &rng);
  aligner.Train(seed);
  BaselineResult result;
  result.name = row_name;
  result.eval = aligner.Evaluate();
  result.train_seconds = timer.ElapsedSeconds();
  return result;
}

BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  constexpr const char kMetricsFlag[] = "--metrics_json=";
  constexpr const char kIndexFlag[] = "--index_json=";
  constexpr const char kTraceFlag[] = "--trace_json=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kMetricsFlag, sizeof(kMetricsFlag) - 1) == 0) {
      args.metrics_json = argv[i] + sizeof(kMetricsFlag) - 1;
      continue;
    }
    if (std::strncmp(argv[i], kIndexFlag, sizeof(kIndexFlag) - 1) == 0) {
      args.index_json = argv[i] + sizeof(kIndexFlag) - 1;
      continue;
    }
    if (std::strncmp(argv[i], kTraceFlag, sizeof(kTraceFlag) - 1) == 0) {
      args.trace_json = argv[i] + sizeof(kTraceFlag) - 1;
      continue;
    }
    LOG_FATAL << "unknown argument: " << argv[i] << " (usage: " << argv[0]
              << " [--metrics_json=<path>] [--index_json=<path>]"
              << " [--trace_json=<path>])";
  }
  if (!args.trace_json.empty()) {
    if (obs::TraceSession::Global().active()) {
      // DAAKG_TRACE already started a session (and owns the export path).
      LOG_WARNING << "--trace_json=" << args.trace_json
                  << " ignored: a trace session is already active"
                  << " (DAAKG_TRACE?)";
    } else {
      Status status =
          obs::TraceSession::Global().StartWithExportAtExit(args.trace_json);
      if (!status.ok()) {
        LOG_FATAL << "starting trace session for " << args.trace_json << ": "
                  << status;
      }
    }
  }
  return args;
}

void MaybeDumpMetrics(const BenchArgs& args) {
  if (args.metrics_json.empty()) return;
  Status status =
      obs::WriteMetricsJson(obs::GlobalMetrics(), args.metrics_json);
  if (!status.ok()) {
    LOG_FATAL << "writing " << args.metrics_json << ": " << status;
  }
  std::printf("metrics written to %s\n", args.metrics_json.c_str());
}

std::string ResultHeader() {
  return StrFormat(
      "%-22s | %6s %6s %6s | %6s %6s %6s | %6s %6s %6s | %8s\n"
      "%-22s | %20s | %20s | %20s |",
      "Method", "entH1", "entMRR", "entF1", "relH1", "relMRR", "relF1",
      "clsH1", "clsMRR", "clsF1", "time(s)", "", "---- entities ----",
      "---- relations ---", "----- classes ----");
}

std::string FormatResultRow(const BaselineResult& r) {
  return StrFormat(
      "%-22s | %6.3f %6.3f %6.3f | %6.3f %6.3f %6.3f | %6.3f %6.3f %6.3f | "
      "%8.1f",
      r.name.c_str(), r.eval.ent_rank.hits_at_1, r.eval.ent_rank.mrr,
      r.eval.ent_prf.f1, r.eval.rel_rank.hits_at_1, r.eval.rel_rank.mrr,
      r.eval.rel_prf.f1, r.eval.cls_rank.hits_at_1, r.eval.cls_rank.mrr,
      r.eval.cls_prf.f1, r.train_seconds);
}

}  // namespace bench
}  // namespace daakg
