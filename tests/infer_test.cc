#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/thread_pool.h"
#include "embedding/trainer.h"
#include "infer/alignment_graph.h"
#include "infer/inference_power.h"
#include "tests/test_util.h"

namespace daakg {
namespace {

using testing_util::MirrorTask;

// Fixture: the handcrafted mirror task with a trained joint model and a
// pool containing the identity pairs (plus all schema pairs).
class InferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = MirrorTask();
    KgeConfig kge;
    kge.dim = 8;
    kge.class_dim = 4;
    kge.epochs = 30;
    model1_ = MakeKgeModel(KgeModelKind::kTransE, &task_.kg1, kge);
    model2_ = MakeKgeModel(KgeModelKind::kTransE, &task_.kg2, kge);
    Rng rng(31);
    model1_->Init(&rng);
    model2_->Init(&rng);
    JointAlignConfig cfg;
    joint_ = std::make_unique<JointAlignmentModel>(
        model1_.get(), model2_.get(), nullptr, nullptr, cfg);
    joint_->Init(&rng);
    KgeTrainer t1(model1_.get(), nullptr);
    KgeTrainer t2(model2_.get(), nullptr);
    Rng r1(32), r2(33);
    t1.Train(&r1);
    t2.Train(&r2);

    // Pool: all entity pairs (6x6) + all relation pairs + all class pairs.
    for (uint32_t e1 = 0; e1 < 6; ++e1) {
      for (uint32_t e2 = 0; e2 < 6; ++e2) {
        pool_.push_back(ElementPair{ElementKind::kEntity, e1, e2});
      }
    }
    for (uint32_t r1 = 0; r1 < 2; ++r1) {
      for (uint32_t r2 = 0; r2 < 2; ++r2) {
        pool_.push_back(ElementPair{ElementKind::kRelation, r1, r2});
      }
    }
    for (uint32_t c1 = 0; c1 < 2; ++c1) {
      for (uint32_t c2 = 0; c2 < 2; ++c2) {
        pool_.push_back(ElementPair{ElementKind::kClass, c1, c2});
      }
    }
    joint_->RefreshCaches();
    graph_ = std::make_unique<AlignmentGraph>(&task_, pool_);
  }

  InferenceConfig EngineConfig() {
    InferenceConfig cfg;
    cfg.power_floor = 0.01;  // keep everything; tests filter themselves
    cfg.max_hops = 3;
    // Tests reason about raw costs (Eq. 15/17); disable the bench-oriented
    // auto-calibration.
    cfg.auto_calibrate_costs = false;
    return cfg;
  }

  AlignmentTask task_;
  std::unique_ptr<KgeModel> model1_, model2_;
  std::unique_ptr<JointAlignmentModel> joint_;
  std::vector<ElementPair> pool_;
  std::unique_ptr<AlignmentGraph> graph_;
};

TEST_F(InferTest, GraphIndexesPool) {
  EXPECT_EQ(graph_->num_nodes(), pool_.size());
  for (uint32_t i = 0; i < pool_.size(); ++i) {
    EXPECT_EQ(graph_->IndexOf(pool_[i]), i);
  }
  EXPECT_EQ(graph_->IndexOf(ElementPair{ElementKind::kEntity, 99, 99}),
            kInvalidId);
}

TEST_F(InferTest, ExpectedRelationalEdgeExists) {
  // (p0_a, p0_b) --(livesIn, livesIn)--> (c0_a, c0_b): p0 ids are 0, c0 is 3.
  uint32_t src = graph_->IndexOf(ElementPair{ElementKind::kEntity, 0, 0});
  uint32_t dst = graph_->IndexOf(ElementPair{ElementKind::kEntity, 3, 3});
  uint32_t rel = graph_->IndexOf(ElementPair{ElementKind::kRelation, 0, 0});
  bool found = false;
  for (const auto& e : graph_->Out(src)) {
    if (e.target == dst && e.rel_pair == rel) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(InferTest, ReverseEdgeAlsoMaterialized) {
  // The reverse direction (c0, c0) -> (p0, p0) must exist with the same
  // base relation-pair label.
  uint32_t src = graph_->IndexOf(ElementPair{ElementKind::kEntity, 3, 3});
  uint32_t dst = graph_->IndexOf(ElementPair{ElementKind::kEntity, 0, 0});
  bool found = false;
  for (const auto& e : graph_->Out(src)) {
    if (e.target == dst) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(InferTest, TypeEdgesPointToClassPairs) {
  uint32_t src = graph_->IndexOf(ElementPair{ElementKind::kEntity, 0, 0});
  uint32_t person_pair =
      graph_->IndexOf(ElementPair{ElementKind::kClass, 0, 0});
  bool found = false;
  for (const auto& e : graph_->Out(src)) {
    if (e.rel_pair == AlignmentGraph::kTypeLabel && e.target == person_pair) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(InferTest, MismatchedDirectionEdgesAreNotCreated) {
  // An entity pair mixing a forward edge on one side with a reverse edge on
  // the other must not be linked: check (p0, c0) has no edge to (c0, p0)
  // labeled by (livesIn, livesIn).
  uint32_t src = graph_->IndexOf(ElementPair{ElementKind::kEntity, 0, 3});
  uint32_t dst = graph_->IndexOf(ElementPair{ElementKind::kEntity, 3, 0});
  for (const auto& e : graph_->Out(src)) {
    EXPECT_NE(e.target, dst);
  }
}

TEST_F(InferTest, EdgeCostsNonNegativeAndFinite) {
  InferenceEngine engine(graph_.get(), joint_.get(), EngineConfig());
  engine.PrecomputeEdgeCosts();
  for (uint32_t q = 0; q < graph_->num_nodes(); ++q) {
    const auto& out = graph_->Out(q);
    for (size_t k = 0; k < out.size(); ++k) {
      float c = engine.EdgeCost(q, k);
      if (out[k].rel_pair == AlignmentGraph::kTypeLabel) {
        EXPECT_TRUE(std::isinf(c));
      } else {
        EXPECT_GE(c, 0.0f);
        EXPECT_TRUE(std::isfinite(c));
      }
    }
  }
}

TEST_F(InferTest, TransEEdgeCostMatchesManualFormula) {
  InferenceEngine engine(graph_.get(), joint_.get(), EngineConfig());
  engine.PrecomputeEdgeCosts();
  // Edge cost = w_rel (1 - S(r1, r2)) + w_res (d1 + d2) + w_alt (extra
  // parallel edges); for TransE the d terms are the score residuals.
  const InferenceConfig cfg = EngineConfig();
  uint32_t src = graph_->IndexOf(ElementPair{ElementKind::kEntity, 0, 0});
  const auto& out = graph_->Out(src);
  for (size_t k = 0; k < out.size(); ++k) {
    if (out[k].rel_pair == AlignmentGraph::kTypeLabel) continue;
    const ElementPair& rel = graph_->pool()[out[k].rel_pair];
    const ElementPair& dst = graph_->pool()[out[k].target];
    RelationId r1 = rel.first;
    if (!task_.kg1.HasTriplet(0, r1, dst.first)) {
      r1 = task_.kg1.ReverseOf(r1);
    }
    RelationId r2 = rel.second;
    if (!task_.kg2.HasTriplet(0, r2, dst.second)) {
      r2 = task_.kg2.ReverseOf(r2);
    }
    auto parallel = [](const KnowledgeGraph& kg, EntityId h, RelationId r) {
      size_t n = 0;
      for (const auto& nb : kg.Neighbors(h)) n += (nb.relation == r);
      return n;
    };
    const float alternatives = static_cast<float>(
        parallel(task_.kg1, 0, r1) - 1 + parallel(task_.kg2, 0, r2) - 1);
    float expected =
        cfg.rel_diff_weight *
            (1.0f - joint_->relation_sim()(rel.first, rel.second)) +
        cfg.residual_weight * (model1_->Score(0, r1, dst.first) +
                               model2_->Score(0, r2, dst.second)) +
        cfg.alt_penalty * alternatives;
    EXPECT_NEAR(engine.EdgeCost(src, k), expected, 1e-3f);
  }
}

TEST_F(InferTest, PowerFromEntityReachesNeighborsWithinHops) {
  InferenceEngine engine(graph_.get(), joint_.get(), EngineConfig());
  engine.PrecomputeEdgeCosts();
  uint32_t src = graph_->IndexOf(ElementPair{ElementKind::kEntity, 0, 0});
  PowerRow row = engine.PowerFrom(src);
  // Powers must be in (0, 1] and must not include the source itself.
  for (const auto& [node, power] : row) {
    EXPECT_NE(node, src);
    EXPECT_GT(power, 0.0f);
    EXPECT_LE(power, 1.0f);
  }
}

TEST_F(InferTest, MultiHopPowerIsNotGreaterThanOneHop) {
  InferenceEngine engine(graph_.get(), joint_.get(), EngineConfig());
  engine.PrecomputeEdgeCosts();
  // p0 -> c0 is one hop; p0 -> p1 -> ... : any two-hop target's power must
  // be <= the max single-edge power (costs add up).
  uint32_t src = graph_->IndexOf(ElementPair{ElementKind::kEntity, 0, 0});
  PowerRow row = engine.PowerFrom(src);
  float best_onehop = 0.0f;
  const auto& out = graph_->Out(src);
  for (size_t k = 0; k < out.size(); ++k) {
    if (out[k].rel_pair == AlignmentGraph::kTypeLabel) continue;
    best_onehop =
        std::max(best_onehop, 1.0f / (1.0f + engine.EdgeCost(src, k)));
  }
  for (const auto& [node, power] : row) {
    if (graph_->pool()[node].kind == ElementKind::kEntity) {
      EXPECT_LE(power, best_onehop + 1e-5f);
    }
  }
}

TEST_F(InferTest, ClassPairSourceHasNoOutgoingPower) {
  InferenceEngine engine(graph_.get(), joint_.get(), EngineConfig());
  engine.PrecomputeEdgeCosts();
  uint32_t cls = graph_->IndexOf(ElementPair{ElementKind::kClass, 0, 0});
  EXPECT_TRUE(engine.PowerFrom(cls).empty());
}

TEST_F(InferTest, GradientPowerZeroForNonMembers) {
  InferenceEngine engine(graph_.get(), joint_.get(), EngineConfig());
  engine.PrecomputeEdgeCosts();
  // p0 (class Person=0) has no membership in City (=1) on either side.
  float p = engine.PowerEntityToClass(
      ElementPair{ElementKind::kEntity, 0, 0},
      ElementPair{ElementKind::kClass, 1, 1});
  EXPECT_FLOAT_EQ(p, 0.0f);
}

TEST_F(InferTest, GradientPowersBounded) {
  InferenceEngine engine(graph_.get(), joint_.get(), EngineConfig());
  engine.PrecomputeEdgeCosts();
  float pc = engine.PowerEntityToClass(
      ElementPair{ElementKind::kEntity, 0, 0},
      ElementPair{ElementKind::kClass, 0, 0});
  EXPECT_GE(pc, 0.0f);
  EXPECT_LE(pc, 1.0f);
  float pr = engine.PowerEntityToRelation(
      ElementPair{ElementKind::kEntity, 0, 0},
      ElementPair{ElementKind::kRelation, 0, 0},
      ElementPair{ElementKind::kEntity, 3, 3});
  EXPECT_GE(pr, 0.0f);
  EXPECT_LE(pr, 1.0f);
}

TEST_F(InferTest, OneHopPowersMatchEdgeCosts) {
  InferenceEngine engine(graph_.get(), joint_.get(), EngineConfig());
  engine.PrecomputeEdgeCosts();
  uint32_t src = graph_->IndexOf(ElementPair{ElementKind::kEntity, 0, 0});
  auto onehop = engine.OneHopPowers(src);
  const auto& out = graph_->Out(src);
  for (const auto& hp : onehop) {
    // Find the matching edge and verify the power.
    bool matched = false;
    for (size_t k = 0; k < out.size(); ++k) {
      if (out[k].target != hp.target || out[k].rel_pair != hp.label) continue;
      if (hp.label == AlignmentGraph::kTypeLabel) {
        matched = true;  // gradient power, checked elsewhere
      } else if (std::fabs(hp.power -
                           1.0f / (1.0f + engine.EdgeCost(src, k))) < 1e-5f) {
        matched = true;
      }
      if (matched) break;
    }
    EXPECT_TRUE(matched);
  }
}

TEST_F(InferTest, RelationPairSourceUsesLikelyMatches) {
  InferenceConfig cfg = EngineConfig();
  cfg.likely_match_prob = 0.0;  // treat every source pair as likely
  InferenceEngine engine(graph_.get(), joint_.get(), cfg);
  engine.PrecomputeEdgeCosts();
  uint32_t rel = graph_->IndexOf(ElementPair{ElementKind::kRelation, 0, 0});
  PowerRow row = engine.PowerFrom(rel);
  EXPECT_FALSE(row.empty());
  for (const auto& [node, power] : row) {
    EXPECT_EQ(graph_->pool()[node].kind, ElementKind::kEntity);
    EXPECT_GT(power, 0.0f);
    EXPECT_LE(power, 1.0f);
  }
}

TEST_F(InferTest, AutoCalibrationLiftsGoodEdgesAboveKappa) {
  InferenceConfig cfg = EngineConfig();
  cfg.auto_calibrate_costs = true;
  cfg.calibration_percentile = 0.2;
  InferenceEngine engine(graph_.get(), joint_.get(), cfg);
  engine.PrecomputeEdgeCosts();
  size_t finite = 0, strong = 0;
  for (uint32_t q = 0; q < graph_->num_nodes(); ++q) {
    for (size_t k = 0; k < graph_->Out(q).size(); ++k) {
      const float c = engine.EdgeCost(q, k);
      if (!std::isfinite(c)) continue;
      ++finite;
      if (1.0f / (1.0f + c) >= 0.85f) ++strong;
    }
  }
  ASSERT_GT(finite, 0u);
  // The 20th percentile is calibrated to power ~0.9, so at least ~15% of
  // edges must clear 0.85.
  EXPECT_GE(static_cast<double>(strong) / static_cast<double>(finite), 0.15);
}

TEST_F(InferTest, HigherPowerFloorPrunesMore) {
  InferenceConfig loose = EngineConfig();
  InferenceConfig strict = EngineConfig();
  strict.power_floor = 0.8;
  InferenceEngine e1(graph_.get(), joint_.get(), loose);
  e1.PrecomputeEdgeCosts();
  InferenceEngine e2(graph_.get(), joint_.get(), strict);
  e2.PrecomputeEdgeCosts();
  uint32_t src = graph_->IndexOf(ElementPair{ElementKind::kEntity, 0, 0});
  EXPECT_GE(e1.PowerFrom(src).size(), e2.PowerFrom(src).size());
}

// Regression: the alternatives term used to be computed as
// (count1 - 1) + (count2 - 1) in size_t, so a zero count wrapped to ~1.8e19
// and poisoned the edge cost. Each side must clamp at zero independently.
TEST(AlternativeEntitySlackTest, ClampsEachSideAtZero) {
  EXPECT_FLOAT_EQ(AlternativeEntitySlack(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(AlternativeEntitySlack(1, 1), 0.0f);
  EXPECT_FLOAT_EQ(AlternativeEntitySlack(0, 3), 2.0f);
  EXPECT_FLOAT_EQ(AlternativeEntitySlack(3, 0), 2.0f);
  EXPECT_FLOAT_EQ(AlternativeEntitySlack(4, 2), 4.0f);
  EXPECT_FLOAT_EQ(AlternativeEntitySlack(0, 1), 0.0f);
}

TEST_F(InferTest, SlackFromGenuineZeroParallelEdgeCount) {
  // In the mirror task, city c0 (entity 3) is only ever the *tail* of
  // livesIn; its outgoing neighbor list holds the reverse relation, so the
  // count of base livesIn at head c0 is genuinely zero.
  const RelationId lives_in = 0;
  size_t count = 0;
  for (const auto& nb : task_.kg1.Neighbors(3)) {
    count += (nb.relation == lives_in);
  }
  ASSERT_EQ(count, 0u);
  EXPECT_FLOAT_EQ(AlternativeEntitySlack(count, 1), 0.0f);
  // The reverse relation, by contrast, is present.
  size_t rev_count = 0;
  for (const auto& nb : task_.kg1.Neighbors(3)) {
    rev_count += (nb.relation == task_.kg1.ReverseOf(lives_in));
  }
  EXPECT_GE(rev_count, 1u);
}

TEST_F(InferTest, ReverseResolvedEdgeCostsStayModest) {
  // Edges out of (c0, c0) resolve their label through the reverse relation;
  // an unsigned wrap in the alternatives term would blow these costs up to
  // ~1.8e19 * alt_penalty.
  InferenceEngine engine(graph_.get(), joint_.get(), EngineConfig());
  engine.PrecomputeEdgeCosts();
  uint32_t src = graph_->IndexOf(ElementPair{ElementKind::kEntity, 3, 3});
  ASSERT_NE(src, kInvalidId);
  const auto& out = graph_->Out(src);
  size_t relational = 0;
  for (size_t k = 0; k < out.size(); ++k) {
    if (out[k].rel_pair == AlignmentGraph::kTypeLabel) continue;
    ++relational;
    const float c = engine.EdgeCost(src, k);
    EXPECT_TRUE(std::isfinite(c));
    EXPECT_LT(c, 1e4f);
  }
  EXPECT_GT(relational, 0u);
}

// Regression for the BoundFor data race: PowerFrom runs under ParallelFor
// in selection, so the bound caches must be fully populated by
// PrecomputeEdgeCosts and never written afterwards (BoundFor CHECK-fails on
// a miss). Querying every node from many threads at once must succeed.
TEST_F(InferTest, PowerFromEveryNodeConcurrently) {
  InferenceEngine engine(graph_.get(), joint_.get(), EngineConfig());
  engine.PrecomputeEdgeCosts();
  const size_t n = graph_->num_nodes();
  std::vector<size_t> entry_counts(n);
  GlobalThreadPool().ParallelFor(n, [&](size_t q) {
    entry_counts[q] = engine.PowerFrom(static_cast<uint32_t>(q)).size();
  });
  // Sanity: at least one node produces powers, and repeated concurrent
  // queries are deterministic.
  size_t total = 0;
  for (size_t c : entry_counts) total += c;
  EXPECT_GT(total, 0u);
  std::vector<size_t> second(n);
  GlobalThreadPool().ParallelFor(n, [&](size_t q) {
    second[q] = engine.PowerFrom(static_cast<uint32_t>(q)).size();
  });
  EXPECT_EQ(entry_counts, second);
}

}  // namespace
}  // namespace daakg
