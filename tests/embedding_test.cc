#include <gtest/gtest.h>

#include <cmath>

#include "embedding/entity_class_model.h"
#include "embedding/gradcheck.h"
#include "embedding/kge_model.h"
#include "embedding/negative_sampler.h"
#include "embedding/trainer.h"
#include "tests/test_util.h"

namespace daakg {
namespace {

using testing_util::SmallSyntheticTask;

KgeConfig TestConfig() {
  KgeConfig cfg;
  cfg.dim = 16;
  cfg.class_dim = 8;
  cfg.epochs = 10;
  cfg.seed = 5;
  return cfg;
}

class KgeModelTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    task_ = SmallSyntheticTask();
    model_ = MakeKgeModel(GetParam(), &task_.kg1, TestConfig()).value();
    Rng rng(77);
    model_->Init(&rng);
  }
  AlignmentTask task_;
  std::unique_ptr<KgeModel> model_;
};

TEST_P(KgeModelTest, ScoresAreNonNegativeAndFinite) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Triplet& t =
        task_.kg1.triplets()[rng.NextUint64(task_.kg1.num_triplets())];
    float s = model_->Score(t.head, t.relation, t.tail);
    EXPECT_GE(s, 0.0f);
    EXPECT_TRUE(std::isfinite(s));
  }
}

TEST_P(KgeModelTest, TrainPairIsDescentDirection) {
  // One SGD step with a small learning rate must not increase the margin
  // loss (an empirical check that every analytic gradient points downhill).
  Rng rng(2);
  NegativeSampler sampler(&task_.kg1);
  int checked = 0;
  for (int i = 0; i < 200 && checked < 25; ++i) {
    const Triplet& pos =
        task_.kg1.triplets()[rng.NextUint64(task_.kg1.num_triplets())];
    EntityId neg = sampler.CorruptTail(pos, &rng);
    const float margin = model_->config().margin_er;
    const float before = margin + model_->Score(pos.head, pos.relation, pos.tail) -
                         model_->Score(pos.head, pos.relation, neg);
    if (before <= 0.0f) continue;  // already satisfied, no gradient
    model_->TrainPair(pos, neg, 1e-3f);
    const float after = margin + model_->Score(pos.head, pos.relation, pos.tail) -
                        model_->Score(pos.head, pos.relation, neg);
    EXPECT_LE(after, before + 1e-4f);
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST_P(KgeModelTest, TrainingSeparatesTrueFromCorrupted) {
  KgeTrainer trainer(model_.get(), nullptr);
  Rng rng(3);
  trainer.Train(&rng);
  // After training, true triplets should score lower (closer) than
  // corrupted ones on average.
  NegativeSampler sampler(&task_.kg1);
  double true_sum = 0.0, fake_sum = 0.0;
  int n = 0;
  for (int i = 0; i < 200; ++i) {
    const Triplet& t =
        task_.kg1.triplets()[rng.NextUint64(task_.kg1.num_triplets())];
    EntityId neg = sampler.CorruptTail(t, &rng);
    true_sum += model_->Score(t.head, t.relation, t.tail);
    fake_sum += model_->Score(t.head, t.relation, neg);
    ++n;
  }
  EXPECT_LT(true_sum / n, fake_sum / n);
}

TEST_P(KgeModelTest, ReprDimensionsConsistent) {
  EXPECT_EQ(model_->EntityRepr(0).dim(), model_->dim());
  EXPECT_EQ(model_->RelationRepr(0).dim(), model_->dim());
  EXPECT_EQ(model_->LocalOptimumRelation(0, 1).dim(), model_->dim());
}

TEST_P(KgeModelTest, EstimateEdgeBoundOutputsSane) {
  Rng rng(4);
  const Triplet& t = task_.kg1.triplets()[0];
  Vector r_tilde;
  float d = -1.0f;
  model_->EstimateEdgeBound(t.head, t.relation, t.tail, 3, &rng, &r_tilde, &d);
  EXPECT_EQ(r_tilde.dim(), model_->dim());
  EXPECT_GE(d, 0.0f);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_TRUE(std::isfinite(r_tilde.Norm()));
}

TEST_P(KgeModelTest, BackpropEntityReprReducesAlignmentGap) {
  // Pulling an entity's representation toward a target with the repr
  // gradient must reduce the distance to that target.
  EntityId e = 3;
  Vector target = model_->EntityRepr(4);
  Vector repr = model_->EntityRepr(e);
  float before = EuclideanDistance(repr, target);
  // Gradient of 0.5 ||repr - target||^2 wrt repr.
  Vector grad = repr - target;
  for (int i = 0; i < 20; ++i) {
    model_->BackpropEntityRepr(e, model_->EntityRepr(e) - target, 0.05f);
  }
  float after = EuclideanDistance(model_->EntityRepr(e), target);
  EXPECT_LT(after, before);
  (void)grad;
}

INSTANTIATE_TEST_SUITE_P(AllModels, KgeModelTest,
                         ::testing::Values("transe", "rotate", "compgcn"));

// ---------------------------------------------------------------------------
// TransE analytic gradient vs finite differences
// ---------------------------------------------------------------------------

TEST(TransEGradientTest, ScoreGradientMatchesFiniteDifference) {
  AlignmentTask task = SmallSyntheticTask();
  auto model = MakeKgeModel(KgeModelKind::kTransE, &task.kg1, TestConfig());
  Rng rng(9);
  model->Init(&rng);
  const Triplet& t = task.kg1.triplets()[2];

  // Analytic: d f / d h = (h + r - t) / f.
  Vector h = model->EntityVec(t.head);
  Vector r = model->RelationVec(t.relation);
  Vector tail = model->EntityVec(t.tail);
  Vector diff = h + r - tail;
  float f = diff.Norm();
  ASSERT_GT(f, 1e-4f);
  Vector analytic = diff * (1.0f / f);

  Vector numeric = NumericalGradient(
      [&](const Vector& x) {
        Vector d2 = x + r - tail;
        return d2.Norm();
      },
      h);
  EXPECT_LT(MaxRelativeError(analytic, numeric), 5e-2f);
}

// ---------------------------------------------------------------------------
// RotatE specifics
// ---------------------------------------------------------------------------

TEST(RotatETest, RequiresEvenDimension) {
  AlignmentTask task = SmallSyntheticTask();
  KgeConfig cfg = TestConfig();
  cfg.dim = 16;
  auto model = MakeKgeModel(KgeModelKind::kRotatE, &task.kg1, cfg);
  EXPECT_EQ(model->dim(), 16u);
}

TEST(RotatETest, RelationReprIsUnitPerCoordinate) {
  AlignmentTask task = SmallSyntheticTask();
  auto model = MakeKgeModel(KgeModelKind::kRotatE, &task.kg1, TestConfig());
  Rng rng(10);
  model->Init(&rng);
  Vector repr = model->RelationRepr(0);
  for (size_t k = 0; k < repr.dim() / 2; ++k) {
    float norm = repr[2 * k] * repr[2 * k] + repr[2 * k + 1] * repr[2 * k + 1];
    EXPECT_NEAR(norm, 1.0f, 1e-5f);  // (cos, sin) pairs
  }
}

TEST(RotatETest, IdentityRotationPreservesEntity) {
  AlignmentTask task = SmallSyntheticTask();
  auto model = MakeKgeModel(KgeModelKind::kRotatE, &task.kg1, TestConfig());
  Rng rng(11);
  model->Init(&rng);
  // Zero all phases of relation 0: h o r == h, so Score = ||h - t||.
  for (size_t k = 0; k < model->dim(); ++k) {
    (*model->mutable_relations())(0, k) = 0.0f;
  }
  float s = model->Score(1, 0, 2);
  float expected =
      EuclideanDistance(model->EntityVec(1), model->EntityVec(2));
  EXPECT_NEAR(s, expected, 1e-4f);
}

// ---------------------------------------------------------------------------
// CompGCN specifics
// ---------------------------------------------------------------------------

TEST(CompGcnTest, EncodedReprDiffersFromBase) {
  AlignmentTask task = SmallSyntheticTask();
  auto model = MakeKgeModel(KgeModelKind::kCompGcn, &task.kg1, TestConfig());
  Rng rng(12);
  model->Init(&rng);
  // With a non-zero W_nbr and neighbors, the encoding mixes neighborhood
  // information, so repr != base for connected entities.
  Vector base = model->EntityVec(0);
  Vector repr = model->EntityRepr(0);
  EXPECT_GT(EuclideanDistance(base, repr), 1e-6f);
}

TEST(CompGcnTest, AggregationRefreshTracksEmbeddingChanges) {
  AlignmentTask task = SmallSyntheticTask();
  auto model = MakeKgeModel(KgeModelKind::kCompGcn, &task.kg1, TestConfig());
  Rng rng(13);
  model->Init(&rng);
  Vector before = model->EntityRepr(0);
  // Move every entity and refresh: the aggregation must change the repr.
  Matrix* ents = model->mutable_entities();
  for (size_t e = 0; e < ents->rows(); ++e) {
    ents->RowAxpy(e, 1.0f, Vector(model->dim(), 0.5f));
  }
  model->OnEpochStart();
  Vector after = model->EntityRepr(0);
  EXPECT_GT(EuclideanDistance(before, after), 1e-4f);
}

// ---------------------------------------------------------------------------
// Entity-class model (Eq. 2 / Eq. 3)
// ---------------------------------------------------------------------------

class EntityClassModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = SmallSyntheticTask();
    model_ = MakeKgeModel(KgeModelKind::kTransE, &task_.kg1, TestConfig());
    ec_ = std::make_unique<EntityClassModel>(model_.get(), TestConfig());
    Rng rng(14);
    model_->Init(&rng);
    ec_->Init(&rng);
  }
  AlignmentTask task_;
  std::unique_ptr<KgeModel> model_;
  std::unique_ptr<EntityClassModel> ec_;
};

TEST_F(EntityClassModelTest, ScoreNonNegative) {
  for (EntityId e = 0; e < 20; ++e) {
    for (ClassId c = 0; c < task_.kg1.num_classes(); ++c) {
      EXPECT_GE(ec_->Score(e, c), 0.0f);
    }
  }
}

TEST_F(EntityClassModelTest, ClassReprHasClassDim) {
  EXPECT_EQ(ec_->ClassRepr(0).dim(), TestConfig().class_dim);
}

TEST_F(EntityClassModelTest, TrainPairIsDescentDirection) {
  Rng rng(15);
  NegativeSampler sampler(&task_.kg1);
  int checked = 0;
  for (int i = 0; i < 100 && checked < 15; ++i) {
    const TypeTriplet& tt =
        task_.kg1.type_triplets()[rng.NextUint64(
            task_.kg1.num_type_triplets())];
    EntityId neg = sampler.CorruptEntityOfClass(tt.cls, &rng);
    const float margin = 1.0f;
    float before = margin + ec_->Score(tt.entity, tt.cls) -
                   ec_->Score(neg, tt.cls);
    if (before <= 0.0f) continue;
    ec_->TrainPair(tt.entity, neg, tt.cls, 1e-3f);
    float after = margin + ec_->Score(tt.entity, tt.cls) -
                  ec_->Score(neg, tt.cls);
    EXPECT_LE(after, before + 1e-4f);
    ++checked;
  }
  EXPECT_GT(checked, 5);
}

TEST_F(EntityClassModelTest, TrainingSeparatesMembersFromNonMembers) {
  KgeTrainer trainer(model_.get(), ec_.get());
  Rng rng(16);
  trainer.Train(&rng);
  NegativeSampler sampler(&task_.kg1);
  double member_sum = 0.0, other_sum = 0.0;
  int n = 0;
  for (const TypeTriplet& tt : task_.kg1.type_triplets()) {
    EntityId neg = sampler.CorruptEntityOfClass(tt.cls, &rng);
    member_sum += ec_->Score(tt.entity, tt.cls);
    other_sum += ec_->Score(neg, tt.cls);
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_LT(member_sum / n, other_sum / n);
}

// ---------------------------------------------------------------------------
// Negative sampler
// ---------------------------------------------------------------------------

TEST(NegativeSamplerTest, CorruptTailAvoidsTrueTriplets) {
  AlignmentTask task = SmallSyntheticTask();
  NegativeSampler sampler(&task.kg1);
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    const Triplet& t =
        task.kg1.triplets()[rng.NextUint64(task.kg1.num_triplets())];
    EntityId neg = sampler.CorruptTail(t, &rng);
    EXPECT_NE(neg, t.tail);
    EXPECT_LT(neg, task.kg1.num_entities());
  }
}

TEST(NegativeSamplerTest, CorruptEntityOfClassAvoidsMembersMostly) {
  AlignmentTask task = SmallSyntheticTask();
  NegativeSampler sampler(&task.kg1);
  Rng rng(18);
  int member_hits = 0;
  for (int i = 0; i < 200; ++i) {
    ClassId c = static_cast<ClassId>(rng.NextUint64(task.kg1.num_classes()));
    EntityId neg = sampler.CorruptEntityOfClass(c, &rng);
    if (task.kg1.HasType(neg, c)) ++member_hits;
  }
  // Rejection sampling can only fail on near-universal classes.
  EXPECT_LT(member_hits, 10);
}

// ---------------------------------------------------------------------------
// Trainer
// ---------------------------------------------------------------------------

TEST(KgeTrainerTest, LossDecreasesOverEpochs) {
  AlignmentTask task = SmallSyntheticTask();
  auto model = MakeKgeModel(KgeModelKind::kTransE, &task.kg1, TestConfig());
  Rng rng(19);
  model->Init(&rng);
  KgeTrainer trainer(model.get(), nullptr);
  KgeTrainStats stats;
  trainer.TrainEpoch(&rng, &stats);
  double first = stats.final_er_loss;
  for (int e = 0; e < 15; ++e) trainer.TrainEpoch(&rng, &stats);
  EXPECT_LT(stats.final_er_loss, first);
}

TEST(KgeTrainerTest, TrainReportsEpochCount) {
  AlignmentTask task = SmallSyntheticTask();
  KgeConfig cfg = TestConfig();
  cfg.epochs = 4;
  auto model = MakeKgeModel(KgeModelKind::kTransE, &task.kg1, cfg);
  Rng rng(20);
  model->Init(&rng);
  KgeTrainer trainer(model.get(), nullptr);
  KgeTrainStats stats = trainer.Train(&rng);
  EXPECT_EQ(stats.epochs, 4);
}

TEST(KgeFactoryTest, KnownNamesConstruct) {
  AlignmentTask task = SmallSyntheticTask();
  for (const char* name : {"transe", "rotate", "compgcn"}) {
    auto model = MakeKgeModel(name, &task.kg1, TestConfig());
    ASSERT_TRUE(model.ok()) << model.status();
    EXPECT_EQ((*model)->name(), name);
  }
}

TEST(KgeFactoryTest, UnknownNameReturnsInvalidArgument) {
  AlignmentTask task = SmallSyntheticTask();
  auto model = MakeKgeModel("bogus", &task.kg1, TestConfig());
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kInvalidArgument);
}

TEST(KgeFactoryTest, ParseKgeModelKindRoundTrips) {
  for (KgeModelKind kind : {KgeModelKind::kTransE, KgeModelKind::kRotatE,
                            KgeModelKind::kCompGcn}) {
    auto parsed = ParseKgeModelKind(KgeModelKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(ParseKgeModelKind("TransE").ok());  // case-sensitive
  EXPECT_FALSE(ParseKgeModelKind("").ok());
}

}  // namespace
}  // namespace daakg
