#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <set>
#include <thread>

#include "common/file_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace daakg {
namespace {

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      NotFoundError("").code(),     AlreadyExistsError("").code(),
      OutOfRangeError("").code(),   FailedPreconditionError("").code(),
      InternalError("").code(),     IoError("").code(),
      UnimplementedError("").code()};
  EXPECT_EQ(codes.size(), 7u);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  DAAKG_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::Ok();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseHalf(3, &out).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// String utilities
// ---------------------------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a\tb\tc", '\t'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a\t\tc", '\t'), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("x,", ','), (std::vector<std::string>{"x", ""}));
}

TEST(StringUtilTest, JoinIsInverseOfSplit) {
  std::vector<std::string> parts = {"alpha", "beta", "gamma"};
  EXPECT_EQ(StrSplit(StrJoin(parts, "|"), '|'), parts);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(StrTrim("  x  "), "x");
  EXPECT_EQ(StrTrim("\t\n"), "");
  EXPECT_EQ(StrTrim("no-trim"), "no-trim");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StrStartsWith("foobar", "foo"));
  EXPECT_FALSE(StrStartsWith("foo", "foobar"));
  EXPECT_TRUE(StrStartsWith("x", ""));
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringUtilTest, EditDistanceBasics) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
}

TEST(StringUtilTest, EditDistanceSymmetry) {
  EXPECT_EQ(EditDistance("flaw", "lawn"), EditDistance("lawn", "flaw"));
}

TEST(StringUtilTest, EditSimilarityRange) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "xyz"), 0.0);
}

TEST(StringUtilTest, NgramJaccardIdenticalIsOne) {
  EXPECT_DOUBLE_EQ(NgramJaccard("hello", "hello"), 1.0);
}

TEST(StringUtilTest, NgramJaccardDisjointIsZero) {
  EXPECT_DOUBLE_EQ(NgramJaccard("aaaa", "bbbb"), 0.0);
}

TEST(StringUtilTest, NgramJaccardShortStrings) {
  EXPECT_DOUBLE_EQ(NgramJaccard("a", "a"), 1.0);
  EXPECT_DOUBLE_EQ(NgramJaccard("a", "b"), 0.0);
}

// Property: Jaccard is symmetric and within [0, 1].
class NgramPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NgramPropertyTest, SymmetricAndBounded) {
  Rng rng(GetParam());
  auto random_word = [&rng]() {
    std::string s;
    size_t len = 1 + rng.NextUint64(12);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.NextUint64(6)));
    }
    return s;
  };
  for (int i = 0; i < 20; ++i) {
    std::string a = random_word();
    std::string b = random_word();
    double ab = NgramJaccard(a, b);
    double ba = NgramJaccard(b, a);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NgramPropertyTest, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// File utilities
// ---------------------------------------------------------------------------

TEST(FileUtilTest, WriteReadRoundTrip) {
  std::string path = ::testing::TempDir() + "/daakg_file_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "line1\nline2\n").ok());
  EXPECT_TRUE(FileExists(path));
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "line1\nline2\n");
  auto lines = ReadLines(path);
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(*lines, (std::vector<std::string>{"line1", "line2"}));
  std::remove(path.c_str());
}

TEST(FileUtilTest, ReadLinesStripsCarriageReturns) {
  std::string path = ::testing::TempDir() + "/daakg_crlf_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "a\r\nb\r\n").ok());
  auto lines = ReadLines(path);
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(*lines, (std::vector<std::string>{"a", "b"}));
  std::remove(path.c_str());
}

TEST(FileUtilTest, MissingFileIsError) {
  EXPECT_FALSE(ReadFileToString("/nonexistent/daakg/file").ok());
  EXPECT_FALSE(FileExists("/nonexistent/daakg/file"));
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedUniformStaysInRange) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(7), 7u);
  }
}

TEST(RngTest, BoundedUniformCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextUint64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(12);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RngTest, ZipfFavorsSmallIndexes) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.NextZipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(14);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(15);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleAllReturnsEverything) {
  Rng rng(16);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(17);
  Rng b = a.Fork();
  // The fork and the parent should not emit identical sequences.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 2);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndexes) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForShardsPartitionIsContiguous) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> ranges;
  pool.ParallelForShards(100, [&](size_t, size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(begin, end);
  });
  std::sort(ranges.begin(), ranges.end());
  size_t expect_begin = 0;
  for (const auto& [b, e] : ranges) {
    EXPECT_EQ(b, expect_begin);
    EXPECT_LE(b, e);
    expect_begin = e;
  }
  EXPECT_EQ(expect_begin, 100u);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

// Regression: before the per-call completion group, a ParallelFor issued
// from inside a pool task waited on the global in-flight counter, which
// never reached zero while the outer tasks themselves were still running —
// a deadlock whenever nesting exceeded the worker count.
TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  const size_t outer = 2 * pool.num_threads() + 1;
  const size_t inner = 50;
  std::atomic<size_t> total{0};
  pool.ParallelFor(outer, [&](size_t) {
    pool.ParallelFor(inner, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), outer * inner);
}

TEST(ThreadPoolTest, NestedParallelForShardsCoverAllIndexes) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(40 * 17);
  pool.ParallelForShards(40, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.ParallelForShards(17, [&](size_t, size_t b2, size_t e2) {
        for (size_t j = b2; j < e2; ++j) hits[i * 17 + j].fetch_add(1);
      });
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// A ParallelFor must return as soon as its own shards finish, even while
// unrelated submitted work is still queued (no over-wait on the global
// counter), and Wait() must still drain everything.
TEST(ThreadPoolTest, ParallelForReturnsWhileUnrelatedWorkPending) {
  ThreadPool pool(2);
  std::atomic<int> slow_done{0};
  std::atomic<int> fast_done{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      slow_done.fetch_add(1);
    });
  }
  pool.ParallelFor(8, [&](size_t) { fast_done.fetch_add(1); });
  // The ParallelFor's own work is complete once it returns, regardless of
  // the slow background tasks.
  EXPECT_EQ(fast_done.load(), 8);
  pool.Wait();
  EXPECT_EQ(slow_done.load(), 4);
}

TEST(ThreadPoolTest, SubmitFromTaskThenWaitDrains) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      counter.fetch_add(1);
      pool.Submit([&] { counter.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsNestedWorkInline) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.ParallelFor(5, [&](size_t) {
    pool.ParallelFor(5, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 25);
}

}  // namespace
}  // namespace daakg
