#ifndef DAAKG_TESTS_TEST_UTIL_H_
#define DAAKG_TESTS_TEST_UTIL_H_

#include "common/logging.h"
#include "kg/alignment_task.h"
#include "kg/synthetic.h"

namespace daakg {
namespace testing_util {

// A handcrafted 6-vs-6 entity task with perfectly mirrored structure:
//   people p0..p2 live in cities c0..c2 via relation livesIn; every person
//   has class Person, every city class City. KG2 mirrors KG1 exactly.
// Gold: identity on everything. Small enough to reason about by hand.
inline AlignmentTask MirrorTask() {
  AlignmentTask task;
  task.name = "mirror";
  auto build = [](KnowledgeGraph* kg, const char* suffix) {
    ClassId person = kg->AddClass(std::string("Person") + suffix);
    ClassId city = kg->AddClass(std::string("City") + suffix);
    RelationId lives = kg->AddRelation(std::string("livesIn") + suffix);
    RelationId knows = kg->AddRelation(std::string("knows") + suffix);
    std::vector<EntityId> p, c;
    for (int i = 0; i < 3; ++i) {
      p.push_back(kg->AddEntity(std::string("p") + std::to_string(i) + suffix));
      kg->AddTypeTriplet(p.back(), person);
    }
    for (int i = 0; i < 3; ++i) {
      c.push_back(kg->AddEntity(std::string("c") + std::to_string(i) + suffix));
      kg->AddTypeTriplet(c.back(), city);
    }
    for (int i = 0; i < 3; ++i) kg->AddTriplet(p[i], lives, c[i]);
    kg->AddTriplet(p[0], knows, p[1]);
    kg->AddTriplet(p[1], knows, p[2]);
    DAAKG_CHECK(kg->Finalize().ok());
  };
  build(&task.kg1, "_a");
  build(&task.kg2, "_b");
  for (uint32_t e = 0; e < 6; ++e) task.gold_entities.emplace_back(e, e);
  for (uint32_t r = 0; r < 2; ++r) task.gold_relations.emplace_back(r, r);
  for (uint32_t c = 0; c < 2; ++c) task.gold_classes.emplace_back(c, c);
  task.BuildGoldIndex();
  return task;
}

// A small but non-trivial synthetic task for integration tests.
inline AlignmentTask SmallSyntheticTask(uint64_t seed = 7) {
  SyntheticKgSpec spec;
  spec.name = "small";
  spec.num_entities1 = 120;
  spec.num_entities2 = 90;
  spec.num_relations1 = 10;
  spec.num_relations2 = 8;
  spec.num_relation_matches = 6;
  spec.num_classes1 = 6;
  spec.num_classes2 = 5;
  spec.num_class_matches = 4;
  spec.seed = seed;
  auto task = GenerateSyntheticTask(spec);
  DAAKG_CHECK(task.ok());
  return std::move(task).value();
}

}  // namespace testing_util
}  // namespace daakg

#endif  // DAAKG_TESTS_TEST_UTIL_H_
