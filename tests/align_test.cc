#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "align/joint_model.h"
#include "align/losses.h"
#include "align/metrics.h"
#include "embedding/trainer.h"
#include "tests/test_util.h"

namespace daakg {
namespace {

using testing_util::MirrorTask;
using testing_util::SmallSyntheticTask;

// ---------------------------------------------------------------------------
// Losses
// ---------------------------------------------------------------------------

TEST(LossTest, SoftmaxContrastiveProbability) {
  ContrastiveGrad g = SoftmaxContrastive(1.0, {1.0, 1.0}, 1.0);
  EXPECT_NEAR(g.p_pos, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(g.loss, -std::log(1.0 / 3.0), 1e-9);
}

TEST(LossTest, HigherPositiveScoreLowersLoss) {
  double lo = SoftmaxContrastive(0.1, {0.5, 0.5}, 10.0).loss;
  double hi = SoftmaxContrastive(0.9, {0.5, 0.5}, 10.0).loss;
  EXPECT_LT(hi, lo);
}

TEST(LossTest, GradientSignsPullPositiveUpNegativesDown) {
  ContrastiveGrad g = SoftmaxContrastive(0.5, {0.4, 0.6}, 10.0);
  EXPECT_LT(g.d_pos, 0.0);  // descending loss raises s_pos
  for (double dn : g.d_negs) EXPECT_GT(dn, 0.0);
}

TEST(LossTest, SoftmaxContrastiveGradMatchesFiniteDifference) {
  const std::vector<double> negs = {0.2, -0.1, 0.45};
  const double sharp = 7.0;
  const double s_pos = 0.3;
  ContrastiveGrad g = SoftmaxContrastive(s_pos, negs, sharp);

  const double eps = 1e-6;
  double num_dpos = (SoftmaxContrastive(s_pos + eps, negs, sharp).loss -
                     SoftmaxContrastive(s_pos - eps, negs, sharp).loss) /
                    (2 * eps);
  EXPECT_NEAR(g.d_pos, num_dpos, 1e-4);
  for (size_t j = 0; j < negs.size(); ++j) {
    auto negs_hi = negs;
    auto negs_lo = negs;
    negs_hi[j] += eps;
    negs_lo[j] -= eps;
    double num = (SoftmaxContrastive(s_pos, negs_hi, sharp).loss -
                  SoftmaxContrastive(s_pos, negs_lo, sharp).loss) /
                 (2 * eps);
    EXPECT_NEAR(g.d_negs[j], num, 1e-4);
  }
}

TEST(LossTest, FocalGradMatchesFiniteDifference) {
  const std::vector<double> negs = {0.2, 0.6};
  const double sharp = 5.0;
  const double gamma = 2.0;
  const double s_pos = 0.4;
  ContrastiveGrad g = FocalContrastive(s_pos, negs, sharp, gamma);
  const double eps = 1e-6;
  double num_dpos =
      (FocalContrastive(s_pos + eps, negs, sharp, gamma).loss -
       FocalContrastive(s_pos - eps, negs, sharp, gamma).loss) /
      (2 * eps);
  EXPECT_NEAR(g.d_pos, num_dpos, 1e-4);
}

TEST(LossTest, FocalDownWeightsWellClassifiedPairs) {
  // A confidently correct pair (p ~ 1) contributes almost nothing under
  // focal loss, but its plain softmax loss is positive.
  ContrastiveGrad plain = SoftmaxContrastive(0.95, {0.0}, 20.0);
  ContrastiveGrad focal = FocalContrastive(0.95, {0.0}, 20.0, 2.0);
  EXPECT_LT(focal.loss, plain.loss);
  EXPECT_LT(focal.loss, 1e-4);
}

TEST(LossTest, FocalMatchesPlainAtGammaZero) {
  ContrastiveGrad plain = SoftmaxContrastive(0.3, {0.5}, 10.0);
  ContrastiveGrad focal = FocalContrastive(0.3, {0.5}, 10.0, 0.0);
  EXPECT_NEAR(plain.loss, focal.loss, 1e-9);
  EXPECT_NEAR(plain.d_pos, focal.d_pos, 1e-9);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

Matrix DiagonalSim(size_t n, float diag, float off) {
  Matrix m(n, n, off);
  for (size_t i = 0; i < n; ++i) m(i, i) = diag;
  return m;
}

TEST(MetricsTest, PerfectDiagonalRanking) {
  Matrix sim = DiagonalSim(5, 0.9f, 0.1f);
  std::vector<std::pair<uint32_t, uint32_t>> test = {{0, 0}, {3, 3}};
  RankingMetrics m = EvaluateRanking(sim, test);
  EXPECT_DOUBLE_EQ(m.hits_at_1, 1.0);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);
  EXPECT_EQ(m.num_queries, 2u);
}

TEST(MetricsTest, RankCountsStrictlyBetterOnly) {
  Matrix sim(1, 3);
  sim(0, 0) = 0.5f;
  sim(0, 1) = 0.9f;
  sim(0, 2) = 0.5f;  // tie with target does not worsen rank
  RankingMetrics m = EvaluateRanking(sim, {{0, 0}});
  EXPECT_DOUBLE_EQ(m.mrr, 0.5);  // rank 2
}

TEST(MetricsTest, EmptyTestSetYieldsZeroQueries) {
  Matrix sim = DiagonalSim(3, 1.0f, 0.0f);
  RankingMetrics m = EvaluateRanking(sim, {});
  EXPECT_EQ(m.num_queries, 0u);
  EXPECT_DOUBLE_EQ(m.hits_at_1, 0.0);
}

TEST(MetricsTest, GreedyMatchingIsOneToOne) {
  Matrix sim(3, 3, 0.9f);  // everything similar: greedy must still be 1-1
  auto matches = GreedyOneToOneMatches(sim, 0.5f);
  EXPECT_EQ(matches.size(), 3u);
  std::set<uint32_t> rows, cols;
  for (auto& [r, c] : matches) {
    EXPECT_TRUE(rows.insert(r).second);
    EXPECT_TRUE(cols.insert(c).second);
  }
}

TEST(MetricsTest, GreedyMatchingRespectsThreshold) {
  Matrix sim(2, 2, 0.1f);
  sim(0, 0) = 0.8f;
  auto matches = GreedyOneToOneMatches(sim, 0.5f);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], (std::pair<uint32_t, uint32_t>{0, 0}));
}

TEST(MetricsTest, GreedyMatchingPrefersHigherSimilarity) {
  Matrix sim(2, 1);
  sim(0, 0) = 0.6f;
  sim(1, 0) = 0.9f;  // row 1 wins the only column
  auto matches = GreedyOneToOneMatches(sim, 0.5f);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].first, 1u);
}

TEST(MetricsTest, PrfComputation) {
  Matrix sim = DiagonalSim(4, 0.9f, 0.0f);
  sim(0, 1) = 0.95f;  // creates one wrong greedy match (0,1)
  std::vector<std::pair<uint32_t, uint32_t>> gold = {
      {0, 0}, {1, 1}, {2, 2}, {3, 3}};
  PrfMetrics m = EvaluateGreedyMatching(sim, gold, 0.5f);
  // Greedy: (0,1) first, then (2,2), (3,3); (1,1) blocked by used col? No:
  // col 1 used by (0,1), so row 1 can still take col 0? sim(1,0)=0 < thr.
  EXPECT_EQ(m.num_predicted, 3u);
  EXPECT_EQ(m.num_correct, 2u);
  EXPECT_NEAR(m.precision, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.recall, 0.5, 1e-9);
  EXPECT_NEAR(m.f1, 2 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5), 1e-9);
}

TEST(MetricsTest, PerfectPrf) {
  Matrix sim = DiagonalSim(3, 0.9f, 0.0f);
  std::vector<std::pair<uint32_t, uint32_t>> gold = {{0, 0}, {1, 1}, {2, 2}};
  PrfMetrics m = EvaluateGreedyMatching(sim, gold, 0.5f);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

// Seed-algorithm copy: ranks via a per-query serial scan (what
// EvaluateRanking did before CountGreater).
RankingMetrics RankingReference(
    const Matrix& sim,
    const std::vector<std::pair<uint32_t, uint32_t>>& test_pairs) {
  RankingMetrics m;
  for (const auto& [first, second] : test_pairs) {
    const float* row = sim.RowData(first);
    size_t rank = 1;
    for (size_t c = 0; c < sim.cols(); ++c) {
      if (c != second && row[c] > row[second]) ++rank;
    }
    if (rank == 1) m.hits_at_1 += 1.0;
    if (rank <= 10) m.hits_at_10 += 1.0;
    m.mrr += 1.0 / static_cast<double>(rank);
    ++m.num_queries;
  }
  if (m.num_queries > 0) {
    const double n = static_cast<double>(m.num_queries);
    m.hits_at_1 /= n;
    m.hits_at_10 /= n;
    m.mrr /= n;
  }
  return m;
}

TEST(MetricsTest, EvaluateRankingBitIdenticalToSerialReference) {
  Rng rng(71);
  Matrix sim(37, 53);
  sim.InitGaussian(&rng, 1.0f);
  // Inject ties so the tie-handling paths are exercised too.
  sim(5, 10) = sim(5, 20);
  sim(9, 0) = sim(9, 52);
  std::vector<std::pair<uint32_t, uint32_t>> test;
  for (uint32_t i = 0; i < 37; ++i) test.emplace_back(i, (i * 7) % 53);
  const RankingMetrics got = EvaluateRanking(sim, test);
  const RankingMetrics want = RankingReference(sim, test);
  EXPECT_EQ(got.num_queries, want.num_queries);
  EXPECT_EQ(got.hits_at_1, want.hits_at_1);
  EXPECT_EQ(got.hits_at_10, want.hits_at_10);
  EXPECT_EQ(got.mrr, want.mrr);
}

TEST(MetricsTest, GreedyMatchesBitIdenticalToSerialReference) {
  Rng rng(72);
  Matrix sim(61, 47);
  sim.InitGaussian(&rng, 1.0f);
  sim(3, 3) = sim(17, 5);  // tied scores: sort stability must not matter
  const float threshold = 0.4f;
  // Seed-algorithm copy: serial row-major collection, identical sort and
  // greedy sweep.
  std::vector<std::tuple<float, uint32_t, uint32_t>> cells;
  for (size_t r = 0; r < sim.rows(); ++r) {
    for (size_t c = 0; c < sim.cols(); ++c) {
      if (sim(r, c) >= threshold) {
        cells.emplace_back(sim(r, c), static_cast<uint32_t>(r),
                           static_cast<uint32_t>(c));
      }
    }
  }
  std::sort(cells.begin(), cells.end(), [](const auto& a, const auto& b) {
    return std::get<0>(a) > std::get<0>(b);
  });
  std::vector<bool> used_row(sim.rows(), false), used_col(sim.cols(), false);
  std::vector<std::pair<uint32_t, uint32_t>> want;
  for (const auto& [score, r, c] : cells) {
    (void)score;
    if (used_row[r] || used_col[c]) continue;
    used_row[r] = true;
    used_col[c] = true;
    want.emplace_back(r, c);
  }
  EXPECT_EQ(GreedyOneToOneMatches(sim, threshold), want);
}

// ---------------------------------------------------------------------------
// Joint alignment model
// ---------------------------------------------------------------------------

class JointModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = SmallSyntheticTask();
    KgeConfig kge;
    kge.dim = 16;
    kge.class_dim = 8;
    kge.epochs = 8;
    model1_ = MakeKgeModel(KgeModelKind::kTransE, &task_.kg1, kge);
    model2_ = MakeKgeModel(KgeModelKind::kTransE, &task_.kg2, kge);
    ec1_ = std::make_unique<EntityClassModel>(model1_.get(), kge);
    ec2_ = std::make_unique<EntityClassModel>(model2_.get(), kge);
    JointAlignConfig cfg;
    cfg.align_epochs = 10;
    joint_ = std::make_unique<JointAlignmentModel>(
        model1_.get(), model2_.get(), ec1_.get(), ec2_.get(), cfg);
    Rng rng(44);
    model1_->Init(&rng);
    model2_->Init(&rng);
    ec1_->Init(&rng);
    ec2_->Init(&rng);
    joint_->Init(&rng);
    KgeTrainer t1(model1_.get(), ec1_.get());
    KgeTrainer t2(model2_.get(), ec2_.get());
    Rng r1(45), r2(46);
    t1.Train(&r1);
    t2.Train(&r2);
  }

  AlignmentTask task_;
  std::unique_ptr<KgeModel> model1_, model2_;
  std::unique_ptr<EntityClassModel> ec1_, ec2_;
  std::unique_ptr<JointAlignmentModel> joint_;
};

TEST_F(JointModelTest, SimilaritiesBounded) {
  joint_->RefreshCaches();
  for (int i = 0; i < 20; ++i) {
    EXPECT_GE(joint_->EntitySim(i, i), -1.0f - 1e-5f);
    EXPECT_LE(joint_->EntitySim(i, i), 1.0f + 1e-5f);
  }
  EXPECT_LE(joint_->RelationSim(0, 0), 1.0f + 1e-5f);
  EXPECT_LE(joint_->ClassSim(0, 0), 1.0f + 1e-5f);
}

TEST_F(JointModelTest, CachedEntitySimMatchesFreshComputation) {
  joint_->RefreshCaches();
  for (uint32_t e1 = 0; e1 < 10; ++e1) {
    for (uint32_t e2 = 0; e2 < 10; ++e2) {
      EXPECT_NEAR(joint_->entity_sim()(e1, e2), joint_->EntitySim(e1, e2),
                  1e-4f);
    }
  }
}

TEST_F(JointModelTest, EntityWeightsAreRowAndColumnMaxima) {
  joint_->RefreshCaches();
  const Matrix& sim = joint_->entity_sim();
  for (uint32_t e1 = 0; e1 < 10; ++e1) {
    float row_max = -2.0f;
    for (size_t c = 0; c < sim.cols(); ++c) {
      row_max = std::max(row_max, sim(e1, c));
    }
    EXPECT_NEAR(joint_->EntityWeight1(e1), std::max(row_max, 0.0f), 1e-5f);
  }
}

TEST_F(JointModelTest, MeanEmbeddingsHaveEntityDim) {
  joint_->RefreshCaches();
  EXPECT_EQ(joint_->RelationMean1(0).dim(), model1_->dim());
  EXPECT_EQ(joint_->ClassMean1(0).dim(), model1_->dim());
  EXPECT_GT(joint_->RelationMeanWeightSum1(0), 0.0);
}

TEST_F(JointModelTest, MatchProbabilityInUnitIntervalAndMinOfDirections) {
  joint_->RefreshCaches();
  for (uint32_t e = 0; e < 10; ++e) {
    ElementPair pair{ElementKind::kEntity, e, e};
    double p = joint_->MatchProbability(pair);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  ElementPair rel{ElementKind::kRelation, 0, 0};
  EXPECT_LE(joint_->MatchProbability(rel), 1.0);
}

TEST_F(JointModelTest, TrainingRaisesSeedSimilarity) {
  Rng rng(47);
  SeedAlignment seed = task_.SampleSeed(0.3, &rng);
  double before = 0.0;
  for (auto& [e1, e2] : seed.entities) before += joint_->EntitySim(e1, e2);
  Rng trng(48);
  for (int e = 0; e < 20; ++e) joint_->TrainEpoch(seed, &trng, false);
  double after = 0.0;
  for (auto& [e1, e2] : seed.entities) after += joint_->EntitySim(e1, e2);
  EXPECT_GT(after, before);
}

TEST_F(JointModelTest, TrainEpochInvalidatesCaches) {
  joint_->RefreshCaches();
  EXPECT_TRUE(joint_->caches_ready());
  Rng rng(49);
  SeedAlignment seed = task_.SampleSeed(0.2, &rng);
  joint_->TrainEpoch(seed, &rng, false);
  EXPECT_FALSE(joint_->caches_ready());
}

TEST_F(JointModelTest, SemiMiningRespectsTauAndOneToOne) {
  Rng rng(50);
  SeedAlignment seed = task_.SampleSeed(0.3, &rng);
  for (int e = 0; e < 20; ++e) joint_->TrainEpoch(seed, &rng, false);
  joint_->RefreshCaches();
  auto mined = joint_->MineSemiSupervision();
  std::set<std::pair<int, uint32_t>> firsts, seconds;
  for (const auto& [pair, score] : mined) {
    EXPECT_GT(score, joint_->config().tau);
    EXPECT_TRUE(firsts.insert({static_cast<int>(pair.kind), pair.first}).second);
    EXPECT_TRUE(
        seconds.insert({static_cast<int>(pair.kind), pair.second}).second);
  }
}

TEST_F(JointModelTest, FocalEpochRuns) {
  Rng rng(51);
  SeedAlignment seed = task_.SampleSeed(0.2, &rng);
  double loss = joint_->TrainEpoch(seed, &rng, /*focal=*/true);
  EXPECT_GE(loss, 0.0);
  EXPECT_TRUE(std::isfinite(loss));
}

TEST_F(JointModelTest, SemiEpochPullsMinedPairsUp) {
  Rng rng(52);
  SeedAlignment seed = task_.SampleSeed(0.3, &rng);
  for (int e = 0; e < 10; ++e) joint_->TrainEpoch(seed, &rng, false);
  joint_->RefreshCaches();
  std::vector<std::pair<ElementPair, double>> semi = {
      {ElementPair{ElementKind::kEntity, 1, 1}, 1.0}};
  float before = joint_->EntitySim(1, 1);
  for (int e = 0; e < 10; ++e) joint_->TrainSemiEpoch(semi, &rng);
  EXPECT_GT(joint_->EntitySim(1, 1), before);
}

TEST(JointModelNoEcTest, ClassSimFallsBackToMeans) {
  AlignmentTask task = SmallSyntheticTask();
  KgeConfig kge;
  kge.dim = 16;
  kge.epochs = 4;
  auto m1 = MakeKgeModel(KgeModelKind::kTransE, &task.kg1, kge);
  auto m2 = MakeKgeModel(KgeModelKind::kTransE, &task.kg2, kge);
  Rng rng(53);
  m1->Init(&rng);
  m2->Init(&rng);
  JointAlignConfig cfg;
  JointAlignmentModel joint(m1.get(), m2.get(), nullptr, nullptr, cfg);
  joint.Init(&rng);
  // Without caches there is no class representation at all.
  EXPECT_FLOAT_EQ(joint.ClassSim(0, 0), 0.0f);
  joint.RefreshCaches();
  float sim = joint.ClassSim(0, 0);
  EXPECT_GE(sim, -1.0f - 1e-5f);
  EXPECT_LE(sim, 1.0f + 1e-5f);
}

}  // namespace
}  // namespace daakg
