#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "align/joint_model.h"
#include "align/losses.h"
#include "align/metrics.h"
#include "embedding/trainer.h"
#include "tensor/simd/simd.h"
#include "tests/test_util.h"

namespace daakg {
namespace {

using testing_util::MirrorTask;
using testing_util::SmallSyntheticTask;

// ---------------------------------------------------------------------------
// Losses
// ---------------------------------------------------------------------------

TEST(LossTest, SoftmaxContrastiveProbability) {
  ContrastiveGrad g = SoftmaxContrastive(1.0, {1.0, 1.0}, 1.0);
  EXPECT_NEAR(g.p_pos, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(g.loss, -std::log(1.0 / 3.0), 1e-9);
}

TEST(LossTest, HigherPositiveScoreLowersLoss) {
  double lo = SoftmaxContrastive(0.1, {0.5, 0.5}, 10.0).loss;
  double hi = SoftmaxContrastive(0.9, {0.5, 0.5}, 10.0).loss;
  EXPECT_LT(hi, lo);
}

TEST(LossTest, GradientSignsPullPositiveUpNegativesDown) {
  ContrastiveGrad g = SoftmaxContrastive(0.5, {0.4, 0.6}, 10.0);
  EXPECT_LT(g.d_pos, 0.0);  // descending loss raises s_pos
  for (double dn : g.d_negs) EXPECT_GT(dn, 0.0);
}

TEST(LossTest, SoftmaxContrastiveGradMatchesFiniteDifference) {
  const std::vector<double> negs = {0.2, -0.1, 0.45};
  const double sharp = 7.0;
  const double s_pos = 0.3;
  ContrastiveGrad g = SoftmaxContrastive(s_pos, negs, sharp);

  const double eps = 1e-6;
  double num_dpos = (SoftmaxContrastive(s_pos + eps, negs, sharp).loss -
                     SoftmaxContrastive(s_pos - eps, negs, sharp).loss) /
                    (2 * eps);
  EXPECT_NEAR(g.d_pos, num_dpos, 1e-4);
  for (size_t j = 0; j < negs.size(); ++j) {
    auto negs_hi = negs;
    auto negs_lo = negs;
    negs_hi[j] += eps;
    negs_lo[j] -= eps;
    double num = (SoftmaxContrastive(s_pos, negs_hi, sharp).loss -
                  SoftmaxContrastive(s_pos, negs_lo, sharp).loss) /
                 (2 * eps);
    EXPECT_NEAR(g.d_negs[j], num, 1e-4);
  }
}

TEST(LossTest, FocalGradMatchesFiniteDifference) {
  const std::vector<double> negs = {0.2, 0.6};
  const double sharp = 5.0;
  const double gamma = 2.0;
  const double s_pos = 0.4;
  ContrastiveGrad g = FocalContrastive(s_pos, negs, sharp, gamma);
  const double eps = 1e-6;
  double num_dpos =
      (FocalContrastive(s_pos + eps, negs, sharp, gamma).loss -
       FocalContrastive(s_pos - eps, negs, sharp, gamma).loss) /
      (2 * eps);
  EXPECT_NEAR(g.d_pos, num_dpos, 1e-4);
}

TEST(LossTest, FocalDownWeightsWellClassifiedPairs) {
  // A confidently correct pair (p ~ 1) contributes almost nothing under
  // focal loss, but its plain softmax loss is positive.
  ContrastiveGrad plain = SoftmaxContrastive(0.95, {0.0}, 20.0);
  ContrastiveGrad focal = FocalContrastive(0.95, {0.0}, 20.0, 2.0);
  EXPECT_LT(focal.loss, plain.loss);
  EXPECT_LT(focal.loss, 1e-4);
}

TEST(LossTest, FocalMatchesPlainAtGammaZero) {
  ContrastiveGrad plain = SoftmaxContrastive(0.3, {0.5}, 10.0);
  ContrastiveGrad focal = FocalContrastive(0.3, {0.5}, 10.0, 0.0);
  EXPECT_NEAR(plain.loss, focal.loss, 1e-9);
  EXPECT_NEAR(plain.d_pos, focal.d_pos, 1e-9);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

Matrix DiagonalSim(size_t n, float diag, float off) {
  Matrix m(n, n, off);
  for (size_t i = 0; i < n; ++i) m(i, i) = diag;
  return m;
}

TEST(MetricsTest, PerfectDiagonalRanking) {
  Matrix sim = DiagonalSim(5, 0.9f, 0.1f);
  std::vector<std::pair<uint32_t, uint32_t>> test = {{0, 0}, {3, 3}};
  RankingMetrics m = EvaluateRanking(sim, test);
  EXPECT_DOUBLE_EQ(m.hits_at_1, 1.0);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);
  EXPECT_EQ(m.num_queries, 2u);
}

TEST(MetricsTest, RankCountsStrictlyBetterOnly) {
  Matrix sim(1, 3);
  sim(0, 0) = 0.5f;
  sim(0, 1) = 0.9f;
  sim(0, 2) = 0.5f;  // tie with target does not worsen rank
  RankingMetrics m = EvaluateRanking(sim, {{0, 0}});
  EXPECT_DOUBLE_EQ(m.mrr, 0.5);  // rank 2
}

TEST(MetricsTest, EmptyTestSetYieldsZeroQueries) {
  Matrix sim = DiagonalSim(3, 1.0f, 0.0f);
  RankingMetrics m = EvaluateRanking(sim, {});
  EXPECT_EQ(m.num_queries, 0u);
  EXPECT_DOUBLE_EQ(m.hits_at_1, 0.0);
}

TEST(MetricsTest, GreedyMatchingIsOneToOne) {
  Matrix sim(3, 3, 0.9f);  // everything similar: greedy must still be 1-1
  auto matches = GreedyOneToOneMatches(sim, 0.5f);
  EXPECT_EQ(matches.size(), 3u);
  std::set<uint32_t> rows, cols;
  for (auto& [r, c] : matches) {
    EXPECT_TRUE(rows.insert(r).second);
    EXPECT_TRUE(cols.insert(c).second);
  }
}

TEST(MetricsTest, GreedyMatchingRespectsThreshold) {
  Matrix sim(2, 2, 0.1f);
  sim(0, 0) = 0.8f;
  auto matches = GreedyOneToOneMatches(sim, 0.5f);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], (std::pair<uint32_t, uint32_t>{0, 0}));
}

TEST(MetricsTest, GreedyMatchingPrefersHigherSimilarity) {
  Matrix sim(2, 1);
  sim(0, 0) = 0.6f;
  sim(1, 0) = 0.9f;  // row 1 wins the only column
  auto matches = GreedyOneToOneMatches(sim, 0.5f);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].first, 1u);
}

TEST(MetricsTest, PrfComputation) {
  Matrix sim = DiagonalSim(4, 0.9f, 0.0f);
  sim(0, 1) = 0.95f;  // creates one wrong greedy match (0,1)
  std::vector<std::pair<uint32_t, uint32_t>> gold = {
      {0, 0}, {1, 1}, {2, 2}, {3, 3}};
  PrfMetrics m = EvaluateGreedyMatching(sim, gold, 0.5f);
  // Greedy: (0,1) first, then (2,2), (3,3); (1,1) blocked by used col? No:
  // col 1 used by (0,1), so row 1 can still take col 0? sim(1,0)=0 < thr.
  EXPECT_EQ(m.num_predicted, 3u);
  EXPECT_EQ(m.num_correct, 2u);
  EXPECT_NEAR(m.precision, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.recall, 0.5, 1e-9);
  EXPECT_NEAR(m.f1, 2 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5), 1e-9);
}

TEST(MetricsTest, PerfectPrf) {
  Matrix sim = DiagonalSim(3, 0.9f, 0.0f);
  std::vector<std::pair<uint32_t, uint32_t>> gold = {{0, 0}, {1, 1}, {2, 2}};
  PrfMetrics m = EvaluateGreedyMatching(sim, gold, 0.5f);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

// Seed-algorithm copy: ranks via a per-query serial scan (what
// EvaluateRanking did before CountGreater).
RankingMetrics RankingReference(
    const Matrix& sim,
    const std::vector<std::pair<uint32_t, uint32_t>>& test_pairs) {
  RankingMetrics m;
  for (const auto& [first, second] : test_pairs) {
    const float* row = sim.RowData(first);
    size_t rank = 1;
    for (size_t c = 0; c < sim.cols(); ++c) {
      if (c != second && row[c] > row[second]) ++rank;
    }
    if (rank == 1) m.hits_at_1 += 1.0;
    if (rank <= 10) m.hits_at_10 += 1.0;
    m.mrr += 1.0 / static_cast<double>(rank);
    ++m.num_queries;
  }
  if (m.num_queries > 0) {
    const double n = static_cast<double>(m.num_queries);
    m.hits_at_1 /= n;
    m.hits_at_10 /= n;
    m.mrr /= n;
  }
  return m;
}

TEST(MetricsTest, EvaluateRankingBitIdenticalToSerialReference) {
  Rng rng(71);
  Matrix sim(37, 53);
  sim.InitGaussian(&rng, 1.0f);
  // Inject ties so the tie-handling paths are exercised too.
  sim(5, 10) = sim(5, 20);
  sim(9, 0) = sim(9, 52);
  std::vector<std::pair<uint32_t, uint32_t>> test;
  for (uint32_t i = 0; i < 37; ++i) test.emplace_back(i, (i * 7) % 53);
  const RankingMetrics got = EvaluateRanking(sim, test);
  const RankingMetrics want = RankingReference(sim, test);
  EXPECT_EQ(got.num_queries, want.num_queries);
  EXPECT_EQ(got.hits_at_1, want.hits_at_1);
  EXPECT_EQ(got.hits_at_10, want.hits_at_10);
  EXPECT_EQ(got.mrr, want.mrr);
}

TEST(MetricsTest, GreedyMatchesBitIdenticalToSerialReference) {
  Rng rng(72);
  Matrix sim(61, 47);
  sim.InitGaussian(&rng, 1.0f);
  sim(3, 3) = sim(17, 5);  // tied scores: sort stability must not matter
  const float threshold = 0.4f;
  // Seed-algorithm copy: serial row-major collection, identical sort and
  // greedy sweep.
  std::vector<std::tuple<float, uint32_t, uint32_t>> cells;
  for (size_t r = 0; r < sim.rows(); ++r) {
    for (size_t c = 0; c < sim.cols(); ++c) {
      if (sim(r, c) >= threshold) {
        cells.emplace_back(sim(r, c), static_cast<uint32_t>(r),
                           static_cast<uint32_t>(c));
      }
    }
  }
  std::sort(cells.begin(), cells.end(), [](const auto& a, const auto& b) {
    return std::get<0>(a) > std::get<0>(b);
  });
  std::vector<bool> used_row(sim.rows(), false), used_col(sim.cols(), false);
  std::vector<std::pair<uint32_t, uint32_t>> want;
  for (const auto& [score, r, c] : cells) {
    (void)score;
    if (used_row[r] || used_col[c]) continue;
    used_row[r] = true;
    used_col[c] = true;
    want.emplace_back(r, c);
  }
  EXPECT_EQ(GreedyOneToOneMatches(sim, threshold), want);
}

TEST(MetricsTest, StreamingRankingBitMatchesMaterialized) {
  Rng rng(73);
  Matrix a(37, 12), b(45, 12);
  a.InitGaussian(&rng, 1.0f);
  b.InitGaussian(&rng, 1.0f);
  std::vector<std::pair<uint32_t, uint32_t>> test;
  for (uint32_t i = 0; i < 37; ++i) test.emplace_back(i, (i * 11) % 45);
  // Repeated query rows and boundary indices.
  test.emplace_back(0, 0);
  test.emplace_back(0, 44);
  test.emplace_back(36, 44);

  Matrix sim;
  BlockedMatMulNT(a, b, &sim);
  const RankingMetrics want = EvaluateRanking(sim, test);

  struct Variant {
    bool parallel;
    size_t row_block;
    size_t col_block;
  };
  // Defaults, plus tiny blocks so queries straddle several tiles, plus the
  // serial shard path.
  for (const Variant& v :
       {Variant{true, 64, 256}, Variant{true, 5, 7}, Variant{false, 3, 11}}) {
    BlockedKernelOptions options;
    options.parallel = v.parallel;
    options.row_block = v.row_block;
    options.col_block = v.col_block;
    const RankingMetrics got = EvaluateRankingStreaming(a, b, test, options);
    EXPECT_EQ(got.num_queries, want.num_queries);
    EXPECT_EQ(got.hits_at_1, want.hits_at_1);
    EXPECT_EQ(got.hits_at_10, want.hits_at_10);
    EXPECT_EQ(got.mrr, want.mrr);
  }
}

TEST(MetricsTest, StreamingRankingEmptyTestSet) {
  Matrix a(4, 3), b(5, 3);
  RankingMetrics m = EvaluateRankingStreaming(a, b, {});
  EXPECT_EQ(m.num_queries, 0u);
  EXPECT_DOUBLE_EQ(m.mrr, 0.0);
}

TEST(MetricsTest, GreedyMatchingInvariantAcrossSimdBackends) {
  if (!simd::Avx2Available()) {
    GTEST_SKIP() << "host lacks AVX2+FMA; nothing to compare";
  }
  Rng rng(74);
  Matrix a(40, 24), b(33, 24);
  a.InitGaussian(&rng, 1.0f);
  b.InitGaussian(&rng, 1.0f);
  // Unit rows, so cells are cosines like the real pipeline feeds the
  // matcher.
  auto normalize = [](Matrix* m) {
    for (size_t r = 0; r < m->rows(); ++r) {
      float* row = m->RowData(r);
      double sq = 0.0;
      for (size_t c = 0; c < m->cols(); ++c) {
        sq += static_cast<double>(row[c]) * row[c];
      }
      const float inv = static_cast<float>(1.0 / std::sqrt(sq));
      for (size_t c = 0; c < m->cols(); ++c) row[c] *= inv;
    }
  };
  normalize(&a);
  normalize(&b);
  BlockedKernelOptions scalar_opt;
  scalar_opt.backend = simd::Choice::kScalar;
  BlockedKernelOptions avx2_opt;
  avx2_opt.backend = simd::Choice::kAvx2;
  Matrix sim_scalar, sim_avx2;
  BlockedMatMulNT(a, b, &sim_scalar, scalar_opt);
  BlockedMatMulNT(a, b, &sim_avx2, avx2_opt);
  // Cell values may differ in the last ulps (fused vs separate rounding),
  // but the greedy one-to-one matching must select the same pairs.
  EXPECT_EQ(GreedyOneToOneMatches(sim_scalar, 0.2f),
            GreedyOneToOneMatches(sim_avx2, 0.2f));
}

// ---------------------------------------------------------------------------
// Joint alignment model
// ---------------------------------------------------------------------------

class JointModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = SmallSyntheticTask();
    KgeConfig kge;
    kge.dim = 16;
    kge.class_dim = 8;
    kge.epochs = 8;
    model1_ = MakeKgeModel(KgeModelKind::kTransE, &task_.kg1, kge);
    model2_ = MakeKgeModel(KgeModelKind::kTransE, &task_.kg2, kge);
    ec1_ = std::make_unique<EntityClassModel>(model1_.get(), kge);
    ec2_ = std::make_unique<EntityClassModel>(model2_.get(), kge);
    JointAlignConfig cfg;
    cfg.align_epochs = 10;
    joint_ = std::make_unique<JointAlignmentModel>(
        model1_.get(), model2_.get(), ec1_.get(), ec2_.get(), cfg);
    Rng rng(44);
    model1_->Init(&rng);
    model2_->Init(&rng);
    ec1_->Init(&rng);
    ec2_->Init(&rng);
    joint_->Init(&rng);
    KgeTrainer t1(model1_.get(), ec1_.get());
    KgeTrainer t2(model2_.get(), ec2_.get());
    Rng r1(45), r2(46);
    t1.Train(&r1);
    t2.Train(&r2);
  }

  AlignmentTask task_;
  std::unique_ptr<KgeModel> model1_, model2_;
  std::unique_ptr<EntityClassModel> ec1_, ec2_;
  std::unique_ptr<JointAlignmentModel> joint_;
};

TEST_F(JointModelTest, SimilaritiesBounded) {
  joint_->RefreshCaches();
  for (int i = 0; i < 20; ++i) {
    EXPECT_GE(joint_->EntitySim(i, i), -1.0f - 1e-5f);
    EXPECT_LE(joint_->EntitySim(i, i), 1.0f + 1e-5f);
  }
  EXPECT_LE(joint_->RelationSim(0, 0), 1.0f + 1e-5f);
  EXPECT_LE(joint_->ClassSim(0, 0), 1.0f + 1e-5f);
}

TEST_F(JointModelTest, CachedEntitySimMatchesFreshComputation) {
  joint_->RefreshCaches();
  for (uint32_t e1 = 0; e1 < 10; ++e1) {
    for (uint32_t e2 = 0; e2 < 10; ++e2) {
      EXPECT_NEAR(joint_->entity_sim()(e1, e2), joint_->EntitySim(e1, e2),
                  1e-4f);
    }
  }
}

TEST_F(JointModelTest, EntityWeightsAreRowAndColumnMaxima) {
  joint_->RefreshCaches();
  const Matrix& sim = joint_->entity_sim();
  for (uint32_t e1 = 0; e1 < 10; ++e1) {
    float row_max = -2.0f;
    for (size_t c = 0; c < sim.cols(); ++c) {
      row_max = std::max(row_max, sim(e1, c));
    }
    EXPECT_NEAR(joint_->EntityWeight1(e1), std::max(row_max, 0.0f), 1e-5f);
  }
}

TEST_F(JointModelTest, MeanEmbeddingsHaveEntityDim) {
  joint_->RefreshCaches();
  EXPECT_EQ(joint_->RelationMean1(0).dim(), model1_->dim());
  EXPECT_EQ(joint_->ClassMean1(0).dim(), model1_->dim());
  EXPECT_GT(joint_->RelationMeanWeightSum1(0), 0.0);
}

TEST_F(JointModelTest, MatchProbabilityInUnitIntervalAndMinOfDirections) {
  joint_->RefreshCaches();
  for (uint32_t e = 0; e < 10; ++e) {
    ElementPair pair{ElementKind::kEntity, e, e};
    double p = joint_->MatchProbability(pair);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  ElementPair rel{ElementKind::kRelation, 0, 0};
  EXPECT_LE(joint_->MatchProbability(rel), 1.0);
}

TEST_F(JointModelTest, TrainingRaisesSeedSimilarity) {
  Rng rng(47);
  SeedAlignment seed = task_.SampleSeed(0.3, &rng);
  double before = 0.0;
  for (auto& [e1, e2] : seed.entities) before += joint_->EntitySim(e1, e2);
  Rng trng(48);
  for (int e = 0; e < 20; ++e) joint_->TrainEpoch(seed, &trng, false);
  double after = 0.0;
  for (auto& [e1, e2] : seed.entities) after += joint_->EntitySim(e1, e2);
  EXPECT_GT(after, before);
}

TEST_F(JointModelTest, TrainEpochInvalidatesCaches) {
  joint_->RefreshCaches();
  EXPECT_TRUE(joint_->caches_ready());
  Rng rng(49);
  SeedAlignment seed = task_.SampleSeed(0.2, &rng);
  joint_->TrainEpoch(seed, &rng, false);
  EXPECT_FALSE(joint_->caches_ready());
}

TEST_F(JointModelTest, SemiMiningRespectsTauAndOneToOne) {
  Rng rng(50);
  SeedAlignment seed = task_.SampleSeed(0.3, &rng);
  for (int e = 0; e < 20; ++e) joint_->TrainEpoch(seed, &rng, false);
  joint_->RefreshCaches();
  auto mined = joint_->MineSemiSupervision();
  std::set<std::pair<int, uint32_t>> firsts, seconds;
  for (const auto& [pair, score] : mined) {
    EXPECT_GT(score, joint_->config().tau);
    EXPECT_TRUE(firsts.insert({static_cast<int>(pair.kind), pair.first}).second);
    EXPECT_TRUE(
        seconds.insert({static_cast<int>(pair.kind), pair.second}).second);
  }
}

TEST_F(JointModelTest, FocalEpochRuns) {
  Rng rng(51);
  SeedAlignment seed = task_.SampleSeed(0.2, &rng);
  double loss = joint_->TrainEpoch(seed, &rng, /*focal=*/true);
  EXPECT_GE(loss, 0.0);
  EXPECT_TRUE(std::isfinite(loss));
}

TEST_F(JointModelTest, SemiEpochPullsMinedPairsUp) {
  Rng rng(52);
  SeedAlignment seed = task_.SampleSeed(0.3, &rng);
  for (int e = 0; e < 10; ++e) joint_->TrainEpoch(seed, &rng, false);
  joint_->RefreshCaches();
  std::vector<std::pair<ElementPair, double>> semi = {
      {ElementPair{ElementKind::kEntity, 1, 1}, 1.0}};
  float before = joint_->EntitySim(1, 1);
  for (int e = 0; e < 10; ++e) joint_->TrainSemiEpoch(semi, &rng);
  EXPECT_GT(joint_->EntitySim(1, 1), before);
}

// Builds the exact unit1 * unit2^T cosine matrix for the model's current
// parameters, mirroring ComputeEntitySimMatrix's arithmetic bit for bit
// (same gemv, same double-accumulated normalization, same blocked kernel),
// i.e. exactly what a full cache refresh would write.
void ExactUnitMatrices(const JointAlignmentModel& joint, const KgeModel& m1,
                       const KgeModel& m2, Matrix* unit1, Matrix* unit2) {
  const size_t n1 = m1.kg().num_entities();
  const size_t n2 = m2.kg().num_entities();
  const size_t dim = m1.dim();
  *unit1 = Matrix(n1, dim);
  *unit2 = Matrix(n2, dim);
  for (size_t e = 0; e < n1; ++e) {
    unit1->SetRow(e, joint.a_ent().Multiply(
                         m1.EntityRepr(static_cast<EntityId>(e))));
  }
  for (size_t e = 0; e < n2; ++e) {
    unit2->SetRow(e, m2.EntityRepr(static_cast<EntityId>(e)));
  }
  auto normalize_rows = [](Matrix* m) {
    for (size_t r = 0; r < m->rows(); ++r) {
      float* row = m->RowData(r);
      double sq = 0.0;
      for (size_t c = 0; c < m->cols(); ++c) {
        sq += static_cast<double>(row[c]) * row[c];
      }
      const float inv =
          sq > 0.0 ? static_cast<float>(1.0 / std::sqrt(sq)) : 0.0f;
      for (size_t c = 0; c < m->cols(); ++c) row[c] *= inv;
    }
  };
  normalize_rows(unit1);
  normalize_rows(unit2);
}

Matrix ExactEntitySimMatrix(const JointAlignmentModel& joint,
                            const KgeModel& m1, const KgeModel& m2) {
  Matrix unit1, unit2;
  ExactUnitMatrices(joint, m1, m2, &unit1, &unit2);
  Matrix sim;
  BlockedMatMulNT(unit1, unit2, &sim);
  return sim;
}

TEST_F(JointModelTest, IncrementalRefreshSkipsUnmovedRowsBitExactly) {
  JointAlignConfig cfg;
  cfg.ent_sim_band_rows = 8;
  JointAlignmentModel incr(model1_.get(), model2_.get(), ec1_.get(),
                           ec2_.get(), cfg);
  JointAlignConfig full_cfg = cfg;
  full_cfg.incremental_ent_sim = false;
  JointAlignmentModel control(model1_.get(), model2_.get(), ec1_.get(),
                              ec2_.get(), full_cfg);
  // Same init seed: the two models' mapping matrices are bit-identical, and
  // they share the underlying KGE models, so a full refresh of either
  // writes the same cache.
  Rng rng_a(54), rng_b(54);
  incr.Init(&rng_a);
  control.Init(&rng_b);

  incr.RefreshCaches();
  EXPECT_FALSE(incr.ent_sim_refresh_stats().incremental);  // first: full

  // Nothing moved: the incremental path must recompute nothing.
  incr.RefreshCaches();
  ASSERT_TRUE(incr.ent_sim_refresh_stats().incremental);
  EXPECT_EQ(incr.ent_sim_refresh_stats().rows_refreshed, 0u);
  EXPECT_EQ(incr.ent_sim_refresh_stats().cols_patched, 0u);

  // Move one entity per side well past the threshold. Only the moved KG1
  // row's band refreshes; the moved KG2 column patches into skipped rows.
  Vector g1(model1_->dim());
  Vector g2(model2_->dim());
  Rng grng(56);
  g1.InitGaussian(&grng, 1.0f);
  g2.InitGaussian(&grng, 1.0f);
  model1_->BackpropEntityRepr(3, g1, 0.5f);
  model2_->BackpropEntityRepr(7, g2, 0.5f);

  incr.RefreshCaches();
  control.RefreshCaches();
  const auto& stats = incr.ent_sim_refresh_stats();
  ASSERT_TRUE(stats.incremental);
  EXPECT_GE(stats.rows_refreshed, 1u);
  EXPECT_LE(stats.rows_refreshed, cfg.ent_sim_band_rows);
  EXPECT_EQ(stats.cols_patched, 1u);
  EXPECT_LT(stats.rows_refreshed * 10, stats.rows_total * 3);  // < 30%

  // Unmoved inputs are bit-identical to the last refresh and moved cells
  // are recomputed through the same kernels, so the incrementally
  // maintained cache equals the bit-exact control everywhere.
  const Matrix& got = incr.entity_sim();
  const Matrix& want = control.entity_sim();
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (size_t r = 0; r < got.rows(); ++r) {
    for (size_t c = 0; c < got.cols(); ++c) {
      ASSERT_EQ(got(r, c), want(r, c)) << "cell (" << r << ", " << c << ")";
    }
  }
}

TEST_F(JointModelTest, IncrementalRefreshStalenessWithinDocumentedBound) {
  JointAlignConfig cfg;
  cfg.ent_sim_band_rows = 8;
  cfg.ent_sim_refresh_threshold = 0.05f;
  JointAlignmentModel joint(model1_.get(), model2_.get(), ec1_.get(),
                            ec2_.get(), cfg);
  Rng rng(57);
  joint.Init(&rng);
  joint.RefreshCaches();

  // Nudge every entity below the refresh threshold: cached cells go stale
  // but must stay within the documented 4 * threshold of the exact cosine.
  Rng grng(58);
  for (uint32_t e = 0; e < task_.kg1.num_entities(); ++e) {
    Vector g(model1_->dim());
    g.InitGaussian(&grng, 1.0f);
    model1_->BackpropEntityRepr(e, g, 0.004f);
  }
  for (uint32_t e = 0; e < task_.kg2.num_entities(); ++e) {
    Vector g(model2_->dim());
    g.InitGaussian(&grng, 1.0f);
    model2_->BackpropEntityRepr(e, g, 0.004f);
  }
  joint.RefreshCaches();
  const auto& stats = joint.ent_sim_refresh_stats();
  ASSERT_TRUE(stats.incremental);
  EXPECT_LT(stats.rows_refreshed, stats.rows_total);

  const Matrix exact =
      ExactEntitySimMatrix(joint, *model1_, *model2_);
  const float bound = 4.0f * cfg.ent_sim_refresh_threshold + 1e-5f;
  float max_err = 0.0f;
  for (size_t r = 0; r < exact.rows(); ++r) {
    for (size_t c = 0; c < exact.cols(); ++c) {
      max_err = std::max(max_err,
                         std::abs(joint.entity_sim()(r, c) - exact(r, c)));
    }
  }
  EXPECT_LE(max_err, bound);
}

TEST_F(JointModelTest, IncrementalRefreshDisabledAlwaysRecomputesFully) {
  JointAlignConfig cfg;
  cfg.incremental_ent_sim = false;
  JointAlignmentModel joint(model1_.get(), model2_.get(), ec1_.get(),
                            ec2_.get(), cfg);
  Rng rng(59);
  joint.Init(&rng);
  for (int i = 0; i < 3; ++i) {
    joint.RefreshCaches();
    EXPECT_FALSE(joint.ent_sim_refresh_stats().incremental);
    EXPECT_EQ(joint.ent_sim_refresh_stats().rows_refreshed,
              joint.ent_sim_refresh_stats().rows_total);
  }
}

TEST_F(JointModelTest, IncrementalRefreshConvergedTailMatchesFullRefresh) {
  JointAlignConfig cfg;
  cfg.ent_sim_band_rows = 8;
  cfg.ent_sim_refresh_threshold = 1e-3f;
  JointAlignmentModel joint(model1_.get(), model2_.get(), ec1_.get(),
                            ec2_.get(), cfg);
  Rng rng(60);
  joint.Init(&rng);
  SeedAlignment seed = task_.SampleSeed(0.3, &rng);
  for (int e = 0; e < 20; ++e) joint.TrainEpoch(seed, &rng, false);
  joint.RefreshCaches();  // full refresh; snapshots now current

  // Converged tail: most entities receive negligible updates (orders of
  // magnitude below the refresh threshold in unit space) while a handful
  // keep moving — the regime the incremental policy is built for.
  Rng grng(61);
  auto nudge = [&](KgeModel* model, EntityId e, float lr) {
    Vector g(model->dim());
    g.InitGaussian(&grng, 1.0f);
    model->BackpropEntityRepr(e, g, lr);
  };
  for (uint32_t e = 0; e < task_.kg1.num_entities(); ++e) {
    nudge(model1_.get(), e, 2e-6f);
  }
  for (uint32_t e = 0; e < task_.kg2.num_entities(); ++e) {
    nudge(model2_.get(), e, 2e-6f);
  }
  for (EntityId e : {4u, 5u, 6u}) nudge(model1_.get(), e, 0.05f);
  for (EntityId e : {10u, 70u}) nudge(model2_.get(), e, 0.05f);

  joint.RefreshCaches();
  const auto& stats = joint.ent_sim_refresh_stats();
  ASSERT_TRUE(stats.incremental);
  EXPECT_GE(stats.rows_refreshed, 1u);
  EXPECT_LT(stats.rows_refreshed * 10, stats.rows_total * 3);  // < 30%
  EXPECT_EQ(stats.cols_patched, 2u);

  // End-of-round ranking metrics from the incrementally maintained cache
  // match a bit-exact full recompute of the same parameters within 1e-4.
  const Matrix exact = ExactEntitySimMatrix(joint, *model1_, *model2_);
  std::vector<std::pair<uint32_t, uint32_t>> gold(
      task_.gold_entities.begin(), task_.gold_entities.end());
  const RankingMetrics want = EvaluateRanking(exact, gold);
  const RankingMetrics got = EvaluateRanking(joint.entity_sim(), gold);
  EXPECT_NEAR(got.hits_at_1, want.hits_at_1, 1e-4);
  EXPECT_NEAR(got.hits_at_10, want.hits_at_10, 1e-4);
  EXPECT_NEAR(got.mrr, want.mrr, 1e-4);
}

TEST(JointModelNoEcTest, ClassSimFallsBackToMeans) {
  AlignmentTask task = SmallSyntheticTask();
  KgeConfig kge;
  kge.dim = 16;
  kge.epochs = 4;
  auto m1 = MakeKgeModel(KgeModelKind::kTransE, &task.kg1, kge);
  auto m2 = MakeKgeModel(KgeModelKind::kTransE, &task.kg2, kge);
  Rng rng(53);
  m1->Init(&rng);
  m2->Init(&rng);
  JointAlignConfig cfg;
  JointAlignmentModel joint(m1.get(), m2.get(), nullptr, nullptr, cfg);
  joint.Init(&rng);
  // Without caches there is no class representation at all.
  EXPECT_FLOAT_EQ(joint.ClassSim(0, 0), 0.0f);
  joint.RefreshCaches();
  float sim = joint.ClassSim(0, 0);
  EXPECT_GE(sim, -1.0f - 1e-5f);
  EXPECT_LE(sim, 1.0f + 1e-5f);
}

}  // namespace
}  // namespace daakg
