#include <gtest/gtest.h>

#include <memory>

#include "core/active_loop.h"
#include "core/daakg.h"
#include "tests/test_util.h"

namespace daakg {
namespace {

using testing_util::SmallSyntheticTask;

DaakgConfig FastConfig() {
  DaakgConfig cfg;
  cfg.kge_model = KgeModelKind::kTransE;
  cfg.kge.dim = 16;
  cfg.kge.class_dim = 8;
  cfg.kge.epochs = 8;
  cfg.align.align_epochs = 25;
  cfg.align.joint_epochs_per_round = 2;
  cfg.fine_tune_epochs = 4;
  return cfg;
}

// ---------------------------------------------------------------------------
// Config validation / Create()
// ---------------------------------------------------------------------------

TEST(DaakgConfigTest, DefaultAndFastConfigsValidate) {
  EXPECT_TRUE(DaakgConfig().Validate().ok());
  EXPECT_TRUE(FastConfig().Validate().ok());
}

TEST(DaakgConfigTest, RejectsBadValues) {
  auto expect_invalid = [](DaakgConfig cfg) {
    Status status = cfg.Validate();
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status;
  };
  DaakgConfig cfg = FastConfig();
  cfg.kge.epochs = -1;
  expect_invalid(cfg);
  cfg = FastConfig();
  cfg.kge.epochs = 0;
  expect_invalid(cfg);
  cfg = FastConfig();
  cfg.kge.dim = 0;
  expect_invalid(cfg);
  cfg = FastConfig();
  cfg.fine_tune_epochs = -3;
  expect_invalid(cfg);
  cfg = FastConfig();
  cfg.match_threshold = 1.5f;
  expect_invalid(cfg);
  cfg = FastConfig();
  cfg.match_threshold = -0.1f;
  expect_invalid(cfg);
  cfg = FastConfig();
  cfg.align.tau = 2.0;
  expect_invalid(cfg);
  cfg = FastConfig();
  cfg.align.align_epochs = 0;
  expect_invalid(cfg);
  cfg = FastConfig();
  cfg.kge_model = static_cast<KgeModelKind>(99);
  expect_invalid(cfg);
}

TEST(DaakgAlignerTest, CreateRejectsInvalidConfigWithoutAborting) {
  AlignmentTask task = SmallSyntheticTask();
  DaakgConfig cfg = FastConfig();
  cfg.kge.epochs = -5;
  auto aligner = DaakgAligner::Create(&task, cfg);
  ASSERT_FALSE(aligner.ok());
  EXPECT_EQ(aligner.status().code(), StatusCode::kInvalidArgument);
  auto null_task = DaakgAligner::Create(nullptr, FastConfig());
  ASSERT_FALSE(null_task.ok());
  EXPECT_EQ(null_task.status().code(), StatusCode::kInvalidArgument);
}

TEST(DaakgAlignerTest, CreateBuildsWorkingAligner) {
  AlignmentTask task = SmallSyntheticTask();
  auto aligner = DaakgAligner::Create(&task, FastConfig());
  ASSERT_TRUE(aligner.ok()) << aligner.status();
  Rng rng(4);
  (*aligner)->Train(task.SampleSeed(0.2, &rng));
  EXPECT_GE((*aligner)->Evaluate().ent_rank.mrr, 0.0);
}

TEST(ActiveLoopConfigTest, ValidatesAndRejects) {
  ActiveLoopConfig cfg;
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.batch_size = 0;
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
  cfg = ActiveLoopConfig();
  cfg.initial_seed_fraction = -0.5;
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
  cfg = ActiveLoopConfig();
  cfg.report_fractions = {0.2, 0.1};  // unsorted
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
  cfg = ActiveLoopConfig();
  cfg.report_fractions = {0.1, 0.1};  // not strictly increasing
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
  cfg = ActiveLoopConfig();
  cfg.report_fractions = {0.0, 0.5};  // out of (0, 1]
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
  cfg = ActiveLoopConfig();
  cfg.pool.top_n = 0;
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ActiveLoopTest, CreateNullChecksDependencies) {
  AlignmentTask task = SmallSyntheticTask();
  DaakgAligner aligner(&task, FastConfig());
  GoldOracle oracle(&task);
  RandomStrategy strategy;
  ActiveLoopConfig cfg;
  EXPECT_FALSE(
      ActiveAlignmentLoop::Create(nullptr, &aligner, &strategy, &oracle, cfg)
          .ok());
  EXPECT_FALSE(
      ActiveAlignmentLoop::Create(&task, nullptr, &strategy, &oracle, cfg)
          .ok());
  EXPECT_FALSE(
      ActiveAlignmentLoop::Create(&task, &aligner, nullptr, &oracle, cfg)
          .ok());
  EXPECT_FALSE(
      ActiveAlignmentLoop::Create(&task, &aligner, &strategy, nullptr, cfg)
          .ok());
  auto loop =
      ActiveAlignmentLoop::Create(&task, &aligner, &strategy, &oracle, cfg);
  EXPECT_TRUE(loop.ok()) << loop.status();
}

TEST(DaakgAlignerTest, TrainEvaluateProducesPopulatedScores) {
  AlignmentTask task = SmallSyntheticTask();
  DaakgAligner aligner(&task, FastConfig());
  Rng rng(1);
  aligner.Train(task.SampleSeed(0.2, &rng));
  EvalResult eval = aligner.Evaluate();
  EXPECT_GT(eval.ent_rank.num_queries, 0u);
  EXPECT_GE(eval.ent_rank.mrr, 0.0);
  EXPECT_LE(eval.ent_rank.hits_at_1, 1.0);
  EXPECT_GE(eval.rel_rank.mrr, 0.0);
  EXPECT_GE(eval.cls_rank.mrr, 0.0);
}

TEST(DaakgAlignerTest, TrainingBeatsUntrainedModel) {
  AlignmentTask task = SmallSyntheticTask();
  Rng rng(2);
  SeedAlignment seed = task.SampleSeed(0.3, &rng);

  DaakgAligner untrained(&task, FastConfig());
  untrained.RefreshCaches();
  EvalResult before = untrained.Evaluate();

  DaakgAligner trained(&task, FastConfig());
  trained.Train(seed);
  EvalResult after = trained.Evaluate();
  EXPECT_GT(after.ent_rank.mrr, before.ent_rank.mrr);
  EXPECT_GT(after.rel_rank.mrr + after.cls_rank.mrr,
            before.rel_rank.mrr + before.cls_rank.mrr);
}

TEST(DaakgAlignerTest, DeterministicGivenSeed) {
  AlignmentTask task = SmallSyntheticTask();
  auto run = [&task]() {
    DaakgAligner aligner(&task, FastConfig());
    Rng rng(3);
    aligner.Train(task.SampleSeed(0.2, &rng));
    return aligner.Evaluate();
  };
  EvalResult a = run();
  EvalResult b = run();
  EXPECT_DOUBLE_EQ(a.ent_rank.mrr, b.ent_rank.mrr);
  EXPECT_DOUBLE_EQ(a.rel_rank.hits_at_1, b.rel_rank.hits_at_1);
}

TEST(DaakgAlignerTest, ExtractAlignmentIsOneToOne) {
  AlignmentTask task = SmallSyntheticTask();
  DaakgAligner aligner(&task, FastConfig());
  Rng rng(4);
  aligner.Train(task.SampleSeed(0.2, &rng));
  auto alignment = aligner.ExtractAlignment();
  std::set<EntityId> firsts, seconds;
  for (const auto& [a, b] : alignment.entities) {
    EXPECT_TRUE(firsts.insert(a).second);
    EXPECT_TRUE(seconds.insert(b).second);
  }
}

TEST(DaakgAlignerTest, FineTuneAccumulatesLabels) {
  AlignmentTask task = SmallSyntheticTask();
  DaakgAligner aligner(&task, FastConfig());
  Rng rng(5);
  SeedAlignment seed = task.SampleSeed(0.1, &rng);
  aligner.Train(seed);
  size_t before = aligner.labeled().entities.size();
  SeedAlignment extra;
  extra.entities.push_back(task.gold_entities[0]);
  extra.entities.push_back(task.gold_entities[1]);
  aligner.FineTune(extra);
  EXPECT_GE(aligner.labeled().entities.size(), before);
  EXPECT_LE(aligner.labeled().entities.size(), before + 2);
}

TEST(DaakgAlignerTest, FineTuneDeduplicatesLabels) {
  AlignmentTask task = SmallSyntheticTask();
  DaakgAligner aligner(&task, FastConfig());
  Rng rng(6);
  SeedAlignment seed = task.SampleSeed(0.1, &rng);
  aligner.Train(seed);
  size_t before = aligner.labeled().entities.size();
  aligner.FineTune(seed);  // same labels again
  EXPECT_EQ(aligner.labeled().entities.size(), before);
}

// Each ablation configuration must run end to end (Table 5 coverage).
struct AblationCase {
  const char* name;
  bool use_class_embeddings;
  bool use_mean_embeddings;
  int semi_rounds;
};

class AblationTest : public ::testing::TestWithParam<AblationCase> {};

TEST_P(AblationTest, RunsEndToEnd) {
  AlignmentTask task = SmallSyntheticTask();
  DaakgConfig cfg = FastConfig();
  cfg.use_class_embeddings = GetParam().use_class_embeddings;
  cfg.align.use_mean_embeddings = GetParam().use_mean_embeddings;
  cfg.align.semi_rounds = GetParam().semi_rounds;
  DaakgAligner aligner(&task, cfg);
  Rng rng(7);
  aligner.Train(task.SampleSeed(0.2, &rng));
  EvalResult eval = aligner.Evaluate();
  EXPECT_GE(eval.ent_rank.mrr, 0.0);
  EXPECT_GE(eval.cls_rank.mrr, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Ablations, AblationTest,
    ::testing::Values(AblationCase{"full", true, true, 1},
                      AblationCase{"no_class_embeddings", false, true, 1},
                      AblationCase{"no_mean_embeddings", true, false, 1},
                      AblationCase{"no_semi", true, true, 0}),
    [](const auto& info) { return std::string(info.param.name); });

// Every KGE model must drive the full pipeline.
class ModelPipelineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelPipelineTest, TrainsAndEvaluates) {
  AlignmentTask task = SmallSyntheticTask();
  DaakgConfig cfg = FastConfig();
  auto kind = ParseKgeModelKind(GetParam());
  ASSERT_TRUE(kind.ok()) << kind.status();
  cfg.kge_model = kind.value();
  cfg.align.align_epochs = 10;  // keep CompGCN affordable in tests
  DaakgAligner aligner(&task, cfg);
  Rng rng(8);
  aligner.Train(task.SampleSeed(0.2, &rng));
  EvalResult eval = aligner.Evaluate();
  EXPECT_GE(eval.ent_rank.mrr, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Models, ModelPipelineTest,
                         ::testing::Values("transe", "rotate", "compgcn"));

// ---------------------------------------------------------------------------
// Active learning loop
// ---------------------------------------------------------------------------

TEST(ActiveLoopTest, RunsToCheckpointsAndReports) {
  AlignmentTask task = SmallSyntheticTask();
  DaakgAligner aligner(&task, FastConfig());
  GoldOracle oracle(&task);
  RandomStrategy strategy;
  ActiveLoopConfig cfg;
  cfg.batch_size = 30;
  cfg.initial_seed_fraction = 0.05;
  cfg.report_fractions = {0.1, 0.2};
  cfg.pool.top_n = 10;
  ActiveAlignmentLoop loop(&task, &aligner, &strategy, &oracle, cfg);
  auto reports = loop.Run();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_DOUBLE_EQ(reports[0].fraction, 0.1);
  EXPECT_DOUBLE_EQ(reports[1].fraction, 0.2);
  EXPECT_GE(reports[1].labels_used, reports[0].labels_used);
  EXPECT_GE(reports[1].matches_found, reports[0].matches_found);
  EXPECT_GT(oracle.queries(), 0u);
  // Reaching 10% from a 5% seed needs at least one oracle round, so the
  // first checkpoint carries that round's telemetry.
  EXPECT_GE(reports[0].telemetry.rounds, 1u);
  EXPECT_GT(reports[0].telemetry.pool_size, 0u);
  EXPECT_GE(reports[0].telemetry.pool_build_seconds, 0.0);
  EXPECT_GE(reports[0].telemetry.selection_seconds, 0.0);
}

TEST(ActiveLoopTest, DaakgStrategyMakesProgressUnderBudget) {
  // Smoke check only: DAAKG deliberately spends part of the budget on
  // schema pairs (high inference power, few matches), so raw match-finding
  // rate is not the metric it optimizes — Fig. 5's bench compares H@1/F1 at
  // equal labeled-match fractions. Here we only require steady progress.
  AlignmentTask task = SmallSyntheticTask();
  auto run = [&task](SelectionStrategy* strategy) {
    DaakgAligner aligner(&task, FastConfig());
    GoldOracle oracle(&task);
    ActiveLoopConfig cfg;
    cfg.batch_size = 25;
    cfg.initial_seed_fraction = 0.05;
    cfg.report_fractions = {0.15};
    cfg.max_queries = 150;
    cfg.pool.top_n = 8;
    ActiveAlignmentLoop loop(&task, &aligner, strategy, &oracle, cfg);
    auto reports = loop.Run();
    return reports.back().matches_found;
  };
  RandomStrategy random;
  DaakgStrategy daakg(/*use_partitioning=*/true);
  size_t daakg_found = run(&daakg);
  size_t random_found = run(&random);
  EXPECT_GT(daakg_found, 0u);
  EXPECT_GT(random_found, 0u);
}

}  // namespace
}  // namespace daakg
