#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "obs/json_exporter.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace daakg {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader for round-trip checks: parses objects, arrays,
// strings, and numbers (everything MetricsToJson emits). No escapes beyond
// what metric names need.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum Kind { kObject, kArray, kString, kNumber } kind = kNumber;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;
  std::string str;
  double number = 0.0;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_NE(it, object.end()) << "missing key: " << key;
    static const JsonValue kEmpty;
    return it == object.end() ? kEmpty : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::kString;
        return ParseString(&out->str);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      out->push_back(text_[pos_]);
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    out->kind = JsonValue::kNumber;
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return false;
    out->number = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.5);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundariesAreLogScale) {
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(1), 2e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(2), 4e-6);
  EXPECT_TRUE(std::isinf(
      Histogram::BucketUpperBound(Histogram::kNumBuckets - 1)));
  // Every boundary (except the overflow) doubles the previous one.
  for (size_t i = 1; i + 1 < Histogram::kNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(i),
                     2.0 * Histogram::BucketUpperBound(i - 1));
  }
}

TEST(HistogramTest, BucketIndexMatchesBounds) {
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1e-6), 0u);
  for (size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
    const double ub = Histogram::BucketUpperBound(i);
    // A value inside the bucket and the (inclusive) upper bound land in it.
    EXPECT_EQ(Histogram::BucketIndex(ub), i) << "upper bound of bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(ub * 1.5), i + 1);
  }
  EXPECT_EQ(Histogram::BucketIndex(1e30), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(
                std::numeric_limits<double>::infinity()),
            0u);  // non-finite -> bucket 0
}

TEST(HistogramTest, RecordTracksStats) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  h.Record(0.5);
  h.Record(1.5);
  h.Record(1.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 3.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.5);
  EXPECT_DOUBLE_EQ(h.Max(), 1.5);
  EXPECT_DOUBLE_EQ(h.Mean(), 1.0);
  uint64_t bucketed = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    bucketed += h.BucketCount(i);
  }
  EXPECT_EQ(bucketed, 3u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

TEST(HistogramTest, NegativeAndNonFiniteCountAsZero) {
  Histogram h;
  h.Record(-1.0);
  h.Record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("daakg.test.a");
  Counter* a2 = registry.GetCounter("daakg.test.a");
  Counter* b = registry.GetCounter("daakg.test.b");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  a->Increment(3);
  auto counters = registry.Counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "daakg.test.a");  // sorted by name
  EXPECT_EQ(counters[0].second->Value(), 3u);
  EXPECT_EQ(counters[1].first, "daakg.test.b");
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsHandlesValid) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h");
  c->Increment(7);
  g->Set(1.25);
  h->Record(0.1);
  registry.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->Count(), 0u);
  // The handles still refer to the registry's live metrics.
  c->Increment();
  EXPECT_EQ(registry.GetCounter("c")->Value(), 1u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsFromThreadPool) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("concurrent.counter");
  Histogram* hist = registry.GetHistogram("concurrent.hist");
  Gauge* gauge = registry.GetGauge("concurrent.gauge");
  // Use a dedicated pool so the test exercises real contention even if the
  // global pool is sized for one core.
  ThreadPool pool(4);
  constexpr size_t kIters = 20000;
  pool.ParallelFor(kIters, [&](size_t i) {
    counter->Increment();
    gauge->Add(1.0);
    hist->Record(static_cast<double>(i % 7) * 1e-3);
  });
  EXPECT_EQ(counter->Value(), kIters);
  EXPECT_DOUBLE_EQ(gauge->Value(), static_cast<double>(kIters));
  EXPECT_EQ(hist->Count(), kIters);
  uint64_t bucketed = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    bucketed += hist->BucketCount(i);
  }
  EXPECT_EQ(bucketed, kIters);
  EXPECT_DOUBLE_EQ(hist->Max(), 6e-3);
  EXPECT_DOUBLE_EQ(hist->Min(), 0.0);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  ThreadPool pool(4);
  std::vector<Counter*> seen(64, nullptr);
  pool.ParallelFor(seen.size(), [&](size_t i) {
    // Many threads race to register a handful of names.
    seen[i] = registry.GetCounter("shared." + std::to_string(i % 4));
    seen[i]->Increment();
  });
  EXPECT_EQ(registry.Counters().size(), 4u);
  uint64_t total = 0;
  for (const auto& [name, c] : registry.Counters()) total += c->Value();
  EXPECT_EQ(total, seen.size());
}

// ---------------------------------------------------------------------------
// ScopedTimer
// ---------------------------------------------------------------------------

TEST(ScopedTimerTest, RecordsOnDestruction) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("span");
  {
    ScopedTimer span(h);
    EXPECT_GE(span.Elapsed(), 0.0);
  }
  EXPECT_EQ(h->Count(), 1u);
  EXPECT_GE(h->Sum(), 0.0);
  {
    ScopedTimer span(&registry, "span");
    span.Cancel();
  }
  EXPECT_EQ(h->Count(), 1u);  // cancelled span records nothing
}

// ---------------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------------

TEST(JsonExporterTest, EmptyRegistryIsValidJson) {
  MetricsRegistry registry;
  JsonValue root;
  ASSERT_TRUE(JsonParser(MetricsToJson(registry)).Parse(&root));
  EXPECT_EQ(root.kind, JsonValue::kObject);
  EXPECT_TRUE(root.at("counters").object.empty());
  EXPECT_TRUE(root.at("gauges").object.empty());
  EXPECT_TRUE(root.at("histograms").object.empty());
}

TEST(JsonExporterTest, RoundTripsValues) {
  MetricsRegistry registry;
  registry.GetCounter("daakg.test.queries")->Increment(120);
  registry.GetGauge("daakg.test.pool_size")->Set(4096.0);
  Histogram* h = registry.GetHistogram("daakg.test.phase_seconds");
  h->Record(0.25);
  h->Record(0.5);
  h->Record(1e12);  // overflow bucket

  JsonValue root;
  ASSERT_TRUE(JsonParser(MetricsToJson(registry)).Parse(&root));

  EXPECT_DOUBLE_EQ(root.at("counters").at("daakg.test.queries").number, 120.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("daakg.test.pool_size").number,
                   4096.0);

  const JsonValue& hist = root.at("histograms").at("daakg.test.phase_seconds");
  EXPECT_DOUBLE_EQ(hist.at("count").number, 3.0);
  EXPECT_DOUBLE_EQ(hist.at("min").number, 0.25);
  EXPECT_DOUBLE_EQ(hist.at("max").number, 1e12);
  EXPECT_NEAR(hist.at("sum").number, 0.75 + 1e12, 1.0);

  const JsonValue& buckets = hist.at("buckets");
  ASSERT_EQ(buckets.kind, JsonValue::kArray);
  double bucketed = 0.0;
  bool saw_overflow = false;
  for (const JsonValue& b : buckets.array) {
    bucketed += b.at("count").number;
    const JsonValue& le = b.at("le");
    if (le.kind == JsonValue::kString) {
      EXPECT_EQ(le.str, "+Inf");
      saw_overflow = true;
    }
  }
  EXPECT_DOUBLE_EQ(bucketed, 3.0);
  EXPECT_TRUE(saw_overflow);
}

TEST(JsonExporterTest, EscapesNames) {
  MetricsRegistry registry;
  registry.GetCounter("weird\"name\\with\njunk")->Increment();
  JsonValue root;
  ASSERT_TRUE(JsonParser(MetricsToJson(registry)).Parse(&root));
  ASSERT_EQ(root.at("counters").object.size(), 1u);
}

TEST(GlobalMetricsTest, IsSingleton) {
  EXPECT_EQ(&GlobalMetrics(), &GlobalMetrics());
  // The library's instrumentation registers under daakg.<layer>.<metric>;
  // touching one name here must not perturb others.
  GlobalMetrics().GetCounter("daakg.test.obs_test_marker")->Increment();
  EXPECT_GE(GlobalMetrics().Counters().size(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace daakg
