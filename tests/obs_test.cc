#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/file_util.h"
#include "common/thread_pool.h"
#include "core/active_loop.h"
#include "core/daakg.h"
#include "obs/json_exporter.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace daakg {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader for round-trip checks: parses objects, arrays,
// strings, and numbers (everything MetricsToJson emits). No escapes beyond
// what metric names need.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum Kind { kObject, kArray, kString, kNumber } kind = kNumber;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;
  std::string str;
  double number = 0.0;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_NE(it, object.end()) << "missing key: " << key;
    static const JsonValue kEmpty;
    return it == object.end() ? kEmpty : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::kString;
        return ParseString(&out->str);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      out->push_back(text_[pos_]);
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    out->kind = JsonValue::kNumber;
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return false;
    out->number = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.5);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundariesAreLogScale) {
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(1), 2e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(2), 4e-6);
  EXPECT_TRUE(std::isinf(
      Histogram::BucketUpperBound(Histogram::kNumBuckets - 1)));
  // Every boundary (except the overflow) doubles the previous one.
  for (size_t i = 1; i + 1 < Histogram::kNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(i),
                     2.0 * Histogram::BucketUpperBound(i - 1));
  }
}

TEST(HistogramTest, BucketIndexMatchesBounds) {
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1e-6), 0u);
  for (size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
    const double ub = Histogram::BucketUpperBound(i);
    // A value inside the bucket and the (inclusive) upper bound land in it.
    EXPECT_EQ(Histogram::BucketIndex(ub), i) << "upper bound of bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(ub * 1.5), i + 1);
  }
  EXPECT_EQ(Histogram::BucketIndex(1e30), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(
                std::numeric_limits<double>::infinity()),
            0u);  // non-finite -> bucket 0
}

TEST(HistogramTest, RecordTracksStats) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  h.Record(0.5);
  h.Record(1.5);
  h.Record(1.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 3.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.5);
  EXPECT_DOUBLE_EQ(h.Max(), 1.5);
  EXPECT_DOUBLE_EQ(h.Mean(), 1.0);
  uint64_t bucketed = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    bucketed += h.BucketCount(i);
  }
  EXPECT_EQ(bucketed, 3u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

TEST(HistogramTest, NegativeAndNonFiniteCountAsZero) {
  Histogram h;
  h.Record(-1.0);
  h.Record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

TEST(HistogramTest, QuantileInterpolatesLogBuckets) {
  // One sample in bucket 1 ((1e-6, 2e-6]) and one in bucket 2 ((2e-6, 4e-6]):
  // p50 lands exactly at bucket 1's upper boundary (frac = 1.0 sweeps the
  // whole bucket geometrically: 1e-6 * 2^1 = 2e-6).
  {
    Histogram h;
    h.Record(1.5e-6);
    h.Record(3e-6);
    EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2e-6);
    // p75: target 1.5 falls halfway through bucket 2 -> 2e-6 * 2^0.5.
    EXPECT_DOUBLE_EQ(h.Quantile(0.75), 2e-6 * std::exp2(0.5));
  }
  // Four samples in bucket 3 ((4e-6, 8e-6]): p50 is the geometric midpoint
  // of the bucket, 4e-6 * 2^0.5, inside the observed [5e-6, 6e-6] range so
  // min/max clamping does not bite.
  {
    Histogram h;
    h.Record(5e-6);
    h.Record(5e-6);
    h.Record(6e-6);
    h.Record(6e-6);
    EXPECT_DOUBLE_EQ(h.Quantile(0.5), 4e-6 * std::exp2(0.5));
  }
  // Bucket 0 ([0, 1e-6]) interpolates linearly: two samples, p50 target 1.0
  // is half of the bucket's population -> 0.5 * 1e-6.
  {
    Histogram h;
    h.Record(0.0);
    h.Record(1e-6);
    EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.5e-6);
  }
}

TEST(HistogramTest, QuantileEdgeCases) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);

  Histogram h;
  h.Record(1.5e-6);
  h.Record(3e-6);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), h.Min());
  EXPECT_DOUBLE_EQ(h.Quantile(-1.0), h.Min());
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.Max());
  EXPECT_DOUBLE_EQ(h.Quantile(2.0), h.Max());

  // A single sample: interpolation would overshoot to the bucket boundary
  // (2e-6), but the estimate is clamped to the observed range.
  Histogram single;
  single.Record(1.5e-6);
  EXPECT_DOUBLE_EQ(single.Quantile(0.5), 1.5e-6);

  // Overflow bucket has no upper bound: quantiles landing there report Max.
  Histogram overflow;
  overflow.Record(1e12);
  EXPECT_DOUBLE_EQ(overflow.Quantile(0.5), 1e12);

  // Quantiles are monotone in q.
  Histogram many;
  for (int i = 1; i <= 100; ++i) many.Record(static_cast<double>(i) * 1e-4);
  double prev = many.Quantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = many.Quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("daakg.test.a");
  Counter* a2 = registry.GetCounter("daakg.test.a");
  Counter* b = registry.GetCounter("daakg.test.b");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  a->Increment(3);
  auto counters = registry.Counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "daakg.test.a");  // sorted by name
  EXPECT_EQ(counters[0].second->Value(), 3u);
  EXPECT_EQ(counters[1].first, "daakg.test.b");
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsHandlesValid) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h");
  c->Increment(7);
  g->Set(1.25);
  h->Record(0.1);
  registry.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->Count(), 0u);
  // The handles still refer to the registry's live metrics.
  c->Increment();
  EXPECT_EQ(registry.GetCounter("c")->Value(), 1u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsFromThreadPool) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("concurrent.counter");
  Histogram* hist = registry.GetHistogram("concurrent.hist");
  Gauge* gauge = registry.GetGauge("concurrent.gauge");
  // Use a dedicated pool so the test exercises real contention even if the
  // global pool is sized for one core.
  ThreadPool pool(4);
  constexpr size_t kIters = 20000;
  pool.ParallelFor(kIters, [&](size_t i) {
    counter->Increment();
    gauge->Add(1.0);
    hist->Record(static_cast<double>(i % 7) * 1e-3);
  });
  EXPECT_EQ(counter->Value(), kIters);
  EXPECT_DOUBLE_EQ(gauge->Value(), static_cast<double>(kIters));
  EXPECT_EQ(hist->Count(), kIters);
  uint64_t bucketed = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    bucketed += hist->BucketCount(i);
  }
  EXPECT_EQ(bucketed, kIters);
  EXPECT_DOUBLE_EQ(hist->Max(), 6e-3);
  EXPECT_DOUBLE_EQ(hist->Min(), 0.0);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  ThreadPool pool(4);
  std::vector<Counter*> seen(64, nullptr);
  pool.ParallelFor(seen.size(), [&](size_t i) {
    // Many threads race to register a handful of names.
    seen[i] = registry.GetCounter("shared." + std::to_string(i % 4));
    seen[i]->Increment();
  });
  EXPECT_EQ(registry.Counters().size(), 4u);
  uint64_t total = 0;
  for (const auto& [name, c] : registry.Counters()) total += c->Value();
  EXPECT_EQ(total, seen.size());
}

// ---------------------------------------------------------------------------
// ScopedTimer
// ---------------------------------------------------------------------------

TEST(ScopedTimerTest, RecordsOnDestruction) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("span");
  {
    ScopedTimer span(h);
    EXPECT_GE(span.Elapsed(), 0.0);
  }
  EXPECT_EQ(h->Count(), 1u);
  EXPECT_GE(h->Sum(), 0.0);
  {
    ScopedTimer span(&registry, "span");
    span.Cancel();
  }
  EXPECT_EQ(h->Count(), 1u);  // cancelled span records nothing
}

// ---------------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------------

TEST(JsonExporterTest, EmptyRegistryIsValidJson) {
  MetricsRegistry registry;
  JsonValue root;
  ASSERT_TRUE(JsonParser(MetricsToJson(registry)).Parse(&root));
  EXPECT_EQ(root.kind, JsonValue::kObject);
  EXPECT_TRUE(root.at("counters").object.empty());
  EXPECT_TRUE(root.at("gauges").object.empty());
  EXPECT_TRUE(root.at("histograms").object.empty());
}

TEST(JsonExporterTest, RoundTripsValues) {
  MetricsRegistry registry;
  registry.GetCounter("daakg.test.queries")->Increment(120);
  registry.GetGauge("daakg.test.pool_size")->Set(4096.0);
  Histogram* h = registry.GetHistogram("daakg.test.phase_seconds");
  h->Record(0.25);
  h->Record(0.5);
  h->Record(1e12);  // overflow bucket

  JsonValue root;
  ASSERT_TRUE(JsonParser(MetricsToJson(registry)).Parse(&root));

  EXPECT_DOUBLE_EQ(root.at("counters").at("daakg.test.queries").number, 120.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("daakg.test.pool_size").number,
                   4096.0);

  const JsonValue& hist = root.at("histograms").at("daakg.test.phase_seconds");
  EXPECT_DOUBLE_EQ(hist.at("count").number, 3.0);
  EXPECT_DOUBLE_EQ(hist.at("min").number, 0.25);
  EXPECT_DOUBLE_EQ(hist.at("max").number, 1e12);
  EXPECT_NEAR(hist.at("sum").number, 0.75 + 1e12, 1.0);

  const JsonValue& buckets = hist.at("buckets");
  ASSERT_EQ(buckets.kind, JsonValue::kArray);
  double bucketed = 0.0;
  bool saw_overflow = false;
  for (const JsonValue& b : buckets.array) {
    bucketed += b.at("count").number;
    const JsonValue& le = b.at("le");
    if (le.kind == JsonValue::kString) {
      EXPECT_EQ(le.str, "+Inf");
      saw_overflow = true;
    }
  }
  EXPECT_DOUBLE_EQ(bucketed, 3.0);
  EXPECT_TRUE(saw_overflow);
}

TEST(JsonExporterTest, ExportsQuantiles) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("daakg.test.quantile_seconds");
  for (int i = 1; i <= 20; ++i) h->Record(static_cast<double>(i) * 1e-3);

  JsonValue root;
  ASSERT_TRUE(JsonParser(MetricsToJson(registry)).Parse(&root));
  const JsonValue& hist =
      root.at("histograms").at("daakg.test.quantile_seconds");
  // The exporter serializes Quantile(q) with %.9g: exact to 9 significant
  // digits, so compare with a matching relative tolerance.
  EXPECT_NEAR(hist.at("p50").number, h->Quantile(0.5),
              1e-8 * h->Quantile(0.5));
  EXPECT_NEAR(hist.at("p95").number, h->Quantile(0.95),
              1e-8 * h->Quantile(0.95));
  EXPECT_NEAR(hist.at("p99").number, h->Quantile(0.99),
              1e-8 * h->Quantile(0.99));
  EXPECT_LE(hist.at("p50").number, hist.at("p95").number);
  EXPECT_LE(hist.at("p95").number, hist.at("p99").number);
  EXPECT_LE(hist.at("p99").number, hist.at("max").number);
}

TEST(JsonExporterTest, EscapesNames) {
  MetricsRegistry registry;
  registry.GetCounter("weird\"name\\with\njunk")->Increment();
  JsonValue root;
  ASSERT_TRUE(JsonParser(MetricsToJson(registry)).Parse(&root));
  ASSERT_EQ(root.at("counters").object.size(), 1u);
}

TEST(GlobalMetricsTest, IsSingleton) {
  EXPECT_EQ(&GlobalMetrics(), &GlobalMetrics());
  // The library's instrumentation registers under daakg.<layer>.<metric>;
  // touching one name here must not perturb others.
  GlobalMetrics().GetCounter("daakg.test.obs_test_marker")->Increment();
  EXPECT_GE(GlobalMetrics().Counters().size(), 1u);
}

// ---------------------------------------------------------------------------
// Structured tracing
// ---------------------------------------------------------------------------

// Every trace test leaves the global session stopped; this guard also makes
// each test robust to an unexpectedly active session (e.g. DAAKG_TRACE set
// in the test environment).
void EnsureNoActiveSession() {
  if (TraceSession::Global().active()) TraceSession::Global().Stop();
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  EnsureNoActiveSession();
  {
    TraceSpan span("trace_disabled", "test");
    EXPECT_EQ(span.id(), 0u);
    span.AddArg("ignored", 1.0);           // no-op when idle
    EXPECT_DOUBLE_EQ(span.Finish(), 0.0);  // kLazy: no clock was read
  }
  EXPECT_TRUE(TraceSession::Global().Stop().empty());
}

TEST(TraceTest, TimerOnlyModeStillRecordsHistogramWhenDisabled) {
  EnsureNoActiveSession();
  Histogram h;
  double seconds = -1.0;
  {
    TraceSpan span("trace_timer_only", "test", &h);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    seconds = span.Finish();
  }
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_GT(seconds, 0.0);
  EXPECT_DOUBLE_EQ(h.Sum(), seconds);
  // kAlways reads the clock even with no histogram attached.
  TraceSpan always("trace_always", "test", nullptr, TimingMode::kAlways);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GT(always.Finish(), 0.0);
}

TEST(TraceTest, RecordsNestedSpans) {
  EnsureNoActiveSession();
  ASSERT_TRUE(TraceSession::Global().Start().ok());
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    TraceSpan outer("trace_nest_outer", "test");
    outer_id = outer.id();
    {
      TraceSpan inner("trace_nest_inner", "test");
      inner.AddArg("depth", 2.0);
      inner_id = inner.id();
    }
  }
  std::vector<TraceEvent> events = TraceSession::Global().Stop();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(outer_id, 0u);
  EXPECT_NE(inner_id, 0u);
  // Stop() sorts by start time: outer first.
  EXPECT_STREQ(events[0].name, "trace_nest_outer");
  EXPECT_STREQ(events[0].cat, "test");
  EXPECT_EQ(events[0].id, outer_id);
  EXPECT_EQ(events[0].parent_id, 0u);
  EXPECT_STREQ(events[1].name, "trace_nest_inner");
  EXPECT_EQ(events[1].id, inner_id);
  EXPECT_EQ(events[1].parent_id, outer_id);
  ASSERT_EQ(events[1].num_args, 1u);
  EXPECT_STREQ(events[1].args[0].key, "depth");
  EXPECT_DOUBLE_EQ(events[1].args[0].value, 2.0);
  // Temporal containment: the inner span starts and ends within the outer.
  EXPECT_GE(events[1].ts_ns, events[0].ts_ns);
  EXPECT_LE(events[1].ts_ns + events[1].dur_ns,
            events[0].ts_ns + events[0].dur_ns);
}

TEST(TraceTest, FusedHistogramMatchesTraceDurationBitForBit) {
  EnsureNoActiveSession();
  ASSERT_TRUE(TraceSession::Global().Start().ok());
  Histogram h;
  double seconds = -1.0;
  {
    TraceSpan span("trace_fused", "test", &h);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    seconds = span.Finish();
  }
  std::vector<TraceEvent> events = TraceSession::Global().Stop();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(h.Count(), 1u);
  // One clock-read pair feeds both sinks: the histogram sample, Finish()'s
  // return value, and the trace duration are the same number, exactly.
  EXPECT_DOUBLE_EQ(h.Sum(), static_cast<double>(events[0].dur_ns) * 1e-9);
  EXPECT_DOUBLE_EQ(seconds, h.Sum());
}

TEST(TraceTest, ParallelForSpansNestUnderEnqueuingSpan) {
  EnsureNoActiveSession();
  ASSERT_TRUE(TraceSession::Global().Start().ok());
  uint64_t outer_id = 0;
  constexpr size_t kIters = 64;
  {
    // The pool is destroyed (workers joined) before Stop(): a pool.task
    // event is emitted by the task_end hook, which can run after
    // ParallelFor returns — only the join makes its collection
    // deterministic.
    ThreadPool pool(4);
    TraceSpan outer("trace_fanout_outer", "test");
    outer_id = outer.id();
    pool.ParallelFor(kIters, [](size_t) {
      TraceSpan inner("trace_fanout_work", "test");
    });
    outer.Finish();
  }
  std::vector<TraceEvent> events = TraceSession::Global().Stop();
  std::set<uint64_t> task_ids;
  size_t num_tasks = 0;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "pool.task") {
      // Synthetic pool-task spans are parented to the span that submitted
      // the work, whichever thread runs them.
      EXPECT_EQ(e.parent_id, outer_id);
      task_ids.insert(e.id);
      ++num_tasks;
    }
  }
  // 4 shards: shard 0 runs inline on the caller, shards 1..3 are submitted
  // as pool tasks (the caller may help-drain them, which still goes through
  // the task hooks).
  EXPECT_EQ(num_tasks, 3u);
  size_t num_work = 0;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) != "trace_fanout_work") continue;
    ++num_work;
    // Inline shard 0 iterations parent to the outer span directly; the rest
    // parent to their shard's pool.task span.
    EXPECT_TRUE(e.parent_id == outer_id || task_ids.count(e.parent_id) > 0)
        << "unparented work span " << e.id;
  }
  EXPECT_EQ(num_work, kIters);
}

TEST(TraceTest, ConcurrentSpanEmissionIsSafe) {
  EnsureNoActiveSession();
  ASSERT_TRUE(TraceSession::Global().Start().ok());
  ThreadPool pool(4);
  constexpr size_t kIters = 2000;
  pool.ParallelFor(kIters, [](size_t i) {
    TraceSpan span("trace_concurrent", "test");
    span.AddArg("i", static_cast<double>(i));
  });
  std::vector<TraceEvent> events = TraceSession::Global().Stop();
  size_t num_work = 0;
  std::set<uint64_t> ids;
  for (const TraceEvent& e : events) {
    EXPECT_TRUE(ids.insert(e.id).second) << "duplicate span id " << e.id;
    if (std::string(e.name) == "trace_concurrent") ++num_work;
  }
  EXPECT_EQ(num_work, kIters);
  EXPECT_EQ(TraceSession::Global().dropped_last_session(), 0u);
}

TEST(TraceTest, StartStopRacesWithEmittersAreSafe) {
  EnsureNoActiveSession();
  // An emitter hammers span creation while the main thread cycles tiny
  // sessions: stragglers from a previous generation must never corrupt or
  // leak into a later session's collection. (Also in the TSan CI leg.)
  std::atomic<bool> stop{false};
  std::thread emitter([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      TraceSpan span("trace_race", "test");
      span.AddArg("x", 1.0);
    }
  });
  for (int cycle = 0; cycle < 20; ++cycle) {
    ASSERT_TRUE(TraceSession::Global().Start(/*events_per_thread=*/64).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::vector<TraceEvent> events = TraceSession::Global().Stop();
    for (const TraceEvent& e : events) {
      EXPECT_STREQ(e.name, "trace_race");
      EXPECT_NE(e.id, 0u);
    }
  }
  stop.store(true);
  emitter.join();
}

TEST(TraceTest, DropPolicyKeepsOldestAndCountsDrops) {
  EnsureNoActiveSession();
  ASSERT_TRUE(TraceSession::Global().Start(/*events_per_thread=*/4).ok());
  std::vector<uint64_t> first_ids;
  for (int i = 0; i < 20; ++i) {
    TraceSpan span("trace_drop", "test");
    if (i < 4) first_ids.push_back(span.id());
  }
  std::vector<TraceEvent> events = TraceSession::Global().Stop();
  // Drop-newest: the first 4 spans survive, the remaining 16 are counted.
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, first_ids[i]);
  }
  EXPECT_EQ(TraceSession::Global().dropped_last_session(), 16u);
}

TEST(TraceTest, SessionRestartSeparatesEvents) {
  EnsureNoActiveSession();
  ASSERT_TRUE(TraceSession::Global().Start().ok());
  { TraceSpan span("trace_session_a", "test"); }
  std::vector<TraceEvent> first = TraceSession::Global().Stop();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_STREQ(first[0].name, "trace_session_a");

  ASSERT_TRUE(TraceSession::Global().Start().ok());
  { TraceSpan span("trace_session_b", "test"); }
  std::vector<TraceEvent> second = TraceSession::Global().Stop();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_STREQ(second[0].name, "trace_session_b");
}

TEST(TraceTest, StartValidatesAndRejectsDoubleStart) {
  EnsureNoActiveSession();
  EXPECT_EQ(TraceSession::Global().Start(0).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(TraceSession::Global().Start().ok());
  EXPECT_TRUE(TraceSession::Global().active());
  EXPECT_EQ(TraceSession::Global().Start().code(),
            StatusCode::kFailedPrecondition);
  TraceSession::Global().Stop();
  EXPECT_FALSE(TraceSession::Global().active());
}

// End-to-end acceptance check: a full active-alignment run under a live
// session must export Chrome trace-event JSON that (a) parses, (b) carries
// spans from every major subsystem, and (c) nests children within their
// parents' time ranges.
TEST(TraceTest, ExportsValidChromeTraceJsonFromActiveLoop) {
  EnsureNoActiveSession();
  ASSERT_TRUE(TraceSession::Global().Start().ok());

  AlignmentTask task = testing_util::SmallSyntheticTask();
  DaakgConfig dcfg;
  dcfg.kge_model = KgeModelKind::kTransE;
  dcfg.kge.dim = 16;
  dcfg.kge.class_dim = 8;
  dcfg.kge.epochs = 8;
  dcfg.align.align_epochs = 25;
  dcfg.align.joint_epochs_per_round = 2;
  dcfg.fine_tune_epochs = 4;
  DaakgAligner aligner(&task, dcfg);
  GoldOracle oracle(&task);
  RandomStrategy strategy;
  ActiveLoopConfig cfg;
  cfg.batch_size = 30;
  cfg.initial_seed_fraction = 0.05;
  cfg.report_fractions = {0.1, 0.2};
  cfg.pool.top_n = 10;
  ActiveAlignmentLoop loop(&task, &aligner, &strategy, &oracle, cfg);
  ASSERT_EQ(loop.Run().size(), 2u);

  const std::string path = ::testing::TempDir() + "daakg_trace_test.json";
  ASSERT_TRUE(TraceSession::Global().StopAndWriteJson(path).ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok()) << content.status();
  std::remove(path.c_str());

  JsonValue root;
  ASSERT_TRUE(JsonParser(content.value()).Parse(&root));
  EXPECT_EQ(root.at("displayTimeUnit").str, "ms");
  const JsonValue& trace_events = root.at("traceEvents");
  ASSERT_EQ(trace_events.kind, JsonValue::kArray);
  ASSERT_GT(trace_events.array.size(), 1u);

  // First pass: index complete ("X") events by span id.
  struct Window {
    double ts = 0.0;
    double dur = 0.0;
  };
  std::map<double, Window> by_id;
  std::set<std::string> cats;
  for (const JsonValue& e : trace_events.array) {
    if (e.at("ph").str != "X") continue;
    cats.insert(e.at("cat").str);
    EXPECT_FALSE(e.at("name").str.empty());
    EXPECT_GE(e.at("dur").number, 0.0);
    EXPECT_GE(e.at("tid").number, 1.0);
    const JsonValue& args = e.at("args");
    by_id[args.at("span_id").number] = Window{e.at("ts").number,
                                              e.at("dur").number};
  }
  // Spans from every major subsystem must be present.
  for (const char* cat :
       {"embedding", "align", "index", "active", "infer", "core"}) {
    EXPECT_EQ(cats.count(cat), 1u) << "no spans with cat=" << cat;
  }

  // Second pass: every child with a surviving parent nests inside it
  // (tolerance covers the exporter's 3-decimal microsecond rounding).
  // pool.task spans are exempt: their end timestamp comes from the
  // task_end hook, which can run a hair after the submitting span (the
  // completion handshake happens inside the task body), so they may
  // overshoot their parent's window by scheduling noise.
  constexpr double kEpsUs = 0.01;
  size_t nested = 0;
  for (const JsonValue& e : trace_events.array) {
    if (e.at("ph").str != "X") continue;
    if (e.at("name").str == "pool.task") continue;
    const JsonValue& args = e.at("args");
    const double parent_id = args.at("parent_span_id").number;
    if (parent_id == 0.0) continue;
    auto it = by_id.find(parent_id);
    if (it == by_id.end()) continue;  // parent dropped (buffer full)
    ++nested;
    const double ts = e.at("ts").number;
    const double end = ts + e.at("dur").number;
    EXPECT_GE(ts, it->second.ts - kEpsUs);
    EXPECT_LE(end, it->second.ts + it->second.dur + kEpsUs);
  }
  EXPECT_GT(nested, 0u);
}

// ---------------------------------------------------------------------------
// Thread-pool telemetry
// ---------------------------------------------------------------------------

TEST(PoolTelemetryTest, CountersAndGauge) {
  Counter* submitted =
      GlobalMetrics().GetCounter("daakg.pool.tasks_submitted");
  Counter* executed = GlobalMetrics().GetCounter("daakg.pool.tasks_executed");
  Counter* drained =
      GlobalMetrics().GetCounter("daakg.pool.help_drained_tasks");
  Gauge* depth = GlobalMetrics().GetGauge("daakg.pool.queue_depth");
  const uint64_t submitted0 = submitted->Value();
  const uint64_t executed0 = executed->Value();
  const uint64_t drained0 = drained->Value();

  ThreadPool pool(1);
  // Park the lone worker on a flag so every queued task below can only be
  // help-drained by the caller's Wait().
  std::atomic<bool> worker_parked{false};
  std::atomic<bool> release{false};
  pool.Submit([&worker_parked, &release] {
    worker_parked.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!worker_parked.load()) std::this_thread::yield();

  constexpr int kTasks = 8;
  std::atomic<int> ran{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&ran, &release] {
      // The last help-drained task unparks the worker.
      if (ran.fetch_add(1) + 1 == kTasks) release.store(true);
    });
  }
  pool.Wait();

  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(submitted->Value() - submitted0,
            static_cast<uint64_t>(kTasks) + 1);
  EXPECT_EQ(executed->Value() - executed0, static_cast<uint64_t>(kTasks) + 1);
  // The worker was parked until the last task ran, so the caller drained
  // all of them.
  EXPECT_EQ(drained->Value() - drained0, static_cast<uint64_t>(kTasks));
  // The queue is empty again; the gauge tracked it back down.
  EXPECT_DOUBLE_EQ(depth->Value(), 0.0);
}

}  // namespace
}  // namespace obs
}  // namespace daakg
