#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "align/metrics.h"
#include "common/rng.h"
#include "index/candidate_index.h"
#include "tensor/simd/simd.h"
#include "tensor/topk.h"

namespace daakg {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    float* row = m.RowData(r);
    for (size_t c = 0; c < cols; ++c) {
      row[c] = static_cast<float>(rng.NextGaussian());
    }
  }
  return m;
}

// Clustered unit rows, the shape schema signatures take: `clusters` random
// unit centers, each row a center plus Gaussian noise, unit-normalized.
// This is the synthetic analogue of the fig6 pool-recall setting.
Matrix ClusteredUnitMatrix(size_t rows, size_t cols, size_t clusters,
                           double noise, uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, cols);
  for (size_t k = 0; k < clusters; ++k) {
    float* row = centers.RowData(k);
    for (size_t c = 0; c < cols; ++c) {
      row[c] = static_cast<float>(rng.NextGaussian());
    }
    UnitNormalizeRow(row, cols);
  }
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    const float* center = centers.RowData(rng.NextUint64(clusters));
    float* row = m.RowData(r);
    for (size_t c = 0; c < cols; ++c) {
      row[c] =
          center[c] + static_cast<float>(rng.NextGaussian() * noise);
    }
    UnitNormalizeRow(row, cols);
  }
  return m;
}

std::unique_ptr<CandidateIndex> MustBuild(Matrix base,
                                          const CandidateIndexConfig& cfg) {
  auto built = CandidateIndex::Build(std::move(base), cfg);
  EXPECT_TRUE(built.ok()) << built.status();
  return std::move(built.value());
}

CandidateIndexConfig ExactConfig() {
  CandidateIndexConfig cfg;
  cfg.backend = IndexChoice::kExact;
  return cfg;
}

CandidateIndexConfig IvfConfig(size_t nlist, size_t nprobe) {
  CandidateIndexConfig cfg;
  cfg.backend = IndexChoice::kIvf;
  cfg.min_rows_for_ann = 0;
  cfg.nlist = nlist;
  cfg.nprobe = nprobe;
  return cfg;
}

// ---------------------------------------------------------------------------
// Config / choice plumbing
// ---------------------------------------------------------------------------

TEST(IndexConfigTest, ValidateAcceptsDefaults) {
  EXPECT_TRUE(CandidateIndexConfig{}.Validate().ok());
}

TEST(IndexConfigTest, ValidateRejectsBadConfigs) {
  CandidateIndexConfig cfg;
  cfg.nprobe = 0;
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
  cfg = {};
  cfg.nlist = 4;
  cfg.nprobe = 5;
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
  cfg = {};
  cfg.kmeans_iters = 0;
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(IndexConfigTest, BuildRejectsInvalidConfigAndEmptyBase) {
  CandidateIndexConfig bad;
  bad.nprobe = 0;
  EXPECT_FALSE(CandidateIndex::Build(RandomMatrix(4, 4, 1), bad).ok());
  EXPECT_FALSE(CandidateIndex::Build(Matrix(), ExactConfig()).ok());
}

TEST(IndexChoiceTest, ParseAndNames) {
  IndexChoice choice = IndexChoice::kAuto;
  EXPECT_TRUE(ParseIndexChoice("exact", &choice));
  EXPECT_EQ(choice, IndexChoice::kExact);
  EXPECT_TRUE(ParseIndexChoice("ivf", &choice));
  EXPECT_EQ(choice, IndexChoice::kIvf);
  EXPECT_TRUE(ParseIndexChoice("auto", &choice));
  EXPECT_EQ(choice, IndexChoice::kAuto);
  EXPECT_FALSE(ParseIndexChoice("hnsw", &choice));
  EXPECT_FALSE(ParseIndexChoice(nullptr, &choice));
  EXPECT_STREQ(IndexBackendName(IndexBackendKind::kExact), "exact");
  EXPECT_STREQ(IndexBackendName(IndexBackendKind::kIvf), "ivf");
  EXPECT_STREQ(IndexChoiceName(IndexChoice::kAuto), "auto");
}

// The CI matrix leg runs this binary under DAAKG_INDEX=exact and =ivf; the
// auto resolution must follow the override while explicit choices ignore
// it.
TEST(IndexChoiceTest, AutoBackendFollowsDaakgIndexEnv) {
  IndexBackendKind expected = IndexBackendKind::kExact;
  if (const char* env = std::getenv("DAAKG_INDEX")) {
    IndexChoice choice = IndexChoice::kAuto;
    if (ParseIndexChoice(env, &choice) && choice == IndexChoice::kIvf) {
      expected = IndexBackendKind::kIvf;
    }
  }
  EXPECT_EQ(ResolveIndexBackend(IndexChoice::kAuto), expected);
  EXPECT_EQ(ResolveIndexBackend(IndexChoice::kExact),
            IndexBackendKind::kExact);
  EXPECT_EQ(ResolveIndexBackend(IndexChoice::kIvf), IndexBackendKind::kIvf);
}

// ---------------------------------------------------------------------------
// ExactIndex: bit-parity with the blocked kernels
// ---------------------------------------------------------------------------

TEST(ExactIndexTest, QueryTopKMatchesBlockedSimTopK) {
  const Matrix a = RandomMatrix(83, 24, 11);
  const Matrix b = RandomMatrix(131, 24, 12);
  auto index = MustBuild(b, ExactConfig());
  EXPECT_EQ(index->backend(), IndexBackendKind::kExact);
  EXPECT_STREQ(index->name(), "exact");
  const SimTopK expected = BlockedSimTopK(a, b, 7, 5);
  const SimTopK got = index->QueryTopK(a, 7, 5);
  // Entry-for-entry equality: same rows, same scores, same tie-break order.
  ASSERT_EQ(got.row_topk.size(), expected.row_topk.size());
  ASSERT_EQ(got.col_topk.size(), expected.col_topk.size());
  for (size_t r = 0; r < expected.row_topk.size(); ++r) {
    EXPECT_EQ(got.row_topk[r], expected.row_topk[r]) << "row " << r;
  }
  for (size_t c = 0; c < expected.col_topk.size(); ++c) {
    EXPECT_EQ(got.col_topk[c], expected.col_topk[c]) << "col " << c;
  }
}

TEST(ExactIndexTest, QueryAboveMatchesMaterializedScan) {
  const Matrix a = RandomMatrix(41, 16, 21);
  const Matrix b = RandomMatrix(67, 16, 22);
  auto index = MustBuild(b, ExactConfig());
  Matrix sim;
  BlockedMatMulNT(a, b, &sim);
  const float threshold = 0.5f;
  const auto got = index->QueryAbove(a, threshold);
  ASSERT_EQ(got.size(), a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    std::vector<ScoredIndex> expected;
    for (size_t c = 0; c < b.rows(); ++c) {
      if (sim(r, c) >= threshold) {
        expected.push_back(ScoredIndex{static_cast<uint32_t>(c), sim(r, c)});
      }
    }
    EXPECT_EQ(got[r], expected) << "row " << r;
  }
}

TEST(ExactIndexTest, CountAboveMatchesMaterializedRanks) {
  const Matrix a = RandomMatrix(29, 16, 31);
  const Matrix b = RandomMatrix(53, 16, 32);
  auto index = MustBuild(b, ExactConfig());
  Matrix sim;
  BlockedMatMulNT(a, b, &sim);
  std::vector<RankQuery> queries;
  Rng rng(33);
  for (int i = 0; i < 40; ++i) {
    const uint32_t r = static_cast<uint32_t>(rng.NextUint64(a.rows()));
    const uint32_t c = static_cast<uint32_t>(rng.NextUint64(b.rows()));
    queries.push_back(RankQuery{r, sim(r, c)});
  }
  const std::vector<size_t> got = index->CountAbove(a, queries);
  ASSERT_EQ(got.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    size_t expected = 0;
    const float* row = sim.RowData(queries[i].query_row);
    for (size_t c = 0; c < b.rows(); ++c) {
      if (row[c] > queries[i].target) ++expected;
    }
    EXPECT_EQ(got[i], expected) << "query " << i;
  }
}

TEST(ExactIndexTest, NormalizeAtBuildMatchesVectorNormalize) {
  const Matrix raw = RandomMatrix(37, 24, 41);
  CandidateIndexConfig cfg = ExactConfig();
  cfg.normalize = true;
  auto index = MustBuild(raw, cfg);
  for (size_t r = 0; r < raw.rows(); ++r) {
    Vector v = raw.Row(r);
    v.Normalize();
    for (size_t c = 0; c < raw.cols(); ++c) {
      EXPECT_EQ(index->base()(r, c), v[c]) << "row " << r << " col " << c;
    }
  }
}

TEST(ExactIndexTest, ScoreMatchesDispatchedDot) {
  const Matrix a = RandomMatrix(5, 48, 51);
  const Matrix b = RandomMatrix(9, 48, 52);
  auto index = MustBuild(b, ExactConfig());
  const simd::Ops& ops = simd::Resolve(simd::Choice::kAuto);
  std::vector<uint32_t> rows = {0, 3, 8};
  std::vector<float> scores(rows.size());
  index->ScoreRows(a.RowData(2), rows, scores.data());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(scores[i], ops.dot(a.RowData(2), b.RowData(rows[i]), b.cols()));
    EXPECT_EQ(index->Score(a.RowData(2), rows[i]), scores[i]);
  }
}

// ---------------------------------------------------------------------------
// Consumer parity: matching and ranking through an exact index reproduce
// the pre-refactor matrix-based outputs exactly
// ---------------------------------------------------------------------------

TEST(ExactIndexTest, GreedyMatchingParity) {
  const Matrix a = RandomMatrix(47, 16, 61);
  const Matrix b = RandomMatrix(59, 16, 62);
  auto index = MustBuild(b, ExactConfig());
  Matrix sim;
  BlockedMatMulNT(a, b, &sim);
  const float threshold = 0.3f;
  const auto expected = GreedyOneToOneMatches(sim, threshold);
  const auto got = GreedyOneToOneMatches(*index, a, threshold);
  // Full sequence equality, not just set equality: the greedy sweep order
  // (and thus conflict resolution) must match the matrix path.
  EXPECT_EQ(got, expected);
}

TEST(ExactIndexTest, StreamingRankingParity) {
  const Matrix a = RandomMatrix(31, 24, 71);
  const Matrix b = RandomMatrix(97, 24, 72);
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  Rng rng(73);
  for (int i = 0; i < 50; ++i) {
    pairs.emplace_back(static_cast<uint32_t>(rng.NextUint64(a.rows())),
                       static_cast<uint32_t>(rng.NextUint64(b.rows())));
  }
  Matrix sim;
  BlockedMatMulNT(a, b, &sim);
  const RankingMetrics expected = EvaluateRanking(sim, pairs);
  auto index = MustBuild(b, ExactConfig());
  const RankingMetrics via_index = EvaluateRankingStreaming(*index, a, pairs);
  const RankingMetrics via_matrices = EvaluateRankingStreaming(a, b, pairs);
  EXPECT_EQ(via_index.num_queries, expected.num_queries);
  EXPECT_EQ(via_index.hits_at_1, expected.hits_at_1);
  EXPECT_EQ(via_index.hits_at_10, expected.hits_at_10);
  EXPECT_EQ(via_index.mrr, expected.mrr);
  EXPECT_EQ(via_matrices.hits_at_1, expected.hits_at_1);
  EXPECT_EQ(via_matrices.hits_at_10, expected.hits_at_10);
  EXPECT_EQ(via_matrices.mrr, expected.mrr);
}

// ---------------------------------------------------------------------------
// IvfIndex
// ---------------------------------------------------------------------------

TEST(IvfIndexTest, FallsBackToExactBelowMinRows) {
  const Matrix b = RandomMatrix(64, 16, 81);
  CandidateIndexConfig cfg = IvfConfig(8, 4);
  cfg.min_rows_for_ann = 1000;  // 64 < 1000 => exact
  auto index = MustBuild(b, cfg);
  EXPECT_EQ(index->backend(), IndexBackendKind::kExact);
  EXPECT_TRUE(index->build_stats().ann_fallback);
  // And the fallback really is the exact kernel.
  const Matrix a = RandomMatrix(10, 16, 82);
  const SimTopK expected = BlockedSimTopK(a, b, 5, 0);
  const SimTopK got = index->QueryTopK(a, 5, 0);
  for (size_t r = 0; r < a.rows(); ++r) {
    EXPECT_EQ(got.row_topk[r], expected.row_topk[r]);
  }
}

TEST(IvfIndexTest, ScoresAreBitwiseExactForReturnedCandidates) {
  const Matrix b = ClusteredUnitMatrix(600, 24, 12, 0.25, 91);
  const Matrix a = ClusteredUnitMatrix(40, 24, 12, 0.25, 92);
  auto index = MustBuild(b, IvfConfig(12, 4));
  EXPECT_EQ(index->backend(), IndexBackendKind::kIvf);
  EXPECT_EQ(index->build_stats().nlist, 12u);
  const simd::Ops& ops = simd::Resolve(simd::Choice::kAuto);
  const SimTopK topk = index->QueryTopK(a, 10, 0);
  size_t checked = 0;
  for (size_t r = 0; r < a.rows(); ++r) {
    for (const ScoredIndex& e : topk.row_topk[r]) {
      EXPECT_EQ(e.score, ops.dot(a.RowData(r), b.RowData(e.index), b.cols()));
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(IvfIndexTest, RecallFloorOnClusteredData) {
  // The fig6 synthetic shape: unit signature-like rows with cluster
  // structure. Recall of the exact per-row top-10 inside the IVF top-10
  // must clear the acceptance floor.
  // Per-coordinate noise 0.08 at dim 32 => noise norm ~0.45 of the unit
  // center: clearly clustered but far from degenerate.
  const size_t kTopK = 10;
  const Matrix b = ClusteredUnitMatrix(1500, 32, 25, 0.08, 101);
  const Matrix a = ClusteredUnitMatrix(200, 32, 25, 0.08, 102);
  auto exact = MustBuild(b, ExactConfig());
  auto ivf = MustBuild(b, IvfConfig(25, 8));
  const SimTopK exact_topk = exact->QueryTopK(a, kTopK, 0);
  const SimTopK ivf_topk = ivf->QueryTopK(a, kTopK, 0);
  size_t hit = 0, total = 0;
  for (size_t r = 0; r < a.rows(); ++r) {
    std::set<uint32_t> ivf_set;
    for (const ScoredIndex& e : ivf_topk.row_topk[r]) ivf_set.insert(e.index);
    for (const ScoredIndex& e : exact_topk.row_topk[r]) {
      ++total;
      hit += ivf_set.count(e.index);
    }
  }
  const double recall = static_cast<double>(hit) / static_cast<double>(total);
  EXPECT_GE(recall, 0.97) << "hit " << hit << " of " << total;
}

TEST(IvfIndexTest, SameSeedRebuildsProduceIdenticalCandidates) {
  const Matrix b = ClusteredUnitMatrix(800, 24, 16, 0.3, 111);
  const Matrix a = ClusteredUnitMatrix(60, 24, 16, 0.3, 112);
  auto first = MustBuild(b, IvfConfig(16, 5));
  auto second = MustBuild(b, IvfConfig(16, 5));
  const SimTopK t1 = first->QueryTopK(a, 8, 6);
  const SimTopK t2 = second->QueryTopK(a, 8, 6);
  for (size_t r = 0; r < a.rows(); ++r) {
    EXPECT_EQ(t1.row_topk[r], t2.row_topk[r]) << "row " << r;
  }
  for (size_t c = 0; c < b.rows(); ++c) {
    EXPECT_EQ(t1.col_topk[c], t2.col_topk[c]) << "col " << c;
  }
  const auto above1 = first->QueryAbove(a, 0.4f);
  const auto above2 = second->QueryAbove(a, 0.4f);
  EXPECT_EQ(above1, above2);
}

TEST(IvfIndexTest, ParallelBuildMatchesSerialBuild) {
  // The k-means assignment pass is row-parallel but row-independent, and
  // the centroid update is sequential either way, so a single-threaded
  // build must produce the identical index.
  const Matrix b = ClusteredUnitMatrix(700, 16, 10, 0.3, 121);
  const Matrix a = ClusteredUnitMatrix(50, 16, 10, 0.3, 122);
  CandidateIndexConfig parallel_cfg = IvfConfig(10, 4);
  CandidateIndexConfig serial_cfg = parallel_cfg;
  serial_cfg.kernel.parallel = false;
  auto parallel_index = MustBuild(b, parallel_cfg);
  auto serial_index = MustBuild(b, serial_cfg);
  const SimTopK tp = parallel_index->QueryTopK(a, 8, 0);
  const SimTopK ts = serial_index->QueryTopK(a, 8, 0);
  for (size_t r = 0; r < a.rows(); ++r) {
    EXPECT_EQ(tp.row_topk[r], ts.row_topk[r]) << "row " << r;
  }
}

TEST(IvfIndexTest, QueryAboveRowsAreAscendingAndExact) {
  const Matrix b = ClusteredUnitMatrix(500, 16, 8, 0.3, 131);
  const Matrix a = ClusteredUnitMatrix(30, 16, 8, 0.3, 132);
  auto index = MustBuild(b, IvfConfig(8, 3));
  const auto rows = index->QueryAbove(a, 0.5f);
  const simd::Ops& ops = simd::Resolve(simd::Choice::kAuto);
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t i = 0; i < rows[r].size(); ++i) {
      if (i > 0) {
        EXPECT_LT(rows[r][i - 1].index, rows[r][i].index);
      }
      EXPECT_GE(rows[r][i].score, 0.5f);
      EXPECT_EQ(rows[r][i].score,
                ops.dot(a.RowData(r), b.RowData(rows[r][i].index), b.cols()));
    }
  }
}

TEST(IvfIndexTest, CountAboveIsLowerBoundOfExact) {
  const Matrix b = ClusteredUnitMatrix(600, 16, 10, 0.3, 141);
  const Matrix a = ClusteredUnitMatrix(40, 16, 10, 0.3, 142);
  auto exact = MustBuild(b, ExactConfig());
  auto ivf = MustBuild(b, IvfConfig(10, 4));
  std::vector<RankQuery> queries;
  Rng rng(143);
  for (int i = 0; i < 30; ++i) {
    const uint32_t r = static_cast<uint32_t>(rng.NextUint64(a.rows()));
    const uint32_t c = static_cast<uint32_t>(rng.NextUint64(b.rows()));
    queries.push_back(RankQuery{r, exact->Score(a.RowData(r), c)});
  }
  const auto exact_counts = exact->CountAbove(a, queries);
  const auto ivf_counts = ivf->CountAbove(a, queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_LE(ivf_counts[i], exact_counts[i]) << "query " << i;
  }
}

}  // namespace
}  // namespace daakg
