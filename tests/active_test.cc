#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "active/oracle.h"
#include "active/pool.h"
#include "active/selection.h"
#include "active/strategies.h"
#include "embedding/trainer.h"
#include "tensor/ops.h"
#include "tensor/topk.h"
#include "tests/test_util.h"

namespace daakg {
namespace {

using testing_util::SmallSyntheticTask;

// Shared fixture: small synthetic task with a trained joint model, a pool,
// an alignment graph and an inference engine.
class ActiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = SmallSyntheticTask();
    KgeConfig kge;
    kge.dim = 16;
    kge.class_dim = 8;
    kge.epochs = 10;
    model1_ = MakeKgeModel(KgeModelKind::kTransE, &task_.kg1, kge);
    model2_ = MakeKgeModel(KgeModelKind::kTransE, &task_.kg2, kge);
    Rng rng(61);
    model1_->Init(&rng);
    model2_->Init(&rng);
    JointAlignConfig jcfg;
    joint_ = std::make_unique<JointAlignmentModel>(
        model1_.get(), model2_.get(), nullptr, nullptr, jcfg);
    joint_->Init(&rng);
    KgeTrainer t1(model1_.get(), nullptr);
    KgeTrainer t2(model2_.get(), nullptr);
    Rng r1(62), r2(63);
    t1.Train(&r1);
    t2.Train(&r2);
    SeedAlignment seed = task_.SampleSeed(0.2, &rng);
    for (int e = 0; e < 15; ++e) joint_->TrainEpoch(seed, &rng, false);
    joint_->RefreshCaches();

    PoolConfig pcfg;
    pcfg.top_n = 10;
    PoolGenerator gen(&task_, joint_.get(), pcfg);
    pool_ = gen.Generate();
    graph_ = std::make_unique<AlignmentGraph>(&task_, pool_);
    InferenceConfig icfg;
    icfg.power_floor = 0.05;
    icfg.max_hops = 3;
    engine_ = std::make_unique<InferenceEngine>(graph_.get(), joint_.get(),
                                                icfg);
    engine_->PrecomputeEdgeCosts();
    labeled_.assign(pool_.size(), false);
    ctx_ = SelectionContext{engine_.get(), joint_.get(), &labeled_};
  }

  AlignmentTask task_;
  std::unique_ptr<KgeModel> model1_, model2_;
  std::unique_ptr<JointAlignmentModel> joint_;
  std::vector<ElementPair> pool_;
  std::unique_ptr<AlignmentGraph> graph_;
  std::unique_ptr<InferenceEngine> engine_;
  std::vector<bool> labeled_;
  SelectionContext ctx_;
};

// ---------------------------------------------------------------------------
// Pool generation
// ---------------------------------------------------------------------------

TEST_F(ActiveTest, PoolContainsAllSchemaPairs) {
  size_t rel_pairs = 0, cls_pairs = 0;
  for (const auto& p : pool_) {
    if (p.kind == ElementKind::kRelation) ++rel_pairs;
    if (p.kind == ElementKind::kClass) ++cls_pairs;
  }
  EXPECT_EQ(rel_pairs, task_.kg1.num_base_relations() *
                           task_.kg2.num_base_relations());
  EXPECT_EQ(cls_pairs, task_.kg1.num_classes() * task_.kg2.num_classes());
}

TEST_F(ActiveTest, PoolEntityPairsAreMutualTopN) {
  // Every entity appears at most top_n times on each side.
  std::vector<int> count1(task_.kg1.num_entities(), 0);
  std::vector<int> count2(task_.kg2.num_entities(), 0);
  for (const auto& p : pool_) {
    if (p.kind != ElementKind::kEntity) continue;
    ++count1[p.first];
    ++count2[p.second];
  }
  for (int c : count1) EXPECT_LE(c, 10);
  for (int c : count2) EXPECT_LE(c, 10);
}

TEST_F(ActiveTest, PoolIsMuchSmallerThanCrossProduct) {
  size_t ent_pairs = 0;
  for (const auto& p : pool_) {
    if (p.kind == ElementKind::kEntity) ++ent_pairs;
  }
  EXPECT_LT(ent_pairs, task_.kg1.num_entities() * task_.kg2.num_entities());
  EXPECT_GT(ent_pairs, 0u);
}

TEST_F(ActiveTest, SignatureHasTwiceEntityDim) {
  PoolConfig pcfg;
  PoolGenerator gen(&task_, joint_.get(), pcfg);
  EXPECT_EQ(gen.Signature(1, 0).dim(), 2 * model1_->dim());
  EXPECT_EQ(gen.Signature(2, 0).dim(), 2 * model2_->dim());
}

TEST_F(ActiveTest, RecallGrowsWithN) {
  PoolConfig small;
  small.top_n = 2;
  PoolConfig large;
  large.top_n = 30;
  PoolGenerator gs(&task_, joint_.get(), small);
  PoolGenerator gl(&task_, joint_.get(), large);
  double rs = gs.EntityPairRecall(gs.Generate());
  double rl = gl.EntityPairRecall(gl.Generate());
  EXPECT_GE(rl, rs);
  EXPECT_GE(rl, 0.0);
  EXPECT_LE(rl, 1.0);
}

TEST_F(ActiveTest, GeneratedPoolMatchesBruteForceMutualTopN) {
  // Parity with the pre-blocked-kernel algorithm: materialize the full
  // signature-similarity matrix, take TopKIndices per row and per column,
  // keep mutual pairs. The reference scores use DotUnrolled so both sides
  // share the same summation order — near-ties at the top-N boundary would
  // otherwise flip on last-ulp differences (DotUnrolled itself is checked
  // against a naive dot in tensor_test). Everything downstream of the dot —
  // tiling, streaming top-K, tie-breaks, mutual intersection — must agree
  // exactly with the seed algorithm.
  PoolConfig pcfg;
  pcfg.top_n = 10;  // same as the fixture's pool_
  PoolGenerator gen(&task_, joint_.get(), pcfg);
  const size_t n1 = task_.kg1.num_entities();
  const size_t n2 = task_.kg2.num_entities();
  const size_t dim = 2 * model1_->dim();
  Matrix sig1(n1, dim), sig2(n2, dim);
  for (size_t e = 0; e < n1; ++e) {
    Vector s = gen.Signature(1, static_cast<EntityId>(e));
    s.Normalize();
    sig1.SetRow(e, s);
  }
  for (size_t e = 0; e < n2; ++e) {
    Vector s = gen.Signature(2, static_cast<EntityId>(e));
    s.Normalize();
    sig2.SetRow(e, s);
  }
  Matrix sim(n1, n2);
  for (size_t r = 0; r < n1; ++r) {
    for (size_t c = 0; c < n2; ++c) {
      sim(r, c) = DotUnrolled(sig1.RowData(r), sig2.RowData(c), dim);
    }
  }
  std::vector<std::set<size_t>> col_top(n2);
  for (size_t c = 0; c < n2; ++c) {
    std::vector<float> col(n1);
    for (size_t r = 0; r < n1; ++r) col[r] = sim(r, c);
    for (size_t r : TopKIndices(col, pcfg.top_n)) col_top[c].insert(r);
  }
  std::set<std::pair<uint32_t, uint32_t>> expected;
  for (size_t r = 0; r < n1; ++r) {
    std::vector<float> row(sim.RowData(r), sim.RowData(r) + n2);
    for (size_t c : TopKIndices(row, pcfg.top_n)) {
      if (col_top[c].count(r) > 0) {
        expected.emplace(static_cast<uint32_t>(r), static_cast<uint32_t>(c));
      }
    }
  }
  std::set<std::pair<uint32_t, uint32_t>> actual;
  for (const auto& p : pool_) {
    if (p.kind == ElementKind::kEntity) actual.emplace(p.first, p.second);
  }
  EXPECT_EQ(actual, expected);
}

TEST_F(ActiveTest, RepeatedGenerateReusesCachedIndex) {
  // Signatures and their normalized/index forms are computed once per
  // generator; repeated Generate() calls (the per-N sweep in
  // bench/fig6_pool_recall) must reuse them and stay deterministic.
  PoolConfig pcfg;
  pcfg.top_n = 10;
  PoolGenerator gen(&task_, joint_.get(), pcfg);
  const std::vector<ElementPair> first = gen.Generate();
  const CandidateIndex* index_after_first = &gen.index();
  const std::vector<ElementPair> second = gen.Generate();
  EXPECT_EQ(&gen.index(), index_after_first);  // no rebuild
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, pool_);  // identical to the fixture's fresh generator
  // The explicit-top_n overload with the configured value is the same pool.
  EXPECT_EQ(gen.Generate(pcfg.top_n), first);
  EXPECT_EQ(&gen.index(), index_after_first);
}

TEST_F(ActiveTest, IvfPoolGenerationIsDeterministicAndKeepsSchemaPairs) {
  PoolConfig pcfg;
  pcfg.top_n = 10;
  pcfg.index.backend = IndexChoice::kIvf;
  pcfg.index.min_rows_for_ann = 0;
  pcfg.index.nlist = 4;
  pcfg.index.nprobe = 2;
  PoolGenerator g1(&task_, joint_.get(), pcfg);
  PoolGenerator g2(&task_, joint_.get(), pcfg);
  const std::vector<ElementPair> p1 = g1.Generate();
  const std::vector<ElementPair> p2 = g2.Generate();
  EXPECT_EQ(g1.index().backend(), IndexBackendKind::kIvf);
  EXPECT_EQ(p1, p2);
  // Schema pairs are exhaustive regardless of the entity backend.
  size_t rel_pairs = 0, cls_pairs = 0;
  for (const auto& p : p1) {
    if (p.kind == ElementKind::kRelation) ++rel_pairs;
    if (p.kind == ElementKind::kClass) ++cls_pairs;
  }
  EXPECT_EQ(rel_pairs, task_.kg1.num_base_relations() *
                           task_.kg2.num_base_relations());
  EXPECT_EQ(cls_pairs, task_.kg1.num_classes() * task_.kg2.num_classes());
}

// ---------------------------------------------------------------------------
// Selection algorithms
// ---------------------------------------------------------------------------

TEST_F(ActiveTest, GreedySelectsRequestedBatch) {
  SelectionConfig cfg;
  cfg.batch_size = 15;
  SelectionResult result = GreedySelect(ctx_, cfg);
  EXPECT_LE(result.selected.size(), 15u);
  EXPECT_GT(result.selected.size(), 0u);
  std::set<uint32_t> uniq(result.selected.begin(), result.selected.end());
  EXPECT_EQ(uniq.size(), result.selected.size());
  EXPECT_GE(result.objective, 0.0);
}

TEST_F(ActiveTest, GreedyRespectsLabeledMask) {
  SelectionConfig cfg;
  cfg.batch_size = 10;
  SelectionResult first = GreedySelect(ctx_, cfg);
  for (uint32_t q : first.selected) labeled_[q] = true;
  SelectionResult second = GreedySelect(ctx_, cfg);
  for (uint32_t q : second.selected) {
    EXPECT_EQ(std::count(first.selected.begin(), first.selected.end(), q), 0);
  }
}

TEST_F(ActiveTest, GreedyGainsAreNonIncreasing) {
  // Submodularity: the marginal objective contribution of each successive
  // pick must not increase.
  SelectionConfig cfg;
  cfg.batch_size = 12;
  SelectionResult result = GreedySelect(ctx_, cfg);
  // Re-simulate to get per-step gains.
  std::vector<float> m(pool_.size(), 0.0f);
  double prev_gain = 1e30;
  for (uint32_t q : result.selected) {
    double pr = joint_->MatchProbability(pool_[q]);
    double gain = 0.0;
    for (const auto& [q2, p] : engine_->PowerFrom(q)) {
      float delta = std::max(0.0f, p - m[q2]);
      gain += delta;
    }
    gain *= pr;
    EXPECT_LE(gain, prev_gain + 1e-6);
    prev_gain = gain;
    for (const auto& [q2, p] : engine_->PowerFrom(q)) {
      m[q2] += static_cast<float>(pr) * std::max(0.0f, p - m[q2]);
    }
  }
}

TEST_F(ActiveTest, PartitionSelectionProducesValidBatch) {
  SelectionConfig cfg;
  cfg.batch_size = 15;
  cfg.rho = 0.9;
  SelectionResult result = PartitionSelect(ctx_, cfg);
  EXPECT_LE(result.selected.size(), 15u);
  std::set<uint32_t> uniq(result.selected.begin(), result.selected.end());
  EXPECT_EQ(uniq.size(), result.selected.size());
  for (uint32_t q : result.selected) EXPECT_FALSE(labeled_[q]);
}

TEST_F(ActiveTest, PartitionSelectionKeepsMostInferencePower) {
  SelectionConfig cfg;
  cfg.batch_size = 10;
  SelectionResult greedy = GreedySelect(ctx_, cfg);
  cfg.rho = 0.9;
  SelectionResult part = PartitionSelect(ctx_, cfg);
  double exact_greedy = EvaluateSelectionObjective(ctx_, greedy.selected);
  double exact_part = EvaluateSelectionObjective(ctx_, part.selected);
  if (exact_greedy > 0.0) {
    // Theorem 6.2 promises rho^mu (1 - 1/e) on the *estimated* objective;
    // at this toy pool size the coarse estimate is at its weakest, so only
    // a loose sanity factor is asserted here. The bench-scale measurement
    // (fig7_partitioning) is the meaningful check and retains ~97% of the
    // exact objective.
    EXPECT_GE(exact_part, 0.1 * exact_greedy);
  }
}

// Concurrency stress: both selectors evaluate PowerFrom under ParallelFor
// against the read-only bound caches. Repeated runs must agree exactly —
// under TSan this doubles as the data-race regression test for the old
// lazily-populated BoundFor.
TEST_F(ActiveTest, RepeatedSelectionIsDeterministic) {
  SelectionConfig cfg;
  cfg.batch_size = 12;
  cfg.rho = 0.9;
  const SelectionResult greedy0 = GreedySelect(ctx_, cfg);
  const SelectionResult part0 = PartitionSelect(ctx_, cfg);
  for (int iter = 0; iter < 5; ++iter) {
    EXPECT_EQ(GreedySelect(ctx_, cfg).selected, greedy0.selected) << iter;
    EXPECT_EQ(PartitionSelect(ctx_, cfg).selected, part0.selected) << iter;
  }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

class StrategyTest : public ActiveTest,
                     public ::testing::WithParamInterface<int> {};

TEST_P(StrategyTest, ProducesValidUnlabeledBatch) {
  auto strategies = MakeAllStrategies();
  auto& strategy = strategies[GetParam()];
  // Pre-label a slice of the pool to exercise mask handling.
  for (size_t i = 0; i < pool_.size(); i += 7) labeled_[i] = true;
  Rng rng(70);
  auto batch = strategy->SelectBatch(ctx_, 12, &rng);
  EXPECT_LE(batch.size(), 12u);
  EXPECT_GT(batch.size(), 0u) << strategy->name();
  std::set<uint32_t> uniq(batch.begin(), batch.end());
  EXPECT_EQ(uniq.size(), batch.size());
  for (uint32_t q : batch) {
    EXPECT_LT(q, pool_.size());
    EXPECT_FALSE(labeled_[q]) << strategy->name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyTest,
                         ::testing::Range(0, 6));

TEST_F(ActiveTest, StrategyRosterHasExpectedNames) {
  auto strategies = MakeAllStrategies();
  ASSERT_EQ(strategies.size(), 6u);
  EXPECT_EQ(strategies[0]->name(), "Random");
  EXPECT_EQ(strategies[5]->name(), "DAAKG");
}

TEST_F(ActiveTest, RandomStrategyIsSeedDependent) {
  RandomStrategy random;
  Rng a(1), b(2);
  auto batch_a = random.SelectBatch(ctx_, 20, &a);
  auto batch_b = random.SelectBatch(ctx_, 20, &b);
  EXPECT_NE(batch_a, batch_b);
  Rng c(1);
  auto batch_c = random.SelectBatch(ctx_, 20, &c);
  EXPECT_EQ(batch_a, batch_c);
}

TEST_F(ActiveTest, UncertaintyPrefersAmbiguousPairs) {
  UncertaintyStrategy uncertainty;
  Rng rng(71);
  auto batch = uncertainty.SelectBatch(ctx_, 5, &rng);
  ASSERT_FALSE(batch.empty());
  // Every selected pair's entropy must be >= the median unselected pair's.
  auto entropy = [this](uint32_t q) {
    double p = std::clamp(joint_->MatchProbability(pool_[q]), 1e-9, 1 - 1e-9);
    return -p * std::log(p) - (1 - p) * std::log(1 - p);
  };
  std::vector<double> unselected;
  std::set<uint32_t> chosen(batch.begin(), batch.end());
  for (uint32_t q = 0; q < pool_.size(); ++q) {
    if (!chosen.count(q)) unselected.push_back(entropy(q));
  }
  std::nth_element(unselected.begin(),
                   unselected.begin() + unselected.size() / 2,
                   unselected.end());
  double median = unselected[unselected.size() / 2];
  for (uint32_t q : batch) EXPECT_GE(entropy(q), median - 1e-9);
}

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

TEST(OracleTest, GoldOracleAnswersTruthAndCounts) {
  AlignmentTask task = SmallSyntheticTask();
  GoldOracle oracle(&task);
  EXPECT_EQ(oracle.queries(), 0u);
  const auto& [e1, e2] = task.gold_entities[0];
  EXPECT_TRUE(oracle.Label(ElementPair{ElementKind::kEntity, e1, e2}));
  const uint32_t wrong = static_cast<uint32_t>(
      (e2 + 1) % task.kg2.num_entities());
  EXPECT_FALSE(oracle.Label(ElementPair{ElementKind::kEntity, e1, wrong}));
  EXPECT_EQ(oracle.queries(), 2u);
}

}  // namespace
}  // namespace daakg
