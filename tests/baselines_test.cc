#include <gtest/gtest.h>

#include <set>

#include "baselines/bertmap_lite.h"
#include "baselines/embedding_baseline.h"
#include "baselines/paris.h"
#include "kg/synthetic.h"
#include "tests/test_util.h"

namespace daakg {
namespace {

using testing_util::SmallSyntheticTask;

EmbeddingBaselineConfig FastBaselineConfig(const std::string& name) {
  EmbeddingBaselineConfig cfg;
  cfg.name = name;
  cfg.kge.dim = 16;
  cfg.kge.epochs = 8;
  cfg.align.align_epochs = 10;
  return cfg;
}

TEST(BaselineRosterTest, HasAllEightCompetitors) {
  KgeConfig kge;
  JointAlignConfig align;
  auto roster = StandardBaselineRoster(kge, align);
  ASSERT_EQ(roster.size(), 8u);
  std::set<std::string> names;
  for (const auto& cfg : roster) names.insert(cfg.name);
  for (const char* expected : {"MTransE", "BootEA", "GCN-Align", "AttrE",
                               "RSN", "MuGNN", "MultiKE", "KECG"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(BaselineRosterTest, ConfigurationsAreDistinct) {
  KgeConfig kge;
  JointAlignConfig align;
  auto roster = StandardBaselineRoster(kge, align);
  // BootEA differs from MTransE by bootstrapping; AttrE/MultiKE use the
  // name view; RSN augments paths; GCN variants use the GNN model.
  auto find = [&roster](const std::string& n) {
    for (const auto& c : roster) {
      if (c.name == n) return c;
    }
    ADD_FAILURE() << "missing " << n;
    return roster[0];
  };
  EXPECT_GT(find("BootEA").semi_rounds, find("MTransE").semi_rounds);
  EXPECT_GT(find("AttrE").name_view_weight, 0.0);
  EXPECT_GT(find("MultiKE").name_view_weight, 0.0);
  EXPECT_TRUE(find("RSN").path_augmentation);
  EXPECT_EQ(find("GCN-Align").kge_model, KgeModelKind::kCompGcn);
  EXPECT_GT(find("MuGNN").max_neighbors, find("GCN-Align").max_neighbors);
}

TEST(EmbeddingBaselineTest, MTransELiteRunsEndToEnd) {
  AlignmentTask task = SmallSyntheticTask();
  EmbeddingBaseline baseline(&task, FastBaselineConfig("MTransE"));
  Rng rng(1);
  SeedAlignment seed = task.SampleSeed(0.2, &rng);
  BaselineResult result = baseline.Run(seed);
  EXPECT_EQ(result.name, "MTransE");
  EXPECT_GT(result.train_seconds, 0.0);
  EXPECT_GT(result.eval.ent_rank.num_queries, 0u);
  EXPECT_GE(result.eval.ent_rank.mrr, 0.0);
  EXPECT_LE(result.eval.ent_rank.hits_at_1, 1.0);
}

TEST(EmbeddingBaselineTest, PathAugmentationRuns) {
  AlignmentTask task = SmallSyntheticTask();
  auto cfg = FastBaselineConfig("RSN");
  cfg.path_augmentation = true;
  EmbeddingBaseline baseline(&task, cfg);
  Rng rng(2);
  BaselineResult result = baseline.Run(task.SampleSeed(0.2, &rng));
  EXPECT_GE(result.eval.ent_rank.mrr, 0.0);
}

TEST(EmbeddingBaselineTest, NameViewHelpsOnSharedNames) {
  // With kSharedNames, blending the literal name view must improve entity
  // H@1 over the pure structure view (the MultiKE phenomenon).
  SyntheticKgSpec spec;
  spec.num_entities1 = 100;
  spec.num_entities2 = 70;
  spec.num_relations1 = 8;
  spec.num_relations2 = 6;
  spec.num_relation_matches = 4;
  spec.num_classes1 = 5;
  spec.num_classes2 = 4;
  spec.num_class_matches = 3;
  spec.name_policy = NamePolicy::kSharedNames;
  spec.seed = 11;
  AlignmentTask task = std::move(GenerateSyntheticTask(spec)).value();
  Rng rng(3);
  SeedAlignment seed = task.SampleSeed(0.2, &rng);

  auto plain_cfg = FastBaselineConfig("MTransE");
  EmbeddingBaseline plain(&task, plain_cfg);
  auto name_cfg = FastBaselineConfig("MultiKE");
  name_cfg.name_view_weight = 0.5;
  EmbeddingBaseline with_names(&task, name_cfg);

  BaselineResult r_plain = plain.Run(seed);
  BaselineResult r_names = with_names.Run(seed);
  EXPECT_GE(r_names.eval.ent_rank.hits_at_1,
            r_plain.eval.ent_rank.hits_at_1);
  EXPECT_GT(r_names.eval.ent_rank.hits_at_1, 0.5);  // names nearly identical
}

TEST(EmbeddingBaselineTest, NameViewUselessOnOpaqueIds) {
  SyntheticKgSpec spec;
  spec.num_entities1 = 100;
  spec.num_entities2 = 70;
  spec.num_relations1 = 8;
  spec.num_relations2 = 6;
  spec.num_relation_matches = 4;
  spec.num_classes1 = 5;
  spec.num_classes2 = 4;
  spec.num_class_matches = 3;
  spec.name_policy = NamePolicy::kOpaqueIds;
  spec.seed = 12;
  AlignmentTask task = std::move(GenerateSyntheticTask(spec)).value();
  Rng rng(4);
  SeedAlignment seed = task.SampleSeed(0.2, &rng);
  auto cfg = FastBaselineConfig("AttrE");
  cfg.name_view_weight = 0.7;
  EmbeddingBaseline baseline(&task, cfg);
  BaselineResult result = baseline.Run(seed);
  // Opaque Wikidata-style ids: the literal view cannot reach high accuracy.
  EXPECT_LT(result.eval.ent_rank.hits_at_1, 0.5);
}

// ---------------------------------------------------------------------------
// PARIS
// ---------------------------------------------------------------------------

TEST(ParisTest, RunsAndScoresSanely) {
  AlignmentTask task = SmallSyntheticTask();
  Paris paris(&task, ParisConfig());
  Rng rng(5);
  BaselineResult result = paris.Run(task.SampleSeed(0.2, &rng));
  EXPECT_EQ(result.name, "PARIS");
  EXPECT_GE(result.eval.ent_rank.mrr, 0.0);
  EXPECT_LE(result.eval.ent_rank.hits_at_1, 1.0);
  EXPECT_GE(result.eval.cls_rank.mrr, 0.0);
}

TEST(ParisTest, StrongWithSharedNames) {
  SyntheticKgSpec spec;
  spec.num_entities1 = 120;
  spec.num_entities2 = 90;
  spec.num_relations1 = 10;
  spec.num_relations2 = 8;
  spec.num_relation_matches = 6;
  spec.num_classes1 = 6;
  spec.num_classes2 = 5;
  spec.num_class_matches = 4;
  spec.name_policy = NamePolicy::kSharedNames;
  spec.seed = 13;
  AlignmentTask task = std::move(GenerateSyntheticTask(spec)).value();
  Paris paris(&task, ParisConfig());
  Rng rng(6);
  BaselineResult result = paris.Run(task.SampleSeed(0.1, &rng));
  // Name anchors + propagation: most matches found.
  EXPECT_GT(result.eval.ent_rank.hits_at_1, 0.5);
  EXPECT_GT(result.eval.rel_rank.hits_at_1, 0.3);
}

TEST(ParisTest, DeterministicAcrossRuns) {
  AlignmentTask task = SmallSyntheticTask();
  Paris paris(&task, ParisConfig());
  Rng rng1(7), rng2(7);
  BaselineResult a = paris.Run(task.SampleSeed(0.2, &rng1));
  BaselineResult b = paris.Run(task.SampleSeed(0.2, &rng2));
  EXPECT_DOUBLE_EQ(a.eval.ent_rank.mrr, b.eval.ent_rank.mrr);
}

// ---------------------------------------------------------------------------
// BERTMap-lite
// ---------------------------------------------------------------------------

TEST(BertMapLiteTest, PerfectOnIdenticalClassNames) {
  SyntheticKgSpec spec;
  spec.num_entities1 = 60;
  spec.num_entities2 = 40;
  spec.num_relations1 = 6;
  spec.num_relations2 = 5;
  spec.num_relation_matches = 3;
  spec.num_classes1 = 6;
  spec.num_classes2 = 5;
  spec.num_class_matches = 4;
  spec.name_policy = NamePolicy::kSharedNames;
  spec.seed = 14;
  AlignmentTask task = std::move(GenerateSyntheticTask(spec)).value();
  BertMapLite bertmap(&task, BertMapLiteConfig());
  Rng rng(8);
  BaselineResult result = bertmap.Run(task.SampleSeed(0.1, &rng));
  EXPECT_GT(result.eval.cls_rank.hits_at_1, 0.7);
}

TEST(BertMapLiteTest, CollapsesOnObfuscatedNames) {
  SyntheticKgSpec spec;
  spec.num_entities1 = 60;
  spec.num_entities2 = 40;
  spec.num_relations1 = 6;
  spec.num_relations2 = 5;
  spec.num_relation_matches = 3;
  spec.num_classes1 = 6;
  spec.num_classes2 = 5;
  spec.num_class_matches = 4;
  spec.name_policy = NamePolicy::kObfuscated;
  spec.seed = 15;
  AlignmentTask task = std::move(GenerateSyntheticTask(spec)).value();
  BertMapLite bertmap(&task, BertMapLiteConfig());
  Rng rng(9);
  BaselineResult result = bertmap.Run(task.SampleSeed(0.1, &rng));
  // Cross-lingual class names defeat the lexical model (Table 3's BERTMap
  // drop on EN-DE / EN-FR).
  EXPECT_LT(result.eval.cls_rank.hits_at_1, 0.6);
}

TEST(BertMapLiteTest, OnlyClassMetricsPopulated) {
  AlignmentTask task = SmallSyntheticTask();
  BertMapLite bertmap(&task, BertMapLiteConfig());
  Rng rng(10);
  BaselineResult result = bertmap.Run(task.SampleSeed(0.1, &rng));
  EXPECT_EQ(result.eval.ent_rank.num_queries, 0u);
  EXPECT_GT(result.eval.cls_rank.num_queries, 0u);
}

}  // namespace
}  // namespace daakg
