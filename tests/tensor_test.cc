#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/rng.h"
#include "embedding/gradcheck.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "tensor/topk.h"
#include "tensor/vector.h"

namespace daakg {
namespace {

constexpr float kTol = 1e-4f;

// ---------------------------------------------------------------------------
// Vector
// ---------------------------------------------------------------------------

TEST(VectorTest, ConstructionAndAccess) {
  Vector v(4, 1.5f);
  EXPECT_EQ(v.dim(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(v[i], 1.5f);
  Vector w{1.0f, 2.0f, 3.0f};
  EXPECT_EQ(w.dim(), 3u);
  EXPECT_FLOAT_EQ(w[2], 3.0f);
}

TEST(VectorTest, Arithmetic) {
  Vector a{1, 2, 3};
  Vector b{4, 5, 6};
  EXPECT_EQ(a + b, (Vector{5, 7, 9}));
  EXPECT_EQ(b - a, (Vector{3, 3, 3}));
  EXPECT_EQ(a * 2.0f, (Vector{2, 4, 6}));
  Vector c = a;
  c.Axpy(2.0f, b);
  EXPECT_EQ(c, (Vector{9, 12, 15}));
  c = a;
  c.Hadamard(b);
  EXPECT_EQ(c, (Vector{4, 10, 18}));
}

TEST(VectorTest, DotAndNorms) {
  Vector a{3, 4};
  EXPECT_FLOAT_EQ(a.Dot(a), 25.0f);
  EXPECT_FLOAT_EQ(a.Norm(), 5.0f);
  EXPECT_FLOAT_EQ(a.SquaredNorm(), 25.0f);
  EXPECT_FLOAT_EQ(a.L1Norm(), 7.0f);
  EXPECT_FLOAT_EQ(Dot(a, Vector{1, 0}), 3.0f);
}

TEST(VectorTest, NormalizeMakesUnitLength) {
  Vector v{3, 4};
  v.Normalize();
  EXPECT_NEAR(v.Norm(), 1.0f, 1e-6f);
  Vector zero(3);
  zero.Normalize();  // must not divide by zero
  EXPECT_FLOAT_EQ(zero.Norm(), 0.0f);
}

TEST(VectorTest, Clip) {
  Vector v{-5, 0.5f, 5};
  v.Clip(1.0f);
  EXPECT_EQ(v, (Vector{-1, 0.5f, 1}));
}

TEST(VectorTest, CosineBoundsAndSpecialCases) {
  Vector a{1, 0};
  Vector b{0, 1};
  EXPECT_NEAR(Cosine(a, a), 1.0f, 1e-6f);
  EXPECT_NEAR(Cosine(a, b), 0.0f, 1e-6f);
  EXPECT_NEAR(Cosine(a, a * -1.0f), -1.0f, 1e-6f);
  EXPECT_FLOAT_EQ(Cosine(a, Vector(2)), 0.0f);  // zero vector
}

TEST(VectorTest, CosineScaleInvariance) {
  Rng rng(3);
  Vector a(8), b(8);
  a.InitGaussian(&rng, 1.0f);
  b.InitGaussian(&rng, 1.0f);
  EXPECT_NEAR(Cosine(a, b), Cosine(a * 7.5f, b * 0.2f), 1e-5f);
}

TEST(VectorTest, DistanceIsMetricOnSamples) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    Vector a(6), b(6), c(6);
    a.InitGaussian(&rng, 1.0f);
    b.InitGaussian(&rng, 1.0f);
    c.InitGaussian(&rng, 1.0f);
    EXPECT_NEAR(EuclideanDistance(a, b), EuclideanDistance(b, a), 1e-5f);
    EXPECT_LE(EuclideanDistance(a, c),
              EuclideanDistance(a, b) + EuclideanDistance(b, c) + 1e-5f);
  }
}

TEST(VectorTest, Concat) {
  Vector ab = Concat(Vector{1, 2}, Vector{3});
  EXPECT_EQ(ab, (Vector{1, 2, 3}));
}

TEST(VectorTest, CosineGradientsMatchFiniteDifferences) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    Vector a(6), b(6);
    a.InitGaussian(&rng, 1.0f);
    b.InitGaussian(&rng, 1.0f);
    Vector da, db;
    CosineWithGradients(a, b, &da, &db);
    Vector num_da = NumericalGradient(
        [&b](const Vector& x) { return Cosine(x, b); }, a);
    Vector num_db = NumericalGradient(
        [&a](const Vector& x) { return Cosine(a, x); }, b);
    EXPECT_LT(MaxRelativeError(da, num_da), 5e-2f);
    EXPECT_LT(MaxRelativeError(db, num_db), 5e-2f);
  }
}

// ---------------------------------------------------------------------------
// Matrix
// ---------------------------------------------------------------------------

TEST(MatrixTest, RowAccess) {
  Matrix m(2, 3);
  m.SetRow(0, Vector{1, 2, 3});
  m.SetRow(1, Vector{4, 5, 6});
  EXPECT_EQ(m.Row(1), (Vector{4, 5, 6}));
  EXPECT_FLOAT_EQ(m(0, 2), 3.0f);
  m.RowAxpy(0, 2.0f, Vector{1, 1, 1});
  EXPECT_EQ(m.Row(0), (Vector{3, 4, 5}));
}

TEST(MatrixTest, IdentityMultiplyIsNoop) {
  Matrix id(4, 4);
  id.SetIdentity();
  Vector x{1, 2, 3, 4};
  EXPECT_EQ(id.Multiply(x), x);
  EXPECT_EQ(id.TransposeMultiply(x), x);
}

TEST(MatrixTest, MultiplyMatchesManual) {
  Matrix m(2, 3);
  m.SetRow(0, Vector{1, 0, 2});
  m.SetRow(1, Vector{0, 1, -1});
  Vector y = m.Multiply(Vector{1, 2, 3});
  EXPECT_EQ(y, (Vector{7, -1}));
  Vector z = m.TransposeMultiply(Vector{1, 1});
  EXPECT_EQ(z, (Vector{1, 1, 1}));
}

TEST(MatrixTest, TransposeMultiplyAgreesWithTransposed) {
  Rng rng(6);
  Matrix m(5, 7);
  m.InitGaussian(&rng, 1.0f);
  Vector x(5);
  x.InitGaussian(&rng, 1.0f);
  Vector a = m.TransposeMultiply(x);
  Vector b = m.Transposed().Multiply(x);
  for (size_t i = 0; i < a.dim(); ++i) EXPECT_NEAR(a[i], b[i], kTol);
}

TEST(MatrixTest, MatrixProductAssociatesWithVector) {
  Rng rng(7);
  Matrix a(4, 5), b(5, 6);
  a.InitGaussian(&rng, 1.0f);
  b.InitGaussian(&rng, 1.0f);
  Vector x(6);
  x.InitGaussian(&rng, 1.0f);
  Vector lhs = a.Multiply(b.Multiply(x));
  Vector rhs = a.Multiply(b).Multiply(x);
  for (size_t i = 0; i < lhs.dim(); ++i) EXPECT_NEAR(lhs[i], rhs[i], kTol);
}

TEST(MatrixTest, AddOuterMatchesManual) {
  Matrix m(2, 2);
  m.AddOuter(2.0f, Vector{1, 3}, Vector{4, 5});
  EXPECT_FLOAT_EQ(m(0, 0), 8.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 10.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 24.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 30.0f);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m(2, 2);
  m(0, 0) = 3;
  m(1, 1) = 4;
  EXPECT_FLOAT_EQ(m.Norm(), 5.0f);
}

TEST(MatrixTest, XavierInitBounded) {
  Rng rng(8);
  Matrix m(10, 10);
  m.InitXavier(&rng);
  float bound = std::sqrt(6.0f / 20.0f);
  for (size_t r = 0; r < 10; ++r) {
    for (size_t c = 0; c < 10; ++c) {
      EXPECT_LE(std::fabs(m(r, c)), bound);
    }
  }
}

// ---------------------------------------------------------------------------
// Ops
// ---------------------------------------------------------------------------

TEST(OpsTest, SoftmaxSumsToOne) {
  auto p = Softmax({1.0, 2.0, 3.0});
  double sum = p[0] + p[1] + p[2];
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(OpsTest, SoftmaxStableUnderLargeLogits) {
  auto p = Softmax({1000.0, 1000.0});
  EXPECT_NEAR(p[0], 0.5, 1e-12);
}

TEST(OpsTest, TemperatureSharpens) {
  auto hot = SoftmaxWithTemperature({1.0, 2.0}, 10.0);
  auto cold = SoftmaxWithTemperature({1.0, 2.0}, 0.1);
  EXPECT_GT(cold[1], hot[1]);
  EXPECT_GT(cold[1], 0.99);
}

TEST(OpsTest, SoftmaxEmptyInput) {
  EXPECT_TRUE(Softmax({}).empty());
}

TEST(OpsTest, LogSumExp) {
  EXPECT_NEAR(LogSumExp({0.0, 0.0}), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogSumExp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_TRUE(std::isinf(LogSumExp({})));
}

TEST(OpsTest, EntropyUniformIsMaximal) {
  double uniform = Entropy({0.25, 0.25, 0.25, 0.25});
  double skewed = Entropy({0.97, 0.01, 0.01, 0.01});
  EXPECT_NEAR(uniform, std::log(4.0), 1e-12);
  EXPECT_LT(skewed, uniform);
  EXPECT_DOUBLE_EQ(Entropy({1.0, 0.0}), 0.0);
}

TEST(OpsTest, TopKOrderingAndTies) {
  std::vector<float> scores = {0.1f, 0.9f, 0.5f, 0.9f};
  auto top = TopKIndices(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // tie broken by lower index
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
}

TEST(OpsTest, TopKClampsK) {
  EXPECT_EQ(TopKIndices({1.0f}, 10).size(), 1u);
  EXPECT_TRUE(TopKIndices({}, 3).empty());
}

TEST(OpsTest, ArgMax) {
  EXPECT_EQ(ArgMax({1.0f, 5.0f, 3.0f}), 1u);
  EXPECT_EQ(ArgMax({}), static_cast<size_t>(-1));
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(SerializeTest, VectorRoundTrip) {
  std::string path = ::testing::TempDir() + "/daakg_vec.bin";
  Rng rng(9);
  Vector v(17);
  v.InitGaussian(&rng, 2.0f);
  ASSERT_TRUE(SaveVector(v, path).ok());
  auto loaded = LoadVector(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, v);
  std::remove(path.c_str());
}

TEST(SerializeTest, MatrixRoundTrip) {
  std::string path = ::testing::TempDir() + "/daakg_mat.bin";
  Rng rng(10);
  Matrix m(5, 9);
  m.InitGaussian(&rng, 1.0f);
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  auto loaded = LoadMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, m);
  std::remove(path.c_str());
}

TEST(SerializeTest, MagicMismatchRejected) {
  std::string path = ::testing::TempDir() + "/daakg_magic.bin";
  Vector v(3, 1.0f);
  ASSERT_TRUE(SaveVector(v, path).ok());
  EXPECT_FALSE(LoadMatrix(path).ok());  // vector file read as matrix
  std::remove(path.c_str());
}

TEST(SerializeTest, EmptyMatrixRoundTrip) {
  std::string path = ::testing::TempDir() + "/daakg_empty.bin";
  Matrix m;
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  auto loaded = LoadMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows(), 0u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Blocked similarity / top-K kernels
// ---------------------------------------------------------------------------

TEST(TopKAccumulatorTest, KeepsKLargestInOrder) {
  TopKAccumulator acc(3);
  const float scores[] = {0.1f, 0.9f, 0.4f, 0.7f, 0.2f, 0.8f};
  for (uint32_t i = 0; i < 6; ++i) acc.Push(i, scores[i]);
  EXPECT_EQ(acc.SortedIndices(), (std::vector<uint32_t>{1, 5, 3}));
}

TEST(TopKAccumulatorTest, TiesBreakTowardLowerIndex) {
  TopKAccumulator acc(2);
  acc.Push(4, 0.5f);
  acc.Push(1, 0.5f);
  acc.Push(3, 0.5f);
  acc.Push(2, 0.5f);
  // Matches TopKIndices: equal scores keep the lowest indexes first.
  EXPECT_EQ(acc.SortedIndices(), (std::vector<uint32_t>{1, 2}));
}

TEST(TopKAccumulatorTest, MatchesTopKIndicesOnRandomInput) {
  Rng rng(11);
  std::vector<float> scores(300);
  for (auto& s : scores) s = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  // A few duplicates to exercise tie handling.
  scores[17] = scores[203];
  scores[50] = scores[99];
  for (size_t k : {1u, 7u, 25u, 300u, 500u}) {
    TopKAccumulator acc(k);
    for (uint32_t i = 0; i < scores.size(); ++i) acc.Push(i, scores[i]);
    std::vector<size_t> expected = TopKIndices(scores, k);
    std::vector<uint32_t> got = acc.SortedIndices();
    ASSERT_EQ(got.size(), expected.size()) << "k=" << k;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "k=" << k << " i=" << i;
    }
  }
}

TEST(TopKAccumulatorTest, ZeroKIsNoop) {
  TopKAccumulator acc(0);
  acc.Push(0, 1.0f);
  EXPECT_EQ(acc.size(), 0u);
  EXPECT_TRUE(acc.SortedIndices().empty());
}

TEST(TopKAccumulatorTest, MergeEqualsSingleStream) {
  Rng rng(12);
  std::vector<float> scores(200);
  for (auto& s : scores) s = static_cast<float>(rng.NextDouble());
  TopKAccumulator whole(9);
  TopKAccumulator left(9), right(9);
  for (uint32_t i = 0; i < scores.size(); ++i) {
    whole.Push(i, scores[i]);
    (i < 100 ? left : right).Push(i, scores[i]);
  }
  left.Merge(right);
  EXPECT_EQ(left.SortedIndices(), whole.SortedIndices());
}

TEST(TopKAccumulatorTest, ThresholdIsWeakestKeptScore) {
  TopKAccumulator acc(2);
  EXPECT_EQ(acc.Threshold(), -std::numeric_limits<float>::infinity());
  acc.Push(0, 0.3f);
  EXPECT_EQ(acc.Threshold(), -std::numeric_limits<float>::infinity());
  acc.Push(1, 0.8f);
  EXPECT_FLOAT_EQ(acc.Threshold(), 0.3f);
  acc.Push(2, 0.5f);
  EXPECT_FLOAT_EQ(acc.Threshold(), 0.5f);
}

TEST(KernelTest, DotUnrolledMatchesNaive) {
  Rng rng(13);
  for (size_t n : {0u, 1u, 3u, 4u, 7u, 64u, 129u}) {
    std::vector<float> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.NextDouble() - 0.5);
      b[i] = static_cast<float>(rng.NextDouble() - 0.5);
    }
    double naive = 0.0;
    for (size_t i = 0; i < n; ++i) {
      naive += static_cast<double>(a[i]) * b[i];
    }
    EXPECT_NEAR(DotUnrolled(a.data(), b.data(), n), naive, 1e-4)
        << "n=" << n;
  }
}

TEST(KernelTest, CountGreaterMatchesNaive) {
  Rng rng(14);
  for (size_t n : {0u, 1u, 3u, 4u, 5u, 100u, 1023u}) {
    std::vector<float> values(n);
    for (auto& v : values) v = static_cast<float>(rng.NextDouble());
    const float threshold = 0.5f;
    size_t naive = 0;
    for (float v : values) naive += v > threshold;
    EXPECT_EQ(CountGreater(values.data(), n, threshold), naive) << "n=" << n;
  }
}

TEST(KernelTest, CountGreaterIsStrict) {
  const float values[] = {1.0f, 2.0f, 2.0f, 3.0f};
  EXPECT_EQ(CountGreater(values, 4, 2.0f), 1u);
}

// Brute-force reference for the blocked kernels: full similarity matrix via
// sequential dots, top-K via TopKIndices (the seed pool-build algorithm).
Matrix NaiveSimMatrix(const Matrix& a, const Matrix& b) {
  Matrix sim(a.rows(), b.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < b.rows(); ++c) {
      float acc = 0.0f;
      for (size_t i = 0; i < a.cols(); ++i) {
        acc += a.RowData(r)[i] * b.RowData(c)[i];
      }
      sim(r, c) = acc;
    }
  }
  return sim;
}

TEST(KernelTest, BlockedSimTopKMatchesBruteForce) {
  Rng rng(15);
  // Odd sizes exercise partial tiles; dim 19 exercises the unroll tail.
  Matrix a(67, 19), b(53, 19);
  a.InitGaussian(&rng, 1.0f);
  b.InitGaussian(&rng, 1.0f);
  const size_t row_k = 9, col_k = 5;
  const Matrix sim = NaiveSimMatrix(a, b);

  for (bool parallel : {false, true}) {
    BlockedKernelOptions options;
    options.row_block = 16;
    options.col_block = 24;
    options.parallel = parallel;
    SimTopK topk = BlockedSimTopK(a, b, row_k, col_k, options);
    ASSERT_EQ(topk.row_topk.size(), a.rows());
    ASSERT_EQ(topk.col_topk.size(), b.rows());
    for (size_t r = 0; r < a.rows(); ++r) {
      std::vector<float> row(sim.RowData(r), sim.RowData(r) + sim.cols());
      std::vector<size_t> expected = TopKIndices(row, row_k);
      ASSERT_EQ(topk.row_topk[r].size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(topk.row_topk[r][i].index, expected[i])
            << "parallel=" << parallel << " row=" << r << " i=" << i;
      }
    }
    for (size_t c = 0; c < b.rows(); ++c) {
      std::vector<float> col(a.rows());
      for (size_t r = 0; r < a.rows(); ++r) col[r] = sim(r, c);
      std::vector<size_t> expected = TopKIndices(col, col_k);
      ASSERT_EQ(topk.col_topk[c].size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(topk.col_topk[c][i].index, expected[i])
            << "parallel=" << parallel << " col=" << c << " i=" << i;
      }
    }
  }
}

TEST(KernelTest, BlockedSimTopKSkipsDirectionsWithZeroK) {
  Rng rng(16);
  Matrix a(10, 8), b(12, 8);
  a.InitGaussian(&rng, 1.0f);
  b.InitGaussian(&rng, 1.0f);
  SimTopK topk = BlockedSimTopK(a, b, 3, 0);
  for (const auto& row : topk.row_topk) EXPECT_EQ(row.size(), 3u);
  for (const auto& col : topk.col_topk) EXPECT_TRUE(col.empty());
}

TEST(KernelTest, BlockedSimTopKEmptyInputs) {
  SimTopK topk = BlockedSimTopK(Matrix(0, 4), Matrix(0, 4), 3, 3);
  EXPECT_TRUE(topk.row_topk.empty());
  EXPECT_TRUE(topk.col_topk.empty());
}

TEST(KernelTest, BlockedMatMulNTMatchesNaive) {
  Rng rng(17);
  Matrix a(33, 21), b(29, 21);
  a.InitGaussian(&rng, 1.0f);
  b.InitGaussian(&rng, 1.0f);
  const Matrix expected = NaiveSimMatrix(a, b);
  for (bool parallel : {false, true}) {
    BlockedKernelOptions options;
    options.row_block = 8;
    options.col_block = 16;
    options.parallel = parallel;
    Matrix out;
    BlockedMatMulNT(a, b, &out, options);
    ASSERT_EQ(out.rows(), expected.rows());
    ASSERT_EQ(out.cols(), expected.cols());
    for (size_t r = 0; r < out.rows(); ++r) {
      for (size_t c = 0; c < out.cols(); ++c) {
        EXPECT_NEAR(out(r, c), expected(r, c), 1e-4)
            << "parallel=" << parallel << " r=" << r << " c=" << c;
      }
    }
  }
}

TEST(KernelTest, BlockedMatMulNTRowsTouchesOnlyRequestedRows) {
  Rng rng(18);
  Matrix a(41, 13), b(23, 13);
  a.InitGaussian(&rng, 1.0f);
  b.InitGaussian(&rng, 1.0f);
  Matrix full;
  BlockedMatMulNT(a, b, &full);

  const float kSentinel = -1234.5f;
  for (bool parallel : {false, true}) {
    BlockedKernelOptions options;
    options.parallel = parallel;
    Matrix out(a.rows(), b.rows());
    out.Fill(kSentinel);
    // Two disjoint bands, one of them the ragged final band.
    BlockedMatMulNTRows(a, b, 5, 17, &out, options);
    BlockedMatMulNTRows(a, b, 33, 41, &out, options);
    for (size_t r = 0; r < out.rows(); ++r) {
      const bool in_band = (r >= 5 && r < 17) || r >= 33;
      for (size_t c = 0; c < out.cols(); ++c) {
        if (in_band) {
          // Band cells must be bitwise what the full product computes.
          EXPECT_EQ(out(r, c), full(r, c))
              << "parallel=" << parallel << " r=" << r << " c=" << c;
        } else {
          EXPECT_EQ(out(r, c), kSentinel)
              << "parallel=" << parallel << " r=" << r << " c=" << c;
        }
      }
    }
  }
}

TEST(KernelTest, BlockedSimVisitStreamsMatMulCells) {
  Rng rng(19);
  Matrix a(27, 17), b(31, 17);
  a.InitGaussian(&rng, 1.0f);
  b.InitGaussian(&rng, 1.0f);
  Matrix full;
  BlockedMatMulNT(a, b, &full);
  for (bool parallel : {false, true}) {
    BlockedKernelOptions options;
    options.row_block = 8;
    options.col_block = 12;
    options.parallel = parallel;
    Matrix seen(a.rows(), b.rows());
    seen.Fill(std::numeric_limits<float>::quiet_NaN());
    BlockedSimVisit(
        a, b,
        [&](size_t r, size_t c0, const float* sims, size_t count) {
          for (size_t j = 0; j < count; ++j) seen(r, c0 + j) = sims[j];
        },
        options);
    for (size_t r = 0; r < seen.rows(); ++r) {
      for (size_t c = 0; c < seen.cols(); ++c) {
        EXPECT_EQ(seen(r, c), full(r, c))
            << "parallel=" << parallel << " r=" << r << " c=" << c;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SIMD dispatch
// ---------------------------------------------------------------------------

// Tolerance for reduction kernels across backends: the AVX2 path uses
// 8-wide FMA accumulation, so dot results may differ from the scalar grid
// in the last ulps (simd.h rounding contract) but never by more than a few
// ulps of the accumulated magnitude.
constexpr float kCrossBackendDotTol = 1e-4f;

TEST(SimdTest, ActiveBackendIsResolvable) {
  const simd::Ops& ops = simd::ActiveOps();
  EXPECT_TRUE(ops.backend == simd::Backend::kScalar ||
              ops.backend == simd::Backend::kAvx2);
  EXPECT_STREQ(simd::BackendName(ops.backend), ops.name);
  // kAuto must resolve to the process-wide table.
  EXPECT_EQ(&simd::Resolve(simd::Choice::kAuto), &ops);
  EXPECT_EQ(simd::Resolve(simd::Choice::kScalar).backend,
            simd::Backend::kScalar);
  if (simd::Avx2Available()) {
    EXPECT_EQ(simd::Resolve(simd::Choice::kAvx2).backend,
              simd::Backend::kAvx2);
  } else {
    // Unavailable AVX2 must degrade to scalar, never crash.
    EXPECT_EQ(simd::Resolve(simd::Choice::kAvx2).backend,
              simd::Backend::kScalar);
  }
}

TEST(SimdTest, ScalarKernelsMatchNaive) {
  Rng rng(40);
  const simd::Ops& ops = simd::ScalarOps();
  for (size_t n : {0u, 1u, 3u, 7u, 8u, 15u, 64u, 129u}) {
    std::vector<float> a(n), b(n), y(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.NextDouble() - 0.5);
      b[i] = static_cast<float>(rng.NextDouble() - 0.5);
      y[i] = static_cast<float>(rng.NextDouble() - 0.5);
    }
    double naive_dot = 0.0;
    for (size_t i = 0; i < n; ++i) {
      naive_dot += static_cast<double>(a[i]) * b[i];
    }
    EXPECT_NEAR(ops.dot(a.data(), b.data(), n), naive_dot, 1e-4) << "n=" << n;

    std::vector<float> y2 = y;
    ops.axpy(0.37f, a.data(), y2.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(y2[i], y[i] + 0.37f * a[i]) << "n=" << n << " i=" << i;
    }
    ops.scale(y2.data(), n, 0.5f);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(y2[i], (y[i] + 0.37f * a[i]) * 0.5f) << "n=" << n;
    }
  }
}

TEST(SimdTest, Dot4MatchesDotPerColumnOnEveryBackend) {
  Rng rng(41);
  std::vector<const simd::Ops*> tables = {&simd::ScalarOps()};
  if (simd::Avx2Available()) tables.push_back(simd::Avx2OpsOrNull());
  // Sizes cover the 8-wide body, the 4-wide scalar grid and ragged tails.
  for (size_t n : {1u, 4u, 8u, 11u, 16u, 19u, 64u, 100u}) {
    std::vector<float> a(n), b0(n), b1(n), b2(n), b3(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.NextDouble() - 0.5);
      b0[i] = static_cast<float>(rng.NextDouble() - 0.5);
      b1[i] = static_cast<float>(rng.NextDouble() - 0.5);
      b2[i] = static_cast<float>(rng.NextDouble() - 0.5);
      b3[i] = static_cast<float>(rng.NextDouble() - 0.5);
    }
    for (const simd::Ops* ops : tables) {
      float out[4];
      ops->dot4(a.data(), b0.data(), b1.data(), b2.data(), b3.data(), n, out);
      // Bitwise, not approximate: the blocked walk relies on the 4-wide and
      // remainder columns producing identical cells.
      EXPECT_EQ(out[0], ops->dot(a.data(), b0.data(), n))
          << ops->name << " n=" << n;
      EXPECT_EQ(out[1], ops->dot(a.data(), b1.data(), n))
          << ops->name << " n=" << n;
      EXPECT_EQ(out[2], ops->dot(a.data(), b2.data(), n))
          << ops->name << " n=" << n;
      EXPECT_EQ(out[3], ops->dot(a.data(), b3.data(), n))
          << ops->name << " n=" << n;
    }
  }
}

TEST(SimdTest, Avx2ReductionsMatchScalarWithinTolerance) {
  if (!simd::Avx2Available()) {
    GTEST_SKIP() << "AVX2+FMA not available on this host/build";
  }
  Rng rng(42);
  const simd::Ops& scalar = simd::ScalarOps();
  const simd::Ops& avx2 = *simd::Avx2OpsOrNull();
  for (size_t n : {1u, 7u, 8u, 9u, 63u, 64u, 200u}) {
    std::vector<float> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.NextDouble() - 0.5);
      b[i] = static_cast<float>(rng.NextDouble() - 0.5);
    }
    EXPECT_NEAR(avx2.dot(a.data(), b.data(), n),
                scalar.dot(a.data(), b.data(), n), kCrossBackendDotTol)
        << "n=" << n;
  }
}

TEST(SimdTest, ElementwiseKernelsAreBitIdenticalAcrossBackends) {
  if (!simd::Avx2Available()) {
    GTEST_SKIP() << "AVX2+FMA not available on this host/build";
  }
  Rng rng(43);
  const simd::Ops& scalar = simd::ScalarOps();
  const simd::Ops& avx2 = *simd::Avx2OpsOrNull();
  for (size_t n : {1u, 7u, 8u, 9u, 31u, 64u, 1000u}) {
    std::vector<float> x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = static_cast<float>(rng.NextGaussian());
      y[i] = static_cast<float>(rng.NextGaussian());
    }
    for (float alpha : {1.0f, -1.0f, 0.37f, -2.5e-3f}) {
      std::vector<float> ys = y, yv = y;
      scalar.axpy(alpha, x.data(), ys.data(), n);
      avx2.axpy(alpha, x.data(), yv.data(), n);
      // The rounding contract promises bit equality here — training must
      // not diverge across backends.
      EXPECT_EQ(ys, yv) << "alpha=" << alpha << " n=" << n;
      scalar.scale(ys.data(), n, alpha);
      avx2.scale(yv.data(), n, alpha);
      EXPECT_EQ(ys, yv) << "alpha=" << alpha << " n=" << n;
    }
  }
}

TEST(SimdTest, CountGreaterExactOnEveryBackend) {
  Rng rng(44);
  std::vector<const simd::Ops*> tables = {&simd::ScalarOps()};
  if (simd::Avx2Available()) tables.push_back(simd::Avx2OpsOrNull());
  for (size_t n : {0u, 1u, 8u, 9u, 100u, 1023u}) {
    std::vector<float> values(n);
    for (auto& v : values) v = static_cast<float>(rng.NextDouble());
    values.insert(values.end(), {0.5f, 0.5f});  // exact-tie cells
    const float threshold = 0.5f;
    size_t naive = 0;
    for (float v : values) naive += v > threshold;
    for (const simd::Ops* ops : tables) {
      EXPECT_EQ(ops->count_greater(values.data(), values.size(), threshold),
                naive)
          << ops->name << " n=" << n;
    }
  }
}

// Cross-backend determinism of the blocked kernels: per-backend similarity
// values agree within an epsilon bound, and the resulting top-K index sets
// are identical (descending score, ties toward the lower index) on data
// without engineered near-ties.
TEST(SimdTest, BlockedKernelsBackendInvariant) {
  if (!simd::Avx2Available()) {
    GTEST_SKIP() << "AVX2+FMA not available on this host/build";
  }
  Rng rng(45);
  Matrix a(57, 24), b(49, 24);
  a.InitGaussian(&rng, 1.0f);
  b.InitGaussian(&rng, 1.0f);

  BlockedKernelOptions scalar_opts, avx2_opts;
  scalar_opts.backend = simd::Choice::kScalar;
  avx2_opts.backend = simd::Choice::kAvx2;

  Matrix out_scalar, out_avx2;
  BlockedMatMulNT(a, b, &out_scalar, scalar_opts);
  BlockedMatMulNT(a, b, &out_avx2, avx2_opts);
  for (size_t r = 0; r < out_scalar.rows(); ++r) {
    for (size_t c = 0; c < out_scalar.cols(); ++c) {
      EXPECT_NEAR(out_scalar(r, c), out_avx2(r, c), kCrossBackendDotTol)
          << "r=" << r << " c=" << c;
    }
  }

  SimTopK topk_scalar = BlockedSimTopK(a, b, 7, 5, scalar_opts);
  SimTopK topk_avx2 = BlockedSimTopK(a, b, 7, 5, avx2_opts);
  for (size_t r = 0; r < topk_scalar.row_topk.size(); ++r) {
    ASSERT_EQ(topk_scalar.row_topk[r].size(), topk_avx2.row_topk[r].size());
    for (size_t i = 0; i < topk_scalar.row_topk[r].size(); ++i) {
      EXPECT_EQ(topk_scalar.row_topk[r][i].index,
                topk_avx2.row_topk[r][i].index)
          << "r=" << r << " i=" << i;
    }
  }
  for (size_t c = 0; c < topk_scalar.col_topk.size(); ++c) {
    ASSERT_EQ(topk_scalar.col_topk[c].size(), topk_avx2.col_topk[c].size());
    for (size_t i = 0; i < topk_scalar.col_topk[c].size(); ++i) {
      EXPECT_EQ(topk_scalar.col_topk[c][i].index,
                topk_avx2.col_topk[c][i].index)
          << "c=" << c << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace daakg
