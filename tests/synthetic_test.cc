#include <gtest/gtest.h>

#include <set>

#include "common/string_util.h"
#include "kg/stats.h"
#include "kg/synthetic.h"

namespace daakg {
namespace {

SyntheticKgSpec SmallSpec() {
  SyntheticKgSpec spec;
  spec.num_entities1 = 150;
  spec.num_entities2 = 100;
  spec.num_relations1 = 12;
  spec.num_relations2 = 9;
  spec.num_relation_matches = 7;
  spec.num_classes1 = 7;
  spec.num_classes2 = 5;
  spec.num_class_matches = 4;
  spec.seed = 21;
  return spec;
}

TEST(SyntheticTest, CountsMatchSpec) {
  auto task = GenerateSyntheticTask(SmallSpec());
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->kg1.num_entities(), 150u);
  EXPECT_EQ(task->kg2.num_entities(), 100u);
  EXPECT_EQ(task->kg1.num_base_relations(), 12u);
  EXPECT_EQ(task->kg2.num_base_relations(), 9u);
  EXPECT_EQ(task->kg1.num_classes(), 7u);
  EXPECT_EQ(task->kg2.num_classes(), 5u);
  EXPECT_EQ(task->gold_entities.size(), 100u);
  EXPECT_EQ(task->gold_relations.size(), 7u);
  EXPECT_EQ(task->gold_classes.size(), 4u);
}

TEST(SyntheticTest, EveryKg2EntityIsMatched) {
  auto task = GenerateSyntheticTask(SmallSpec());
  ASSERT_TRUE(task.ok());
  std::set<EntityId> matched2;
  for (const auto& [e1, e2] : task->gold_entities) {
    EXPECT_LT(e1, task->kg1.num_entities());
    EXPECT_LT(e2, task->kg2.num_entities());
    matched2.insert(e2);
  }
  EXPECT_EQ(matched2.size(), task->kg2.num_entities());  // all, one-to-one
}

TEST(SyntheticTest, Kg1HasDanglingEntities) {
  auto task = GenerateSyntheticTask(SmallSpec());
  ASSERT_TRUE(task.ok());
  size_t dangling = 0;
  for (EntityId e = 0; e < task->kg1.num_entities(); ++e) {
    if (task->GoldEntityMatchOf1(e) == kInvalidId) ++dangling;
  }
  EXPECT_EQ(dangling, 50u);  // 150 - 100
}

TEST(SyntheticTest, GoldRelationMatchesAreBaseRelations) {
  auto task = GenerateSyntheticTask(SmallSpec());
  ASSERT_TRUE(task.ok());
  for (const auto& [r1, r2] : task->gold_relations) {
    EXPECT_LT(r1, task->kg1.num_base_relations());
    EXPECT_LT(r2, task->kg2.num_base_relations());
  }
}

TEST(SyntheticTest, EveryEntityHasAtLeastOneEdgeAndClass) {
  auto task = GenerateSyntheticTask(SmallSpec());
  ASSERT_TRUE(task.ok());
  for (EntityId e = 0; e < task->kg1.num_entities(); ++e) {
    EXPECT_GT(task->kg1.Degree(e), 0u) << "entity " << e;
    EXPECT_FALSE(task->kg1.ClassesOf(e).empty()) << "entity " << e;
  }
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  auto a = GenerateSyntheticTask(SmallSpec());
  auto b = GenerateSyntheticTask(SmallSpec());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kg1.num_triplets(), b->kg1.num_triplets());
  EXPECT_EQ(a->kg2.num_triplets(), b->kg2.num_triplets());
  EXPECT_EQ(a->gold_entities, b->gold_entities);
  EXPECT_EQ(a->kg1.entity_name(7), b->kg1.entity_name(7));
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  auto spec = SmallSpec();
  auto a = GenerateSyntheticTask(spec);
  spec.seed = 22;
  auto b = GenerateSyntheticTask(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->gold_entities, b->gold_entities);
}

TEST(SyntheticTest, InvalidSpecsRejected) {
  auto spec = SmallSpec();
  spec.num_entities2 = 200;  // larger than side 1
  EXPECT_FALSE(GenerateSyntheticTask(spec).ok());

  spec = SmallSpec();
  spec.num_relation_matches = 100;
  EXPECT_FALSE(GenerateSyntheticTask(spec).ok());

  spec = SmallSpec();
  spec.num_classes2 = 0;
  EXPECT_FALSE(GenerateSyntheticTask(spec).ok());

  spec = SmallSpec();
  spec.avg_degree = 0.0;
  EXPECT_FALSE(GenerateSyntheticTask(spec).ok());
}

TEST(SyntheticTest, SharedNamePolicyKeepsLexicalSimilarity) {
  auto spec = SmallSpec();
  spec.name_policy = NamePolicy::kSharedNames;
  auto task = GenerateSyntheticTask(spec);
  ASSERT_TRUE(task.ok());
  double total = 0.0;
  for (const auto& [e1, e2] : task->gold_entities) {
    total += NgramJaccard(task->kg1.entity_name(e1),
                          task->kg2.entity_name(e2));
  }
  EXPECT_GT(total / task->gold_entities.size(), 0.6);
}

TEST(SyntheticTest, ObfuscatedNamePolicyDestroysLexicalSimilarity) {
  auto spec = SmallSpec();
  spec.name_policy = NamePolicy::kObfuscated;
  auto task = GenerateSyntheticTask(spec);
  ASSERT_TRUE(task.ok());
  double total = 0.0;
  for (const auto& [e1, e2] : task->gold_entities) {
    total += NgramJaccard(task->kg1.entity_name(e1),
                          task->kg2.entity_name(e2));
  }
  EXPECT_LT(total / task->gold_entities.size(), 0.2);
}

TEST(SyntheticTest, ObfuscateNameIsDeterministicAndLosslessOnLength) {
  std::string name = "Person_42_abc";
  EXPECT_EQ(ObfuscateName(name), ObfuscateName(name));
  EXPECT_NE(ObfuscateName(name), name);
  EXPECT_EQ(ObfuscateName(name).size(), name.size() + 3);  // "_xx" suffix
}

// The four benchmark analogues must produce well-formed tasks at small
// scale, with the dataset-specific shapes of Table 2 preserved.
class BenchmarkDatasetTest : public ::testing::TestWithParam<BenchmarkDataset> {};

TEST_P(BenchmarkDatasetTest, GeneratesWellFormedTask) {
  auto task = MakeBenchmarkTask(GetParam(), /*scale=*/0.1, /*seed=*/5);
  ASSERT_TRUE(task.ok());
  TaskStats stats = ComputeTaskStats(*task);
  EXPECT_EQ(stats.entities1, 200u);
  EXPECT_EQ(stats.entities2, 140u);
  EXPECT_EQ(stats.entity_matches, 140u);
  EXPECT_GT(stats.relation_matches, 0u);
  EXPECT_GT(stats.class_matches, 0u);
  EXPECT_GT(stats.triplets1, stats.entities1);  // avg degree > 1
}

TEST_P(BenchmarkDatasetTest, SpecShapeFollowsPaperRatios) {
  SyntheticKgSpec spec = BenchmarkSpec(GetParam(), 1.0, 5);
  EXPECT_GT(spec.num_relations1, spec.num_relations2 - 1);
  EXPECT_GE(spec.num_classes1, spec.num_classes2);
  if (GetParam() == BenchmarkDataset::kDY) {
    // D-Y: schema-poor second side with very few schema matches.
    EXPECT_LE(spec.num_relations2, 8u);
    EXPECT_LE(spec.num_relation_matches + spec.num_class_matches, 12u);
    EXPECT_EQ(spec.name_policy, NamePolicy::kSharedNames);
  }
  if (GetParam() == BenchmarkDataset::kDW) {
    EXPECT_EQ(spec.name_policy, NamePolicy::kOpaqueIds);
  }
  if (GetParam() == BenchmarkDataset::kEnDe ||
      GetParam() == BenchmarkDataset::kEnFr) {
    EXPECT_EQ(spec.name_policy, NamePolicy::kObfuscated);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, BenchmarkDatasetTest,
                         ::testing::Values(BenchmarkDataset::kDW,
                                           BenchmarkDataset::kDY,
                                           BenchmarkDataset::kEnDe,
                                           BenchmarkDataset::kEnFr),
                         [](const auto& info) {
                           return std::string(
                               BenchmarkDatasetName(info.param) ==
                                       std::string("D-W")
                                   ? "DW"
                               : BenchmarkDatasetName(info.param) ==
                                       std::string("D-Y")
                                   ? "DY"
                               : BenchmarkDatasetName(info.param) ==
                                       std::string("EN-DE")
                                   ? "ENDE"
                                   : "ENFR");
                         });

}  // namespace
}  // namespace daakg
