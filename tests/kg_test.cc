#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/file_util.h"
#include "kg/alignment_task.h"
#include "kg/io.h"
#include "kg/knowledge_graph.h"
#include "kg/stats.h"
#include "tests/test_util.h"

namespace daakg {
namespace {

using testing_util::MirrorTask;

KnowledgeGraph TinyKg() {
  KnowledgeGraph kg;
  EntityId a = kg.AddEntity("a");
  EntityId b = kg.AddEntity("b");
  EntityId c = kg.AddEntity("c");
  RelationId r = kg.AddRelation("r");
  RelationId s = kg.AddRelation("s");
  ClassId thing = kg.AddClass("Thing");
  kg.AddTriplet(a, r, b);
  kg.AddTriplet(b, s, c);
  kg.AddTypeTriplet(a, thing);
  kg.AddTypeTriplet(b, thing);
  DAAKG_CHECK(kg.Finalize().ok());
  return kg;
}

TEST(KnowledgeGraphTest, AddAndFindByName) {
  KnowledgeGraph kg;
  EntityId a = kg.AddEntity("alpha");
  EXPECT_EQ(kg.AddEntity("alpha"), a);  // dedup by name
  EXPECT_EQ(kg.FindEntity("alpha"), a);
  EXPECT_EQ(kg.FindEntity("missing"), kInvalidId);
  EXPECT_EQ(kg.entity_name(a), "alpha");
}

TEST(KnowledgeGraphTest, FinalizeAddsReverseRelations) {
  KnowledgeGraph kg = TinyKg();
  EXPECT_EQ(kg.num_base_relations(), 2u);
  EXPECT_EQ(kg.num_relations(), 4u);  // r, s, r^-1, s^-1
  RelationId r = kg.FindRelation("r");
  RelationId r_inv = kg.FindRelation("r^-1");
  ASSERT_NE(r_inv, kInvalidId);
  EXPECT_EQ(kg.ReverseOf(r), r_inv);
  EXPECT_EQ(kg.ReverseOf(r_inv), r);
  EXPECT_FALSE(kg.IsReverseRelation(r));
  EXPECT_TRUE(kg.IsReverseRelation(r_inv));
}

TEST(KnowledgeGraphTest, FinalizeAddsReverseTriplets) {
  KnowledgeGraph kg = TinyKg();
  EXPECT_EQ(kg.num_triplets(), 4u);  // 2 forward + 2 reversed
  EntityId a = kg.FindEntity("a");
  EntityId b = kg.FindEntity("b");
  RelationId r = kg.FindRelation("r");
  EXPECT_TRUE(kg.HasTriplet(a, r, b));
  EXPECT_TRUE(kg.HasTriplet(b, kg.ReverseOf(r), a));
  EXPECT_FALSE(kg.HasTriplet(b, r, a));
}

TEST(KnowledgeGraphTest, AdjacencyIncludesBothDirections) {
  KnowledgeGraph kg = TinyKg();
  EntityId b = kg.FindEntity("b");
  // b has outgoing s->c and reverse r^-1->a.
  EXPECT_EQ(kg.Degree(b), 2u);
  std::set<EntityId> nbr_tails;
  for (const auto& nb : kg.Neighbors(b)) nbr_tails.insert(nb.tail);
  EXPECT_TRUE(nbr_tails.count(kg.FindEntity("a")));
  EXPECT_TRUE(nbr_tails.count(kg.FindEntity("c")));
}

TEST(KnowledgeGraphTest, ClassMembership) {
  KnowledgeGraph kg = TinyKg();
  ClassId thing = kg.FindClass("Thing");
  EXPECT_EQ(kg.EntitiesOf(thing).size(), 2u);
  EXPECT_TRUE(kg.HasType(kg.FindEntity("a"), thing));
  EXPECT_FALSE(kg.HasType(kg.FindEntity("c"), thing));
  EXPECT_EQ(kg.ClassesOf(kg.FindEntity("a")).size(), 1u);
}

TEST(KnowledgeGraphTest, TripletsOfIndexesRelationPairs) {
  KnowledgeGraph kg = TinyKg();
  RelationId r = kg.FindRelation("r");
  const auto& pairs = kg.TripletsOf(r);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, kg.FindEntity("a"));
  EXPECT_EQ(pairs[0].second, kg.FindEntity("b"));
  // Reverse relation has the flipped pair.
  const auto& rev = kg.TripletsOf(kg.ReverseOf(r));
  ASSERT_EQ(rev.size(), 1u);
  EXPECT_EQ(rev[0].first, kg.FindEntity("b"));
}

TEST(KnowledgeGraphTest, DoubleFinalizeFails) {
  KnowledgeGraph kg = TinyKg();
  EXPECT_FALSE(kg.Finalize().ok());
}

TEST(KnowledgeGraphTest, DuplicateTypeTripletsDeduplicated) {
  KnowledgeGraph kg;
  EntityId e = kg.AddEntity("e");
  ClassId c = kg.AddClass("C");
  kg.AddTypeTriplet(e, c);
  kg.AddTypeTriplet(e, c);
  ASSERT_TRUE(kg.Finalize().ok());
  EXPECT_EQ(kg.ClassesOf(e).size(), 1u);
  EXPECT_EQ(kg.EntitiesOf(c).size(), 1u);
}

// ---------------------------------------------------------------------------
// IO
// ---------------------------------------------------------------------------

TEST(KgIoTest, LoadFromTsv) {
  std::string path = ::testing::TempDir() + "/daakg_kg.tsv";
  ASSERT_TRUE(WriteStringToFile(path,
                                "# comment\n"
                                "alice\tknows\tbob\n"
                                "alice\trdf:type\tPerson\n"
                                "\n"
                                "bob\tlivesIn\tparis\n")
                  .ok());
  auto kg = LoadKgFromTsv(path);
  ASSERT_TRUE(kg.ok());
  EXPECT_EQ(kg->num_entities(), 3u);
  EXPECT_EQ(kg->num_base_relations(), 2u);
  EXPECT_EQ(kg->num_classes(), 1u);
  EXPECT_EQ(kg->num_type_triplets(), 1u);
  std::remove(path.c_str());
}

TEST(KgIoTest, MalformedLineIsError) {
  std::string path = ::testing::TempDir() + "/daakg_bad.tsv";
  ASSERT_TRUE(WriteStringToFile(path, "only_two\tfields\n").ok());
  auto kg = LoadKgFromTsv(path);
  EXPECT_FALSE(kg.ok());
  EXPECT_EQ(kg.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(KgIoTest, TaskRoundTrip) {
  AlignmentTask task = MirrorTask();
  std::string dir = ::testing::TempDir() + "/daakg_task";
  ASSERT_EQ(system(("mkdir -p " + dir).c_str()), 0);
  ASSERT_TRUE(SaveAlignmentTask(task, dir).ok());
  auto loaded = LoadAlignmentTask(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->kg1.num_entities(), task.kg1.num_entities());
  EXPECT_EQ(loaded->kg1.num_base_relations(), task.kg1.num_base_relations());
  EXPECT_EQ(loaded->kg2.num_classes(), task.kg2.num_classes());
  EXPECT_EQ(loaded->gold_entities.size(), task.gold_entities.size());
  EXPECT_EQ(loaded->gold_relations.size(), task.gold_relations.size());
  EXPECT_EQ(loaded->gold_classes.size(), task.gold_classes.size());
  // Gold must survive by *name*, not just count.
  for (const auto& [e1, e2] : loaded->gold_entities) {
    EXPECT_EQ(task.kg1.FindEntity(loaded->kg1.entity_name(e1)) != kInvalidId,
              true);
    EXPECT_TRUE(loaded->IsGoldEntityMatch(e1, e2));
  }
}

// ---------------------------------------------------------------------------
// AlignmentTask
// ---------------------------------------------------------------------------

TEST(AlignmentTaskTest, GoldIndexLookups) {
  AlignmentTask task = MirrorTask();
  EXPECT_EQ(task.GoldEntityMatchOf1(0), 0u);
  EXPECT_EQ(task.GoldEntityMatchOf2(3), 3u);
  EXPECT_TRUE(task.IsGoldEntityMatch(1, 1));
  EXPECT_FALSE(task.IsGoldEntityMatch(1, 2));
  EXPECT_TRUE(task.IsGoldRelationMatch(0, 0));
  EXPECT_TRUE(task.IsGoldClassMatch(1, 1));
  EXPECT_FALSE(task.IsGoldClassMatch(1, 0));
}

TEST(AlignmentTaskTest, IsGoldMatchDispatchesOnKind) {
  AlignmentTask task = MirrorTask();
  EXPECT_TRUE(task.IsGoldMatch(ElementPair{ElementKind::kEntity, 2, 2}));
  EXPECT_TRUE(task.IsGoldMatch(ElementPair{ElementKind::kRelation, 1, 1}));
  EXPECT_TRUE(task.IsGoldMatch(ElementPair{ElementKind::kClass, 0, 0}));
  EXPECT_FALSE(task.IsGoldMatch(ElementPair{ElementKind::kEntity, 2, 3}));
}

TEST(AlignmentTaskTest, SampleSeedSizesAndSubset) {
  AlignmentTask task = MirrorTask();
  Rng rng(1);
  SeedAlignment seed = task.SampleSeed(0.5, &rng);
  EXPECT_EQ(seed.entities.size(), 3u);
  EXPECT_EQ(seed.relations.size(), 1u);
  EXPECT_EQ(seed.classes.size(), 1u);
  for (const auto& [e1, e2] : seed.entities) {
    EXPECT_TRUE(task.IsGoldEntityMatch(e1, e2));
  }
}

TEST(AlignmentTaskTest, SampleSeedAtLeastOneOfEachKind) {
  AlignmentTask task = MirrorTask();
  Rng rng(2);
  SeedAlignment seed = task.SampleSeed(0.01, &rng);
  EXPECT_EQ(seed.entities.size(), 1u);
  EXPECT_EQ(seed.relations.size(), 1u);
  EXPECT_EQ(seed.classes.size(), 1u);
}

TEST(AlignmentTaskTest, SampleSeedDeterministicGivenRng) {
  AlignmentTask task = MirrorTask();
  Rng a(3), b(3);
  SeedAlignment s1 = task.SampleSeed(0.5, &a);
  SeedAlignment s2 = task.SampleSeed(0.5, &b);
  EXPECT_EQ(s1.entities, s2.entities);
}

TEST(AlignmentTaskTest, TestEntityMatchesIsComplement) {
  AlignmentTask task = MirrorTask();
  Rng rng(4);
  SeedAlignment seed = task.SampleSeed(0.5, &rng);
  auto test = task.TestEntityMatches(seed);
  EXPECT_EQ(test.size(), task.gold_entities.size() - seed.entities.size());
  for (const auto& tp : test) {
    EXPECT_EQ(std::count(seed.entities.begin(), seed.entities.end(), tp), 0);
  }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(StatsTest, ComputeTaskStatsCountsForwardTripletsOnly) {
  AlignmentTask task = MirrorTask();
  TaskStats stats = ComputeTaskStats(task);
  EXPECT_EQ(stats.entities1, 6u);
  EXPECT_EQ(stats.relations1, 2u);  // base relations, no reverse
  EXPECT_EQ(stats.classes1, 2u);
  EXPECT_EQ(stats.triplets1, 5u);  // 3 livesIn + 2 knows, forward only
  EXPECT_EQ(stats.entity_matches, 6u);
  EXPECT_GT(stats.avg_degree1, 0.0);
  EXPECT_FALSE(FormatStatsRow(stats).empty());
  EXPECT_FALSE(StatsHeader().empty());
}

}  // namespace
}  // namespace daakg
