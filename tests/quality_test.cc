// End-to-end quality regression tests: train the full DAAKG pipeline on a
// small benchmark-analogue dataset and assert conservative lower bounds on
// the phenomena the paper's evaluation rests on. These thresholds are far
// below the bench-scale numbers, so they only fire on real regressions.

#include <gtest/gtest.h>

#include <unordered_map>

#include "active/pool.h"
#include "core/daakg.h"
#include "infer/alignment_graph.h"
#include "infer/inference_power.h"
#include "kg/synthetic.h"

namespace daakg {
namespace {

// One shared trained pipeline (expensive): D-W analogue at 1/10 scale.
class QualityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    task_ = new AlignmentTask(
        std::move(MakeBenchmarkTask(BenchmarkDataset::kDW, 0.1, 5)).value());
    DaakgConfig config;
    config.kge_model = KgeModelKind::kTransE;
    aligner_ = new DaakgAligner(task_, config);
    Rng rng(1);
    seed_ = new SeedAlignment(task_->SampleSeed(0.2, &rng));
    aligner_->Train(*seed_);
    eval_ = new EvalResult(aligner_->Evaluate());
  }
  static void TearDownTestSuite() {
    delete eval_;
    delete seed_;
    delete aligner_;
    delete task_;
    eval_ = nullptr;
    seed_ = nullptr;
    aligner_ = nullptr;
    task_ = nullptr;
  }

  static AlignmentTask* task_;
  static DaakgAligner* aligner_;
  static SeedAlignment* seed_;
  static EvalResult* eval_;
};

AlignmentTask* QualityTest::task_ = nullptr;
DaakgAligner* QualityTest::aligner_ = nullptr;
SeedAlignment* QualityTest::seed_ = nullptr;
EvalResult* QualityTest::eval_ = nullptr;

TEST_F(QualityTest, EntityAlignmentLearnsBeyondChance) {
  // Chance H@1 is 1/140 ~ 0.007; require an order of magnitude above it on
  // *unseen* matches.
  EXPECT_GT(eval_->ent_rank.hits_at_1, 0.05);
  EXPECT_GT(eval_->ent_rank.hits_at_10, 0.25);
  EXPECT_GT(eval_->ent_rank.mrr, 0.1);
}

TEST_F(QualityTest, SchemaAlignmentIsStrong) {
  // The paper's headline: joint training makes schema alignment work.
  EXPECT_GT(eval_->rel_rank.hits_at_1, 0.5);
  EXPECT_GE(eval_->cls_rank.hits_at_1, 0.4);
}

TEST_F(QualityTest, PoolRecallIsUsable) {
  PoolConfig cfg;
  cfg.top_n = task_->kg2.num_entities() / 5;  // 20% cut-off
  PoolGenerator gen(task_, aligner_->joint(), cfg);
  EXPECT_GT(gen.EntityPairRecall(gen.Generate()), 0.4);
}

TEST_F(QualityTest, InferencePowerPrecisionBeatsPoolBaseRate) {
  PoolConfig pool_cfg;
  pool_cfg.top_n = 10;
  PoolGenerator gen(task_, aligner_->joint(), pool_cfg);
  std::vector<ElementPair> pool = gen.Generate();
  AlignmentGraph graph(task_, pool);
  InferenceConfig icfg = aligner_->config().infer;
  icfg.power_floor = icfg.kappa;
  InferenceEngine engine(&graph, aligner_->joint(), icfg);
  engine.PrecomputeEdgeCosts();

  std::unordered_map<uint32_t, float> inferred;
  for (const auto& [e1, e2] : seed_->entities) {
    uint32_t node =
        graph.IndexOf(ElementPair{ElementKind::kEntity, e1, e2});
    if (node == kInvalidId) continue;
    for (const auto& [t, p] : engine.PowerFrom(node)) {
      auto& slot = inferred[t];
      slot = std::max(slot, p);
    }
  }
  ASSERT_GT(inferred.size(), 0u);
  size_t correct = 0;
  size_t pool_matches = 0;
  for (const auto& [node, p] : inferred) {
    if (task_->IsGoldMatch(pool[node])) ++correct;
  }
  for (const ElementPair& q : pool) pool_matches += task_->IsGoldMatch(q);
  const double precision =
      static_cast<double>(correct) / static_cast<double>(inferred.size());
  const double base_rate =
      static_cast<double>(pool_matches) / static_cast<double>(pool.size());
  // Inferred pairs must be far more likely to be matches than a random
  // pool pair (the Table 6 phenomenon).
  EXPECT_GT(precision, 3.0 * base_rate);
  EXPECT_GT(precision, 0.3);
}

TEST_F(QualityTest, SemiSupervisionMinesPrecisePairs) {
  aligner_->RefreshCaches();
  auto mined = aligner_->joint()->MineSemiSupervision();
  if (mined.size() < 5) GTEST_SKIP() << "too few mined pairs to judge";
  size_t correct = 0;
  for (const auto& [pair, score] : mined) {
    if (task_->IsGoldMatch(pair)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(mined.size()),
            0.6);
}

TEST_F(QualityTest, CalibratedProbabilitiesSeparateMatchesFromNonMatches) {
  aligner_->RefreshCaches();
  double match_p = 0.0;
  double nonmatch_p = 0.0;
  int n = 0;
  Rng rng(9);
  for (const auto& [e1, e2] : task_->gold_entities) {
    match_p += aligner_->joint()->MatchProbability(
        ElementPair{ElementKind::kEntity, e1, e2});
    EntityId wrong = static_cast<EntityId>(
        rng.NextUint64(task_->kg2.num_entities()));
    if (wrong == e2) continue;
    nonmatch_p += aligner_->joint()->MatchProbability(
        ElementPair{ElementKind::kEntity, e1, wrong});
    ++n;
    if (n >= 80) break;
  }
  EXPECT_GT(match_p / n, 2.0 * (nonmatch_p / n + 1e-6));
}

}  // namespace
}  // namespace daakg
