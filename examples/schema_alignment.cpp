// Schema alignment demo: align the relations and classes of two KGs whose
// schemata only partially overlap, inspect the two similarity branches
// (embedding vs weighted mean embedding, Eqs. 7-9), and show how a labeled
// relation match propagates inference power to entity pairs (Eq. 20).
//
// Run: ./build/examples/schema_alignment

#include <cstdio>

#include "active/pool.h"
#include "core/daakg.h"
#include "infer/alignment_graph.h"
#include "infer/inference_power.h"
#include "kg/synthetic.h"

using namespace daakg;  // NOLINT: example code favors brevity

int main() {
  SyntheticKgSpec spec;
  spec.name = "schema-demo";
  spec.num_entities1 = 300;
  spec.num_entities2 = 210;
  spec.num_relations1 = 18;
  spec.num_relations2 = 12;
  spec.num_relation_matches = 8;   // 10 KG1 / 4 KG2 relations dangle
  spec.num_classes1 = 9;
  spec.num_classes2 = 7;
  spec.num_class_matches = 5;
  spec.seed = 23;
  AlignmentTask task = std::move(GenerateSyntheticTask(spec)).value();

  DaakgConfig config;
  config.kge_model = KgeModelKind::kTransE;
  auto aligner_or = DaakgAligner::Create(&task, config);
  if (!aligner_or.ok()) {
    std::fprintf(stderr, "bad config: %s\n",
                 aligner_or.status().ToString().c_str());
    return 1;
  }
  DaakgAligner& aligner = **aligner_or;
  Rng rng(1);
  aligner.Train(task.SampleSeed(0.2, &rng));

  // 1. Extracted schema alignment vs gold.
  auto alignment = aligner.ExtractAlignment();
  std::printf("relation matches (predicted vs gold %zu):\n",
              task.gold_relations.size());
  for (const auto& [r1, r2] : alignment.relations) {
    std::printf("  %-24s <-> %-24s %s\n",
                task.kg1.relation_name(r1).c_str(),
                task.kg2.relation_name(r2).c_str(),
                task.IsGoldRelationMatch(r1, r2) ? "[gold]" : "");
  }
  std::printf("class matches (predicted vs gold %zu):\n",
              task.gold_classes.size());
  for (const auto& [c1, c2] : alignment.classes) {
    std::printf("  %-24s <-> %-24s %s\n", task.kg1.class_name(c1).c_str(),
                task.kg2.class_name(c2).c_str(),
                task.IsGoldClassMatch(c1, c2) ? "[gold]" : "");
  }

  // 2. Dangling relations get low weights (Eq. 25): show the extremes.
  const JointAlignmentModel* joint = aligner.joint();
  std::printf("\nrelation similarity extremes (row max of S(r, .)):\n");
  for (RelationId r1 = 0; r1 < 4 && r1 < task.kg1.num_base_relations();
       ++r1) {
    float best = -1.0f;
    RelationId arg = 0;
    for (RelationId r2 = 0; r2 < task.kg2.num_base_relations(); ++r2) {
      if (joint->relation_sim()(r1, r2) > best) {
        best = joint->relation_sim()(r1, r2);
        arg = r2;
      }
    }
    std::printf("  %-24s best match %-24s sim %.3f%s\n",
                task.kg1.relation_name(r1).c_str(),
                task.kg2.relation_name(arg).c_str(), best,
                task.GoldRelationMatchOf1(r1) == kInvalidId
                    ? "  (dangling in gold)"
                    : "");
  }

  // 3. Inference power from a labeled relation match to entity pairs.
  PoolConfig pool_cfg;
  pool_cfg.top_n = 10;
  PoolGenerator gen(&task, joint, pool_cfg);
  std::vector<ElementPair> pool = gen.Generate();
  AlignmentGraph graph(&task, pool);
  InferenceEngine engine(&graph, joint, config.infer);
  engine.PrecomputeEdgeCosts();

  const auto& [gr1, gr2] = task.gold_relations[0];
  uint32_t rel_node = graph.IndexOf(ElementPair{ElementKind::kRelation,
                                                gr1, gr2});
  PowerRow reach = engine.PowerFrom(rel_node);
  size_t correct = 0;
  for (const auto& [node, power] : reach) {
    if (task.IsGoldMatch(pool[node])) ++correct;
  }
  std::printf("\nlabeling relation match (%s, %s) infers %zu entity pairs "
              "with power > %.2f; %zu of them are true matches.\n",
              task.kg1.relation_name(gr1).c_str(),
              task.kg2.relation_name(gr2).c_str(), reach.size(),
              config.infer.power_floor, correct);
  return 0;
}
