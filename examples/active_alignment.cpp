// Active alignment demo: run the full DAAKG active-learning loop against a
// gold oracle and compare the label efficiency of DAAKG's inference-power
// batch selection (Algorithm 2) with random selection.
//
// Run: ./build/examples/active_alignment

#include <cstdio>

#include "core/active_loop.h"
#include "kg/synthetic.h"

using namespace daakg;  // NOLINT: example code favors brevity

namespace {

std::vector<ActiveRoundReport> RunLoop(const AlignmentTask& task,
                                       SelectionStrategy* strategy) {
  DaakgConfig config;
  config.kge_model = KgeModelKind::kTransE;
  config.align.align_epochs = 60;  // trimmed: the loop retrains per batch
  auto aligner = DaakgAligner::Create(&task, config);
  if (!aligner.ok()) {
    std::fprintf(stderr, "bad config: %s\n",
                 aligner.status().ToString().c_str());
    return {};
  }
  GoldOracle oracle(&task);

  ActiveLoopConfig loop_cfg;
  loop_cfg.batch_size = 25;
  loop_cfg.initial_seed_fraction = 0.05;
  loop_cfg.report_fractions = {0.1, 0.2, 0.3};
  loop_cfg.pool.top_n = 15;
  // Create() null-checks the dependencies and validates loop_cfg.
  auto loop = ActiveAlignmentLoop::Create(&task, aligner->get(), strategy,
                                          &oracle, loop_cfg);
  if (!loop.ok()) {
    std::fprintf(stderr, "bad loop config: %s\n",
                 loop.status().ToString().c_str());
    return {};
  }
  auto reports = (*loop)->Run();
  std::printf("  strategy %-12s:", strategy->name().c_str());
  for (const auto& r : reports) {
    std::printf("  %2.0f%% labels -> H@1 %.3f (%zu queries)",
                r.fraction * 100, r.eval.ent_rank.hits_at_1, r.labels_used);
  }
  std::printf("\n");
  return reports;
}

}  // namespace

int main() {
  SyntheticKgSpec spec;
  spec.name = "active-demo";
  spec.num_entities1 = 300;
  spec.num_entities2 = 210;
  spec.num_relations1 = 16;
  spec.num_relations2 = 12;
  spec.num_relation_matches = 8;
  spec.num_classes1 = 9;
  spec.num_classes2 = 7;
  spec.num_class_matches = 5;
  spec.seed = 11;
  AlignmentTask task = std::move(GenerateSyntheticTask(spec)).value();
  std::printf("active alignment on %zu vs %zu entities "
              "(%zu gold matches); oracle answers from gold.\n",
              task.kg1.num_entities(), task.kg2.num_entities(),
              task.gold_entities.size());

  RandomStrategy random;
  DaakgStrategy daakg(/*use_partitioning=*/true);
  std::printf("random baseline:\n");
  RunLoop(task, &random);
  std::printf("DAAKG (inference-power batch selection, Algorithm 2):\n");
  RunLoop(task, &daakg);
  return 0;
}
