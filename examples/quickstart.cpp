// Quickstart: generate a synthetic KG pair, train DAAKG from a 20% seed
// alignment, and print entity / relation / class alignment quality plus a
// few extracted matches.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "core/daakg.h"
#include "kg/stats.h"
#include "kg/synthetic.h"

using namespace daakg;  // NOLINT: example code favors brevity

int main() {
  // 1. Data: a small DBpedia-Wikidata-style synthetic pair (see
  //    kg/synthetic.h for the knobs; LoadAlignmentTask() reads real TSVs).
  SyntheticKgSpec spec;
  spec.name = "quickstart";
  spec.num_entities1 = 400;
  spec.num_entities2 = 280;
  spec.num_relations1 = 20;
  spec.num_relations2 = 14;
  spec.num_relation_matches = 10;
  spec.num_classes1 = 10;
  spec.num_classes2 = 8;
  spec.num_class_matches = 6;
  spec.seed = 7;
  auto task_or = GenerateSyntheticTask(spec);
  if (!task_or.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 task_or.status().ToString().c_str());
    return 1;
  }
  AlignmentTask task = std::move(task_or).value();
  TaskStats stats = ComputeTaskStats(task);
  std::printf("dataset: %zu vs %zu entities, %zu vs %zu relations, "
              "%zu vs %zu classes, %zu gold entity matches\n",
              stats.entities1, stats.entities2, stats.relations1,
              stats.relations2, stats.classes1, stats.classes2,
              stats.entity_matches);

  // 2. Model: DAAKG with the TransE base embedding (use kCompGcn for the
  //    GNN encoder; it is slower but stronger). Create() validates the
  //    config and reports problems as a Status instead of crashing.
  DaakgConfig config;
  config.kge_model = KgeModelKind::kTransE;
  config.kge.epochs = 30;
  config.align.align_epochs = 30;
  config.align.semi_rounds = 1;
  auto aligner_or = DaakgAligner::Create(&task, config);
  if (!aligner_or.ok()) {
    std::fprintf(stderr, "bad config: %s\n",
                 aligner_or.status().ToString().c_str());
    return 1;
  }
  DaakgAligner& aligner = **aligner_or;

  // 3. Seed supervision: 20% of the gold matches, as in the paper's
  //    deep-alignment comparison.
  Rng rng(1);
  SeedAlignment seed = task.SampleSeed(0.2, &rng);
  std::printf("training with %zu entity / %zu relation / %zu class seeds\n",
              seed.entities.size(), seed.relations.size(),
              seed.classes.size());
  aligner.Train(seed);

  // 4. Evaluate on the unseen gold matches.
  EvalResult eval = aligner.Evaluate();
  std::printf("entity   H@1 %.3f  MRR %.3f  F1 %.3f\n",
              eval.ent_rank.hits_at_1, eval.ent_rank.mrr, eval.ent_prf.f1);
  std::printf("relation H@1 %.3f  MRR %.3f  F1 %.3f\n",
              eval.rel_rank.hits_at_1, eval.rel_rank.mrr, eval.rel_prf.f1);
  std::printf("class    H@1 %.3f  MRR %.3f  F1 %.3f\n",
              eval.cls_rank.hits_at_1, eval.cls_rank.mrr, eval.cls_prf.f1);

  // 5. Extract the final alignment and show a few entity matches.
  DaakgAligner::Alignment alignment = aligner.ExtractAlignment();
  std::printf("extracted %zu entity, %zu relation, %zu class matches; "
              "examples:\n", alignment.entities.size(),
              alignment.relations.size(), alignment.classes.size());
  for (size_t i = 0; i < alignment.entities.size() && i < 5; ++i) {
    const auto& [e1, e2] = alignment.entities[i];
    std::printf("  %-28s <-> %s\n", task.kg1.entity_name(e1).c_str(),
                task.kg2.entity_name(e2).c_str());
  }
  return 0;
}
