// Custom-KG demo: build two small knowledge graphs programmatically (a
// movie catalog in two "databases" with different schemata), persist them
// in the OpenEA-style TSV layout, reload, align, and export the result —
// the workflow a downstream user follows for their own data.
//
// Run: ./build/examples/custom_kg

#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/daakg.h"
#include "kg/io.h"

using namespace daakg;  // NOLINT: example code favors brevity

namespace {

// "IMDb-style" KG: films, directors, actors.
void BuildKg1(KnowledgeGraph* kg) {
  ClassId film = kg->AddClass("Film");
  ClassId person = kg->AddClass("Person");
  RelationId directed = kg->AddRelation("directedBy");
  RelationId stars = kg->AddRelation("starring");

  const char* films[] = {"Alien", "Blade_Runner", "The_Matrix", "Heat",
                         "Inception", "Tenet"};
  const char* directors[] = {"Ridley_Scott", "Ridley_Scott",
                             "Lana_Wachowski", "Michael_Mann",
                             "Christopher_Nolan", "Christopher_Nolan"};
  const char* leads[] = {"Sigourney_Weaver", "Harrison_Ford",
                         "Keanu_Reeves", "Al_Pacino",
                         "Leonardo_DiCaprio", "John_David_Washington"};
  for (int i = 0; i < 6; ++i) {
    EntityId f = kg->AddEntity(films[i]);
    EntityId d = kg->AddEntity(directors[i]);
    EntityId a = kg->AddEntity(leads[i]);
    kg->AddTypeTriplet(f, film);
    kg->AddTypeTriplet(d, person);
    kg->AddTypeTriplet(a, person);
    kg->AddTriplet(f, directed, d);
    kg->AddTriplet(f, stars, a);
  }
  DAAKG_CHECK(kg->Finalize().ok());
}

// "Wikidata-style" KG: same movies under opaque ids and a different schema
// vocabulary; Tenet is missing (dangling on the KG1 side).
void BuildKg2(KnowledgeGraph* kg, std::vector<std::string>* q_of_name) {
  ClassId movie = kg->AddClass("Q11424_movie");
  ClassId human = kg->AddClass("Q5_human");
  RelationId director = kg->AddRelation("P57_director");
  RelationId cast = kg->AddRelation("P161_cast_member");

  const char* films[] = {"Alien", "Blade_Runner", "The_Matrix", "Heat",
                         "Inception"};
  const char* directors[] = {"Ridley_Scott", "Ridley_Scott",
                             "Lana_Wachowski", "Michael_Mann",
                             "Christopher_Nolan"};
  const char* leads[] = {"Sigourney_Weaver", "Harrison_Ford",
                         "Keanu_Reeves", "Al_Pacino", "Leonardo_DiCaprio"};
  // One opaque Q-id per distinct real-world thing.
  int next_q = 100;
  std::map<std::string, EntityId> by_name;
  auto entity_for = [&](const char* name) {
    auto it = by_name.find(name);
    if (it != by_name.end()) return it->second;
    EntityId id = kg->AddEntity("Q" + std::to_string(next_q++));
    q_of_name->push_back(name);
    by_name.emplace(name, id);
    return id;
  };
  for (int i = 0; i < 5; ++i) {
    EntityId f = entity_for(films[i]);
    EntityId d = entity_for(directors[i]);
    EntityId a = entity_for(leads[i]);
    kg->AddTypeTriplet(f, movie);
    kg->AddTypeTriplet(d, human);
    kg->AddTypeTriplet(a, human);
    kg->AddTriplet(f, director, d);
    kg->AddTriplet(f, cast, a);
  }
  DAAKG_CHECK(kg->Finalize().ok());
}

}  // namespace

int main() {
  AlignmentTask task;
  task.name = "movies";
  std::vector<std::string> q_names;
  BuildKg1(&task.kg1);
  BuildKg2(&task.kg2, &q_names);

  // Gold alignment (by construction): KG2 entity i corresponds to the KG1
  // entity whose name is q_names[i]. Duplicate names (Ridley Scott,
  // Christopher Nolan) map to the same KG1 entity; keep the first.
  std::vector<bool> used1(task.kg1.num_entities(), false);
  for (EntityId e2 = 0; e2 < task.kg2.num_entities(); ++e2) {
    EntityId e1 = task.kg1.FindEntity(q_names[e2]);
    if (e1 == kInvalidId || used1[e1]) continue;
    used1[e1] = true;
    task.gold_entities.emplace_back(e1, e2);
  }
  task.gold_relations = {{0, 0}, {1, 1}};
  task.gold_classes = {{0, 0}, {1, 1}};
  task.BuildGoldIndex();

  // Persist and reload via the TSV layout (what real pipelines do).
  std::string dir = "/tmp/daakg_custom_kg";
  DAAKG_CHECK(system(("mkdir -p " + dir).c_str()) == 0);
  DAAKG_CHECK(SaveAlignmentTask(task, dir).ok());
  auto reloaded = LoadAlignmentTask(dir);
  DAAKG_CHECK(reloaded.ok());
  std::printf("saved + reloaded task from %s: %zu vs %zu entities, "
              "%zu gold matches\n", dir.c_str(),
              reloaded->kg1.num_entities(), reloaded->kg2.num_entities(),
              reloaded->gold_entities.size());

  // Tiny graphs: give DAAKG a half of the matches as seeds.
  DaakgConfig config;
  config.kge_model = KgeModelKind::kTransE;
  config.kge.dim = 16;
  config.kge.class_dim = 8;
  config.align.align_epochs = 80;
  auto aligner_or = DaakgAligner::Create(&*reloaded, config);
  if (!aligner_or.ok()) {
    std::fprintf(stderr, "bad config: %s\n",
                 aligner_or.status().ToString().c_str());
    return 1;
  }
  DaakgAligner& aligner = **aligner_or;
  Rng rng(3);
  aligner.Train(reloaded->SampleSeed(0.5, &rng));

  auto alignment = aligner.ExtractAlignment();
  std::printf("\npredicted entity matches:\n");
  size_t correct = 0;
  for (const auto& [e1, e2] : alignment.entities) {
    bool gold = reloaded->IsGoldEntityMatch(e1, e2);
    correct += gold;
    std::printf("  %-24s <-> %-8s %s\n",
                reloaded->kg1.entity_name(e1).c_str(),
                reloaded->kg2.entity_name(e2).c_str(), gold ? "[gold]" : "");
  }
  std::printf("%zu/%zu predicted matches are gold.\n", correct,
              alignment.entities.size());
  std::printf("schema: %zu relation matches, %zu class matches predicted.\n",
              alignment.relations.size(), alignment.classes.size());
  return 0;
}
