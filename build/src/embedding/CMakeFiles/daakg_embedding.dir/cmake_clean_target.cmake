file(REMOVE_RECURSE
  "libdaakg_embedding.a"
)
