
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embedding/compgcn.cc" "src/embedding/CMakeFiles/daakg_embedding.dir/compgcn.cc.o" "gcc" "src/embedding/CMakeFiles/daakg_embedding.dir/compgcn.cc.o.d"
  "/root/repo/src/embedding/entity_class_model.cc" "src/embedding/CMakeFiles/daakg_embedding.dir/entity_class_model.cc.o" "gcc" "src/embedding/CMakeFiles/daakg_embedding.dir/entity_class_model.cc.o.d"
  "/root/repo/src/embedding/gradcheck.cc" "src/embedding/CMakeFiles/daakg_embedding.dir/gradcheck.cc.o" "gcc" "src/embedding/CMakeFiles/daakg_embedding.dir/gradcheck.cc.o.d"
  "/root/repo/src/embedding/kge_model.cc" "src/embedding/CMakeFiles/daakg_embedding.dir/kge_model.cc.o" "gcc" "src/embedding/CMakeFiles/daakg_embedding.dir/kge_model.cc.o.d"
  "/root/repo/src/embedding/negative_sampler.cc" "src/embedding/CMakeFiles/daakg_embedding.dir/negative_sampler.cc.o" "gcc" "src/embedding/CMakeFiles/daakg_embedding.dir/negative_sampler.cc.o.d"
  "/root/repo/src/embedding/rotate.cc" "src/embedding/CMakeFiles/daakg_embedding.dir/rotate.cc.o" "gcc" "src/embedding/CMakeFiles/daakg_embedding.dir/rotate.cc.o.d"
  "/root/repo/src/embedding/trainer.cc" "src/embedding/CMakeFiles/daakg_embedding.dir/trainer.cc.o" "gcc" "src/embedding/CMakeFiles/daakg_embedding.dir/trainer.cc.o.d"
  "/root/repo/src/embedding/transe.cc" "src/embedding/CMakeFiles/daakg_embedding.dir/transe.cc.o" "gcc" "src/embedding/CMakeFiles/daakg_embedding.dir/transe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kg/CMakeFiles/daakg_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/daakg_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/daakg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
