# Empty compiler generated dependencies file for daakg_embedding.
# This may be replaced when dependencies are built.
