file(REMOVE_RECURSE
  "CMakeFiles/daakg_embedding.dir/compgcn.cc.o"
  "CMakeFiles/daakg_embedding.dir/compgcn.cc.o.d"
  "CMakeFiles/daakg_embedding.dir/entity_class_model.cc.o"
  "CMakeFiles/daakg_embedding.dir/entity_class_model.cc.o.d"
  "CMakeFiles/daakg_embedding.dir/gradcheck.cc.o"
  "CMakeFiles/daakg_embedding.dir/gradcheck.cc.o.d"
  "CMakeFiles/daakg_embedding.dir/kge_model.cc.o"
  "CMakeFiles/daakg_embedding.dir/kge_model.cc.o.d"
  "CMakeFiles/daakg_embedding.dir/negative_sampler.cc.o"
  "CMakeFiles/daakg_embedding.dir/negative_sampler.cc.o.d"
  "CMakeFiles/daakg_embedding.dir/rotate.cc.o"
  "CMakeFiles/daakg_embedding.dir/rotate.cc.o.d"
  "CMakeFiles/daakg_embedding.dir/trainer.cc.o"
  "CMakeFiles/daakg_embedding.dir/trainer.cc.o.d"
  "CMakeFiles/daakg_embedding.dir/transe.cc.o"
  "CMakeFiles/daakg_embedding.dir/transe.cc.o.d"
  "libdaakg_embedding.a"
  "libdaakg_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daakg_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
