file(REMOVE_RECURSE
  "CMakeFiles/daakg_tensor.dir/matrix.cc.o"
  "CMakeFiles/daakg_tensor.dir/matrix.cc.o.d"
  "CMakeFiles/daakg_tensor.dir/ops.cc.o"
  "CMakeFiles/daakg_tensor.dir/ops.cc.o.d"
  "CMakeFiles/daakg_tensor.dir/serialize.cc.o"
  "CMakeFiles/daakg_tensor.dir/serialize.cc.o.d"
  "CMakeFiles/daakg_tensor.dir/vector.cc.o"
  "CMakeFiles/daakg_tensor.dir/vector.cc.o.d"
  "libdaakg_tensor.a"
  "libdaakg_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daakg_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
