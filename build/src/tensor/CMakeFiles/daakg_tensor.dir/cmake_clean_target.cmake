file(REMOVE_RECURSE
  "libdaakg_tensor.a"
)
