# Empty compiler generated dependencies file for daakg_tensor.
# This may be replaced when dependencies are built.
