
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kg/alignment_task.cc" "src/kg/CMakeFiles/daakg_kg.dir/alignment_task.cc.o" "gcc" "src/kg/CMakeFiles/daakg_kg.dir/alignment_task.cc.o.d"
  "/root/repo/src/kg/ids.cc" "src/kg/CMakeFiles/daakg_kg.dir/ids.cc.o" "gcc" "src/kg/CMakeFiles/daakg_kg.dir/ids.cc.o.d"
  "/root/repo/src/kg/io.cc" "src/kg/CMakeFiles/daakg_kg.dir/io.cc.o" "gcc" "src/kg/CMakeFiles/daakg_kg.dir/io.cc.o.d"
  "/root/repo/src/kg/knowledge_graph.cc" "src/kg/CMakeFiles/daakg_kg.dir/knowledge_graph.cc.o" "gcc" "src/kg/CMakeFiles/daakg_kg.dir/knowledge_graph.cc.o.d"
  "/root/repo/src/kg/stats.cc" "src/kg/CMakeFiles/daakg_kg.dir/stats.cc.o" "gcc" "src/kg/CMakeFiles/daakg_kg.dir/stats.cc.o.d"
  "/root/repo/src/kg/synthetic.cc" "src/kg/CMakeFiles/daakg_kg.dir/synthetic.cc.o" "gcc" "src/kg/CMakeFiles/daakg_kg.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/daakg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/daakg_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
