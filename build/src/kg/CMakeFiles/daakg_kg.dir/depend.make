# Empty dependencies file for daakg_kg.
# This may be replaced when dependencies are built.
