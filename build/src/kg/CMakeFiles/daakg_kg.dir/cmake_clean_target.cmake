file(REMOVE_RECURSE
  "libdaakg_kg.a"
)
