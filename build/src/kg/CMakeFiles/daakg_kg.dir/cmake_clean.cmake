file(REMOVE_RECURSE
  "CMakeFiles/daakg_kg.dir/alignment_task.cc.o"
  "CMakeFiles/daakg_kg.dir/alignment_task.cc.o.d"
  "CMakeFiles/daakg_kg.dir/ids.cc.o"
  "CMakeFiles/daakg_kg.dir/ids.cc.o.d"
  "CMakeFiles/daakg_kg.dir/io.cc.o"
  "CMakeFiles/daakg_kg.dir/io.cc.o.d"
  "CMakeFiles/daakg_kg.dir/knowledge_graph.cc.o"
  "CMakeFiles/daakg_kg.dir/knowledge_graph.cc.o.d"
  "CMakeFiles/daakg_kg.dir/stats.cc.o"
  "CMakeFiles/daakg_kg.dir/stats.cc.o.d"
  "CMakeFiles/daakg_kg.dir/synthetic.cc.o"
  "CMakeFiles/daakg_kg.dir/synthetic.cc.o.d"
  "libdaakg_kg.a"
  "libdaakg_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daakg_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
