file(REMOVE_RECURSE
  "CMakeFiles/daakg_align.dir/joint_model.cc.o"
  "CMakeFiles/daakg_align.dir/joint_model.cc.o.d"
  "CMakeFiles/daakg_align.dir/losses.cc.o"
  "CMakeFiles/daakg_align.dir/losses.cc.o.d"
  "CMakeFiles/daakg_align.dir/metrics.cc.o"
  "CMakeFiles/daakg_align.dir/metrics.cc.o.d"
  "libdaakg_align.a"
  "libdaakg_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daakg_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
