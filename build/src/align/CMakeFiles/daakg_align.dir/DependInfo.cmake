
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/joint_model.cc" "src/align/CMakeFiles/daakg_align.dir/joint_model.cc.o" "gcc" "src/align/CMakeFiles/daakg_align.dir/joint_model.cc.o.d"
  "/root/repo/src/align/losses.cc" "src/align/CMakeFiles/daakg_align.dir/losses.cc.o" "gcc" "src/align/CMakeFiles/daakg_align.dir/losses.cc.o.d"
  "/root/repo/src/align/metrics.cc" "src/align/CMakeFiles/daakg_align.dir/metrics.cc.o" "gcc" "src/align/CMakeFiles/daakg_align.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/embedding/CMakeFiles/daakg_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/daakg_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/daakg_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/daakg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
