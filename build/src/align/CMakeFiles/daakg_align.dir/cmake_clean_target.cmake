file(REMOVE_RECURSE
  "libdaakg_align.a"
)
