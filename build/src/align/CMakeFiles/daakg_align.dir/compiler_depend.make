# Empty compiler generated dependencies file for daakg_align.
# This may be replaced when dependencies are built.
