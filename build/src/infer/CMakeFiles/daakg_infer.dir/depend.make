# Empty dependencies file for daakg_infer.
# This may be replaced when dependencies are built.
