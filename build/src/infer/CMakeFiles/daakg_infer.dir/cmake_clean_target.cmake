file(REMOVE_RECURSE
  "libdaakg_infer.a"
)
