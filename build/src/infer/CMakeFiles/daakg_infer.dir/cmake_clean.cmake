file(REMOVE_RECURSE
  "CMakeFiles/daakg_infer.dir/alignment_graph.cc.o"
  "CMakeFiles/daakg_infer.dir/alignment_graph.cc.o.d"
  "CMakeFiles/daakg_infer.dir/inference_power.cc.o"
  "CMakeFiles/daakg_infer.dir/inference_power.cc.o.d"
  "libdaakg_infer.a"
  "libdaakg_infer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daakg_infer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
