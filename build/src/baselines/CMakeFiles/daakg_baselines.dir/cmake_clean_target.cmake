file(REMOVE_RECURSE
  "libdaakg_baselines.a"
)
