file(REMOVE_RECURSE
  "CMakeFiles/daakg_baselines.dir/bertmap_lite.cc.o"
  "CMakeFiles/daakg_baselines.dir/bertmap_lite.cc.o.d"
  "CMakeFiles/daakg_baselines.dir/embedding_baseline.cc.o"
  "CMakeFiles/daakg_baselines.dir/embedding_baseline.cc.o.d"
  "CMakeFiles/daakg_baselines.dir/paris.cc.o"
  "CMakeFiles/daakg_baselines.dir/paris.cc.o.d"
  "libdaakg_baselines.a"
  "libdaakg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daakg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
