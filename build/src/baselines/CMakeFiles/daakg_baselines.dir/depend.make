# Empty dependencies file for daakg_baselines.
# This may be replaced when dependencies are built.
