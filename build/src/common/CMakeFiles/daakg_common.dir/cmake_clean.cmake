file(REMOVE_RECURSE
  "CMakeFiles/daakg_common.dir/file_util.cc.o"
  "CMakeFiles/daakg_common.dir/file_util.cc.o.d"
  "CMakeFiles/daakg_common.dir/logging.cc.o"
  "CMakeFiles/daakg_common.dir/logging.cc.o.d"
  "CMakeFiles/daakg_common.dir/rng.cc.o"
  "CMakeFiles/daakg_common.dir/rng.cc.o.d"
  "CMakeFiles/daakg_common.dir/status.cc.o"
  "CMakeFiles/daakg_common.dir/status.cc.o.d"
  "CMakeFiles/daakg_common.dir/string_util.cc.o"
  "CMakeFiles/daakg_common.dir/string_util.cc.o.d"
  "CMakeFiles/daakg_common.dir/thread_pool.cc.o"
  "CMakeFiles/daakg_common.dir/thread_pool.cc.o.d"
  "libdaakg_common.a"
  "libdaakg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daakg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
