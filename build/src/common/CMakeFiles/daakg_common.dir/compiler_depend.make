# Empty compiler generated dependencies file for daakg_common.
# This may be replaced when dependencies are built.
