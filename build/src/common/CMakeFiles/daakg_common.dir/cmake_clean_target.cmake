file(REMOVE_RECURSE
  "libdaakg_common.a"
)
