file(REMOVE_RECURSE
  "CMakeFiles/daakg_active.dir/pool.cc.o"
  "CMakeFiles/daakg_active.dir/pool.cc.o.d"
  "CMakeFiles/daakg_active.dir/selection.cc.o"
  "CMakeFiles/daakg_active.dir/selection.cc.o.d"
  "CMakeFiles/daakg_active.dir/strategies.cc.o"
  "CMakeFiles/daakg_active.dir/strategies.cc.o.d"
  "libdaakg_active.a"
  "libdaakg_active.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daakg_active.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
