file(REMOVE_RECURSE
  "libdaakg_active.a"
)
