# Empty dependencies file for daakg_active.
# This may be replaced when dependencies are built.
