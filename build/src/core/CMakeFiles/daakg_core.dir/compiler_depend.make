# Empty compiler generated dependencies file for daakg_core.
# This may be replaced when dependencies are built.
