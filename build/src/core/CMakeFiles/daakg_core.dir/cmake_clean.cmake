file(REMOVE_RECURSE
  "CMakeFiles/daakg_core.dir/active_loop.cc.o"
  "CMakeFiles/daakg_core.dir/active_loop.cc.o.d"
  "CMakeFiles/daakg_core.dir/daakg.cc.o"
  "CMakeFiles/daakg_core.dir/daakg.cc.o.d"
  "libdaakg_core.a"
  "libdaakg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daakg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
