file(REMOVE_RECURSE
  "libdaakg_core.a"
)
