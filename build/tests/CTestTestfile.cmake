# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/active_test[1]_include.cmake")
include("/root/repo/build/tests/align_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/embedding_test[1]_include.cmake")
include("/root/repo/build/tests/infer_test[1]_include.cmake")
include("/root/repo/build/tests/kg_test[1]_include.cmake")
include("/root/repo/build/tests/quality_test[1]_include.cmake")
include("/root/repo/build/tests/synthetic_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
