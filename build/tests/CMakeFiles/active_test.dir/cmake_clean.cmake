file(REMOVE_RECURSE
  "CMakeFiles/active_test.dir/active_test.cc.o"
  "CMakeFiles/active_test.dir/active_test.cc.o.d"
  "active_test"
  "active_test.pdb"
  "active_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
