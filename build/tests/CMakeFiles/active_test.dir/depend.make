# Empty dependencies file for active_test.
# This may be replaced when dependencies are built.
