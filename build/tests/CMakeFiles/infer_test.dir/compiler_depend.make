# Empty compiler generated dependencies file for infer_test.
# This may be replaced when dependencies are built.
