file(REMOVE_RECURSE
  "CMakeFiles/infer_test.dir/infer_test.cc.o"
  "CMakeFiles/infer_test.dir/infer_test.cc.o.d"
  "infer_test"
  "infer_test.pdb"
  "infer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
