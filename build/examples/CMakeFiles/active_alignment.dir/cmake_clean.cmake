file(REMOVE_RECURSE
  "CMakeFiles/active_alignment.dir/active_alignment.cpp.o"
  "CMakeFiles/active_alignment.dir/active_alignment.cpp.o.d"
  "active_alignment"
  "active_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
