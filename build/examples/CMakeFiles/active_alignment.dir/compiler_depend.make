# Empty compiler generated dependencies file for active_alignment.
# This may be replaced when dependencies are built.
