
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/daakg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/daakg_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/active/CMakeFiles/daakg_active.dir/DependInfo.cmake"
  "/root/repo/build/src/infer/CMakeFiles/daakg_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/daakg_align.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/daakg_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/daakg_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/daakg_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/daakg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
