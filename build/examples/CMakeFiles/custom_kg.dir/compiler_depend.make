# Empty compiler generated dependencies file for custom_kg.
# This may be replaced when dependencies are built.
