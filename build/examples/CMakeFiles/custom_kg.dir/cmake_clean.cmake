file(REMOVE_RECURSE
  "CMakeFiles/custom_kg.dir/custom_kg.cpp.o"
  "CMakeFiles/custom_kg.dir/custom_kg.cpp.o.d"
  "custom_kg"
  "custom_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
