file(REMOVE_RECURSE
  "CMakeFiles/schema_alignment.dir/schema_alignment.cpp.o"
  "CMakeFiles/schema_alignment.dir/schema_alignment.cpp.o.d"
  "schema_alignment"
  "schema_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
