# Empty dependencies file for schema_alignment.
# This may be replaced when dependencies are built.
