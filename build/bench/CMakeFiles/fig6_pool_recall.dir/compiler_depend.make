# Empty compiler generated dependencies file for fig6_pool_recall.
# This may be replaced when dependencies are built.
