file(REMOVE_RECURSE
  "CMakeFiles/fig6_pool_recall.dir/fig6_pool_recall.cc.o"
  "CMakeFiles/fig6_pool_recall.dir/fig6_pool_recall.cc.o.d"
  "fig6_pool_recall"
  "fig6_pool_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pool_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
