# Empty dependencies file for table6_inference_accuracy.
# This may be replaced when dependencies are built.
