file(REMOVE_RECURSE
  "libdaakg_bench_util.a"
)
