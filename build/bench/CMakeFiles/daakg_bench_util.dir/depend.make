# Empty dependencies file for daakg_bench_util.
# This may be replaced when dependencies are built.
