file(REMOVE_RECURSE
  "CMakeFiles/daakg_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/daakg_bench_util.dir/bench_util.cc.o.d"
  "libdaakg_bench_util.a"
  "libdaakg_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daakg_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
