# Empty dependencies file for table3_deep_alignment.
# This may be replaced when dependencies are built.
