file(REMOVE_RECURSE
  "CMakeFiles/table3_deep_alignment.dir/table3_deep_alignment.cc.o"
  "CMakeFiles/table3_deep_alignment.dir/table3_deep_alignment.cc.o.d"
  "table3_deep_alignment"
  "table3_deep_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_deep_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
