file(REMOVE_RECURSE
  "CMakeFiles/fig7_partitioning.dir/fig7_partitioning.cc.o"
  "CMakeFiles/fig7_partitioning.dir/fig7_partitioning.cc.o.d"
  "fig7_partitioning"
  "fig7_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
