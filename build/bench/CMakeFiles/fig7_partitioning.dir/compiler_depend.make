# Empty compiler generated dependencies file for fig7_partitioning.
# This may be replaced when dependencies are built.
