file(REMOVE_RECURSE
  "CMakeFiles/fig5_active_learning.dir/fig5_active_learning.cc.o"
  "CMakeFiles/fig5_active_learning.dir/fig5_active_learning.cc.o.d"
  "fig5_active_learning"
  "fig5_active_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_active_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
