# Empty dependencies file for fig5_active_learning.
# This may be replaced when dependencies are built.
