# Empty dependencies file for table4_runtime.
# This may be replaced when dependencies are built.
