file(REMOVE_RECURSE
  "CMakeFiles/table4_runtime.dir/table4_runtime.cc.o"
  "CMakeFiles/table4_runtime.dir/table4_runtime.cc.o.d"
  "table4_runtime"
  "table4_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
